//! End-to-end GNN training (§V-E): train a 2-layer GCN on a synthetic
//! vertex-classification task with the naive (message-materializing) backend
//! and with the fused FeatGraph backend, and show that accuracy is identical
//! while epoch time drops.
//!
//! ```sh
//! cargo run --release --example gnn_training
//! ```

use featgraph_suite::fg_gnn::data::SbmTask;
use featgraph_suite::fg_gnn::models::build_model;
use featgraph_suite::fg_gnn::nn::Optimizer;
use featgraph_suite::fg_gnn::trainer::train;
use featgraph_suite::fg_gnn::{FeatgraphBackend, GraphBackend, NaiveBackend};

fn main() {
    let task = SbmTask::generate(3_000, 5, 30, 5, 2026);
    println!(
        "task: {} vertices, {} edges, {} classes, {} input features",
        task.graph.num_vertices(),
        task.graph.num_edges(),
        task.num_classes,
        task.in_dim()
    );

    let epochs = 40;
    let backends: Vec<(&str, Box<dyn GraphBackend>)> = vec![
        ("naive (DGL w/o FeatGraph)", Box::new(NaiveBackend::cpu())),
        ("featgraph (fused kernels)", Box::new(FeatgraphBackend::cpu(1))),
    ];
    for (name, backend) in backends {
        let mut model = build_model("gcn", task.in_dim(), 32, task.num_classes, 7);
        let result = train(
            model.as_mut(),
            &task,
            backend.as_ref(),
            None,
            Optimizer::adam(0.02),
            epochs,
        );
        println!(
            "{name:<28}  {:.3}s/epoch   final loss {:.4}   test accuracy {:.3}",
            result.avg_epoch_seconds,
            result.history.last().unwrap().loss,
            result.test_acc
        );
    }
    println!("same accuracy, different speed — the backend changes performance, not semantics");
}
