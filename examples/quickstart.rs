//! Quickstart: the paper's Fig. 3a, in Rust.
//!
//! Builds GCN aggregation by composing the coarse-grained SpMM template with
//! a fine-grained `copy_src` message UDF and a feature dimension schedule,
//! then runs it and verifies against the naive reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use featgraph::{spmm, Fds, GraphTensors, Reducer, Target, Udf};
use featgraph_suite::featgraph;
use featgraph_suite::fg_graph::generators;
use featgraph_suite::fg_tensor::Dense2;

fn main() {
    // A small random graph standing in for `featgraph.spmat(...)`.
    let n = 1_000;
    let d = 64;
    let graph = generators::uniform(n, 16, 42);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // msgfunc: use the source vertex feature as the message (Fig. 3a l.6-8)
    let msgfunc = Udf::copy_src(d);

    // FDS: tile the feature dimension for cache optimization (Fig. 3a l.11-15)
    let fds = Fds::cpu_tiled(4);

    // aggregation = sum; trigger the SpMM template (Fig. 3a l.25-33)
    let kernel = spmm(&graph, &msgfunc, Reducer::Sum, Target::Cpu, &fds)
        .expect("kernel compiles");

    // vertex features X_V
    let x = Dense2::<f32>::from_fn(n, d, |v, i| ((v + i) % 7) as f32 * 0.25);
    let mut h = Dense2::<f32>::zeros(n, d);
    kernel
        .run(&GraphTensors::vertex_only(&x), &mut h)
        .expect("kernel runs");

    println!("h[0][..6] = {:?}", &h.row(0)[..6]);

    // sanity: compare to the obviously-correct reference
    let mut want = Dense2::<f32>::zeros(n, d);
    featgraph::reference::spmm_reference(
        &graph,
        &msgfunc,
        Reducer::Sum,
        &GraphTensors::vertex_only(&x),
        &mut want,
    )
    .expect("reference");
    assert!(h.approx_eq(&want, 1e-4));
    println!("fused kernel output matches the reference — quickstart OK");
}
