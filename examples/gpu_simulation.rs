//! GPU execution on the V100 simulator: run GCN aggregation with
//! FeatGraph's vertex-parallel kernel and with the Gunrock-style
//! edge-parallel baseline, and inspect *why* the baseline loses (atomics,
//! scattered traffic) through the launch reports.
//!
//! ```sh
//! cargo run --release --example gpu_simulation
//! ```

use featgraph::{spmm, Fds, GraphTensors, Reducer, Target, Udf};
use featgraph_suite::featgraph;
use featgraph_suite::fg_graph::generators;
use featgraph_suite::fg_gunrock::{gcn_aggregation, GunrockOptions};
use featgraph_suite::fg_tensor::Dense2;

fn main() {
    let n = 5_000;
    let d = 64;
    let graph = generators::uniform(n, 32, 11);
    let x = Dense2::<f32>::from_fn(n, d, |v, i| ((v + i) % 9) as f32 * 0.1);
    println!(
        "graph: {} vertices, {} edges; feature length {d}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // FeatGraph: blocks over destination rows, feature dim bound to thread.x
    let kernel = spmm(
        &graph,
        &Udf::copy_src(d),
        Reducer::Sum,
        Target::Gpu,
        &Fds::gpu_thread_x(256),
    )
    .expect("compile");
    let mut h_fg = Dense2::<f32>::zeros(n, d);
    let stats = kernel
        .run(&GraphTensors::vertex_only(&x), &mut h_fg)
        .expect("run");
    let fg = &stats.gpu_launches[0];
    println!(
        "\nFeatGraph  : {:8.3} ms  (memory-bound: {}, {:.0}% coalescing efficiency, {} atomics)",
        fg.time_ms,
        fg.memory_bound(),
        fg.tally.coalescing_efficiency(128).unwrap_or(0.0) * 100.0,
        fg.tally.atomic_ops
    );

    // Gunrock: one thread per edge, atomic accumulation
    let mut h_gr = Dense2::<f32>::zeros(n, d);
    let report = gcn_aggregation(&graph, &x, &mut h_gr, &GunrockOptions::default());
    println!(
        "Gunrock    : {:8.3} ms  (memory-bound: {}, {:.0}% coalescing efficiency, {} atomics, {} conflicted)",
        report.time_ms,
        report.memory_bound(),
        report.tally.coalescing_efficiency(128).unwrap_or(0.0) * 100.0,
        report.tally.atomic_ops,
        report.tally.atomic_conflicts
    );

    assert!(h_fg.approx_eq(&h_gr, 1e-3), "both must compute the same result");
    println!(
        "\nidentical results; Gunrock is {:.1}x slower — blackbox edge-parallel \
         execution pays in atomics and wasted sectors",
        report.time_ms / fg.time_ms
    );
}
