//! The baseline engine on its home turf: classic scalar graph analytics
//! (BFS, PageRank, connected components) on the Ligra-style engine — the
//! workloads it was designed for, where frontier-based push/pull switching
//! shines. The FeatGraph paper's point is not that such engines are bad,
//! but that *feature-dimension* workloads need a different design.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use featgraph_suite::fg_ligra::algorithms::{bfs, connected_components, pagerank};
use featgraph_suite::fg_ligra::EdgeMapOptions;
use featgraph_suite::fg_graph::generators;

fn main() {
    let g = generators::power_law(20_000, 8, 0.7, 99);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    let opts = EdgeMapOptions::default();

    // BFS from the highest-weight vertex (id 0 in the Chung-Lu ordering)
    let t0 = std::time::Instant::now();
    let levels = bfs(&g, 0, &opts);
    let reached = levels.iter().filter(|&&l| l >= 0).count();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    println!(
        "BFS: reached {reached} vertices, eccentricity {max_level}, {:.3}s",
        t0.elapsed().as_secs_f64()
    );

    // PageRank
    let t0 = std::time::Instant::now();
    let pr = pagerank(&g, 20, 0.85, &opts);
    let mut top: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "PageRank: sum {:.4}, top vertices {:?}, {:.3}s",
        pr.iter().sum::<f64>(),
        &top[..3].iter().map(|&(v, _)| v).collect::<Vec<_>>(),
        t0.elapsed().as_secs_f64()
    );

    // Connected components
    let t0 = std::time::Instant::now();
    let cc = connected_components(&g, &opts);
    let mut ids: Vec<u32> = cc.clone();
    ids.sort_unstable();
    ids.dedup();
    println!(
        "Connected components: {} components, {:.3}s",
        ids.len(),
        t0.elapsed().as_secs_f64()
    );
}
