//! Grid-search autotuning of scheduling parameters (§IV-A, Figs. 14/15):
//! sweep (graph partitions × feature tiles) for the CPU SpMM template and
//! the block count for the GPU template, and report the winners.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use featgraph::autotune::{tune_spmm_cpu, tune_spmm_gpu_blocks};
use featgraph::{Fds, GraphTensors, Reducer, Udf};
use featgraph_suite::featgraph;
use featgraph_suite::fg_graph::generators;
use featgraph_suite::fg_tensor::Dense2;

fn main() {
    let n = 4_000;
    let d = 128;
    let graph = generators::power_law(n, 40, 0.6, 3);
    let x = Dense2::<f32>::from_fn(n, d, |v, i| ((v + i) % 13) as f32 * 0.05);
    let inputs = GraphTensors::vertex_only(&x);
    let udf = Udf::copy_src(d);

    println!("CPU grid search: graph partitions x feature tiles (seconds)");
    let result = tune_spmm_cpu(
        &graph,
        &udf,
        Reducer::Sum,
        &inputs,
        &[1, 4, 16, 64],
        &[1, 2, 4, 8],
        1,
        2,
    )
    .expect("tuning");
    for p in &result.grid {
        println!(
            "  gp={:<3} fp={:<2} {:>9.4}s{}",
            p.graph_partitions,
            p.feature_tiles,
            p.seconds,
            if (p.graph_partitions, p.feature_tiles)
                == (
                    result.best_point().graph_partitions,
                    result.best_point().feature_tiles
                )
            {
                "   <-- best"
            } else {
                ""
            }
        );
    }

    println!("\nGPU block-count sweep (simulated ms)");
    let points = tune_spmm_gpu_blocks(
        &graph,
        &udf,
        Reducer::Sum,
        &Fds::gpu_thread_x(256),
        &inputs,
        &[8, 32, 128, 512, 2048],
    )
    .expect("gpu sweep");
    for p in &points {
        println!("  blocks={:<6} {:>9.3} ms", p.num_blocks, p.time_ms);
    }
}
