//! Edge-wise computation: the paper's Fig. 4 — dot-product attention and
//! multi-head attention via the generalized SDDMM template, on CPU and on
//! the simulated GPU (with and without tree reduction).
//!
//! ```sh
//! cargo run --release --example attention
//! ```

use featgraph::{sddmm, Fds, GraphTensors, Target, Udf};
use featgraph_suite::featgraph;
use featgraph_suite::fg_graph::generators;
use featgraph_suite::fg_tensor::Dense2;

fn main() {
    let n = 2_000;
    let d = 128;
    let graph = generators::power_law(n, 12, 0.7, 7);
    let m = graph.num_edges();
    println!("graph: {n} vertices, {m} edges");

    let x = Dense2::<f32>::from_fn(n, d, |v, i| ((v * 13 + i) % 11) as f32 * 0.1 - 0.5);

    // --- Fig. 4a: dot-product attention, CPU, Hilbert traversal ---
    let edgefunc = Udf::dot(d);
    let kernel = sddmm(&graph, &edgefunc, Target::Cpu, &Fds::cpu_tiled(2))
        .expect("cpu kernel");
    let mut att = Dense2::<f32>::zeros(m, 1);
    kernel
        .run(&GraphTensors::vertex_only(&x), &mut att)
        .expect("cpu run");
    println!("cpu attention[..4] = {:?}", &att.as_slice()[..4.min(m)]);

    // --- same kernel on the simulated V100, tree reduction on vs off ---
    for tree in [true, false] {
        let mut fds = Fds::gpu_tree_reduce(256);
        fds.gpu.tree_reduce = tree;
        let kernel = sddmm(&graph, &edgefunc, Target::Gpu, &fds).expect("gpu kernel");
        let mut out = Dense2::<f32>::zeros(m, 1);
        let stats = kernel
            .run(&GraphTensors::vertex_only(&x), &mut out)
            .expect("gpu run");
        assert!(out.approx_eq(&att, 1e-3), "GPU result must match CPU");
        println!(
            "gpu (tree_reduce={tree}): {:.3} simulated ms",
            stats.total_gpu_ms()
        );
    }

    // --- Fig. 4b: multi-head attention (4 heads of 32) ---
    let heads = 4;
    let hd = d / heads;
    let mh = Udf::multi_head_dot(heads, hd);
    let kernel = sddmm(&graph, &mh, Target::Cpu, &Fds::default()).expect("mh kernel");
    let mut att_mh = Dense2::<f32>::zeros(m, heads);
    kernel
        .run(&GraphTensors::vertex_only(&x), &mut att_mh)
        .expect("mh run");
    // the heads of multi-head dot sum to the full dot product
    for eid in 0..m.min(100) {
        let total: f32 = att_mh.row(eid).iter().sum();
        assert!((total - att.at(eid, 0)).abs() < 1e-2);
    }
    println!("multi-head attention verified: heads sum to the flat dot product");
}
