//! # featgraph-suite
//!
//! Facade over the FeatGraph reproduction workspace. Re-exports every crate
//! so the root `examples/` and `tests/` can exercise the full system through
//! one dependency:
//!
//! * [`featgraph`] — the paper's contribution: generalized SpMM/SDDMM
//!   templates with decoupled template/FDS optimization.
//! * [`fg_graph`] / [`fg_tensor`] / [`fg_ir`] — graph, tensor, and
//!   tensor-expression substrates.
//! * [`fg_gpusim`] — the functional V100 cost-model simulator.
//! * [`fg_ligra`] / [`fg_gunrock`] / [`fg_sparselib`] — the baseline
//!   systems the paper compares against.
//! * [`fg_gnn`] — "minidgl": autograd + models + interchangeable
//!   message-passing backends for the end-to-end experiments.

pub use featgraph;
pub use fg_gnn;
pub use fg_gpusim;
pub use fg_graph;
pub use fg_gunrock;
pub use fg_ir;
pub use fg_ligra;
pub use fg_sparselib;
pub use fg_tensor;
