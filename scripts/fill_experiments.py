#!/usr/bin/env python3
"""Splice fgbench output into EXPERIMENTS.md placeholders.

Usage: python3 scripts/fill_experiments.py fgbench_all_scale24.txt
"""
import re
import sys


def section(text: str, header_substr: str) -> str:
    """Extract one `=== ... ===` section's body from fgbench output."""
    blocks = re.split(r"\n(?==== )", "\n" + text.replace("\n=== ", "\n==== "))
    # normalize: fgbench prints '=== name ==='
    parts = re.split(r"\n=== ", "\n" + text)
    for p in parts:
        if header_substr in p.split("\n", 1)[0]:
            body = p.split("===", 1)[-1] if "===" in p.split("\n", 1)[0] else p
            lines = p.split("\n")
            return "\n".join(lines[1:]).strip("\n")
    raise SystemExit(f"section not found: {header_substr}")


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "fgbench_all_scale24.txt"
    bench = open(out_path).read()
    md = open("EXPERIMENTS.md").read()

    t2 = section(bench, "Table II")
    for name, key in [
        ("ogbn-proteins", "MEASURED_T2_PROTEINS"),
        ("reddit", "MEASURED_T2_REDDIT"),
        ("rand-100K", "MEASURED_T2_RAND"),
    ]:
        m = re.search(rf"{re.escape(name)}\s+\|V\|=\s*(\S+) \|E\|=\s*(\S+) avg_deg=\s*(\S+)", t2)
        md = md.replace(key, f"{m.group(1)} / {m.group(2)} / {m.group(3)}")

    fills = {
        "MEASURED_TABLE3": section(bench, "Table III"),
        "MEASURED_FIG10": section(bench, "Fig. 10"),
        "MEASURED_TABLE4": section(bench, "Table IV"),
        "MEASURED_FIG11": section(bench, "Fig. 11"),
        "MEASURED_FIG12": section(bench, "Fig. 12"),
        "MEASURED_FIG13": section(bench, "Fig. 13"),
        "MEASURED_FIG14": section(bench, "Fig. 14"),
        "MEASURED_FIG15": section(bench, "Fig. 15"),
        "MEASURED_TABLE5": section(bench, "Table V"),
        "MEASURED_TABLE6": section(bench, "Table VI"),
        "MEASURED_ACCURACY": section(bench, "accuracy"),
        "MEASURED_TRAVERSAL": section(bench, "Hilbert vs canonical"),
        "MEASURED_TUNE": section(bench, "adaptive tuner vs exhaustive"),
    }
    for key, value in fills.items():
        md = md.replace(key, value)

    open("EXPERIMENTS.md", "w").write(md)
    leftovers = re.findall(r"MEASURED_\w+", md)
    if leftovers:
        raise SystemExit(f"unfilled placeholders: {leftovers}")
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
