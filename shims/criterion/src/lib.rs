//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness API the workspace's benches use — groups, benchmark
//! IDs, `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! time-budgeted sampling loop and a plain-text mean/min/max report instead
//! of criterion's statistical machinery and HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget so a whole bench binary stays bounded.
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

/// Benchmark identifier: `function/parameter` (either part optional).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly: a few warm-up calls, then up to `samples`
    /// timed iterations within the per-sample time budget.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..2 {
            black_box(f());
        }
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.timings.push(t0.elapsed());
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.label, &b.timings);
        let _ = &self.criterion;
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.label, &b.timings);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().unwrap();
    let max = timings.iter().max().unwrap();
    println!(
        "{group}/{label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        timings.len(),
    );
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group(id.label.clone()).bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them so the shim stays drop-in.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 2 warm-up calls plus at least one timed sample.
        assert!(calls >= 3);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("id", 7), &41usize, |b, &x| {
            b.iter(|| assert_eq!(x + 1, 42));
        });
    }
}
