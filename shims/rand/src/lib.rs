//! Offline stand-in for the `rand` crate.
//!
//! Covers the surface this workspace uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! the `seed_from_u64` SplitMix64 expansion, and
//! [`distributions::Uniform`]. Uniform integer sampling uses widening
//! multiply rejection-free mapping (Lemire-style without rejection — a bias
//! of at most 2^-64 per draw, irrelevant for synthetic graph generation).

use std::ops::Range;

/// Core RNG interface: implementors supply `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable with [`Rng::gen_range`] and [`distributions::Uniform`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                // Map a 64-bit draw onto [0, span) via widening multiply.
                let hi_bits = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + hi_bits as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u32, u64, usize, i32, i64);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, including the `seed_from_u64` convenience that
/// expands a 64-bit seed into the full seed width with SplitMix64.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step, as in the real rand_core.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `[lo, hi)` range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Self { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so low bits are well mixed for the tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn uniform_covers_small_domain() {
        let dist = Uniform::new(0u32, 4);
        let mut r = Counter(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[dist.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    struct SeedCapture([u8; 16]);

    impl RngCore for SeedCapture {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    impl SeedableRng for SeedCapture {
        type Seed = [u8; 16];
        fn from_seed(seed: [u8; 16]) -> Self {
            Self(seed)
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let a = SeedCapture::seed_from_u64(3).0;
        let b = SeedCapture::seed_from_u64(3).0;
        let c = SeedCapture::seed_from_u64(4).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, [0u8; 16]);
    }
}
