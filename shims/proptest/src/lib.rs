//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface the
//! workspace's property tests use, backed by plain random sampling with a
//! deterministic per-test seed. The one behavioral difference from real
//! proptest: **no shrinking** — a failing case reports the sampled inputs'
//! failure message but does not minimize them. Case count defaults to the
//! config (`ProptestConfig::with_cases`) and can be overridden with the
//! `PROPTEST_CASES` env var; the seed with `PROPTEST_RNG_SEED`.

pub mod test_runner {
    /// Subset of proptest's config: only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Effective case count: env override wins over the config.
    pub fn resolved_cases(cfg: &ProptestConfig) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(cfg.cases),
            Err(_) => cfg.cases,
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another sample.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// SplitMix64 generator seeded per test (from the test's module path) so
    /// failures reproduce across runs without cross-test coupling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from the test name (FNV-1a), unless
        /// `PROPTEST_RNG_SEED` overrides it globally.
        pub fn for_test(name: &str) -> Self {
            if let Ok(v) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(seed) = v.parse() {
                    return Self::from_seed(seed);
                }
            }
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)` via widening multiply; `n` must be > 0.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for producing random values of `Value`.
    ///
    /// Unlike real proptest there is no value tree: `sample_value` draws one
    /// concrete value and no shrinking is attempted.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Recursive strategies via eager expansion: `depth` levels are
        /// built up front, each level a weighted union of the leaf (weight 1)
        /// and one application of `f` to the previous level (weight 2). The
        /// `_desired_size`/`_expected_branch` hints are accepted for
        /// signature parity and ignored.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::with_weights(vec![(1, leaf.clone()), (2, f(cur).boxed())]).boxed();
            }
            cur
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// `prop_flat_map` adapter: the mapped-to strategy is rebuilt per sample.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample_value(rng)).sample_value(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.0.sample_value(rng)
        }
    }

    /// Weighted choice between boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Self::with_weights(arms.into_iter().map(|s| (1, s)).collect())
        }

        pub fn with_weights(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "Union needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.sample_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u32, u64, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($S:ident, $idx:tt)),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!((A, 0));
    tuple_strategy!((A, 0), (B, 1));
    tuple_strategy!((A, 0), (B, 1), (C, 2));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
    tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));

    /// Types with a canonical strategy (`any::<T>()`). Only the types the
    /// workspace asks for are implemented.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: fair coin.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: exact or half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        @cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let cases = $crate::test_runner::resolved_cases(&config);
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            let _: () = $body;
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < cases.saturating_mul(16) + 256,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property {} failed at case {}/{}: {}",
                                stringify!($name),
                                accepted + 1,
                                cases,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = (1usize..10, -3i32..3, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = s.sample_value(&mut rng);
            assert!((1..10).contains(&a));
            assert!((-3..3).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn flat_map_links_dependent_values() {
        let mut rng = TestRng::from_seed(9);
        let s = (2usize..20).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..30).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = s.sample_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 30);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(17);
        let s = prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample_value(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(23);
        for _ in 0..100 {
            // Each union level adds at most one Node, so depth <= 4 + 1.
            assert!(depth(&s.sample_value(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((n, v) in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 0..10).prop_map(move |v| (n, v))
        }), flag in any::<bool>()) {
            let _ = flag;
            prop_assume!(!v.is_empty() || n > 0);
            prop_assert!(v.iter().all(|&x| x < n), "element out of range: {:?} vs {}", v, n);
            prop_assert_eq!(n.min(8), n);
        }
    }
}
