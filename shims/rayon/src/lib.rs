//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of rayon's API that this workspace uses — thread
//! pools with [`ThreadPool::install`], `into_par_iter()` on integer ranges,
//! and `par_iter`/`par_chunks`/`par_chunks_mut` on slices, with the
//! `map`/`flat_map_iter`/`enumerate`/`for_each`/`collect` adapters — backed
//! by `std::thread::scope`. Work is split into contiguous bands, one per
//! worker; a pool of one thread (or one work item) runs inline with no
//! spawn overhead, which keeps the single-threaded benchmark paths honest.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    // 0 = no pool installed on this thread; fall back to the host parallelism.
    static INSTALLED: Cell<usize> = const { Cell::new(0) };
}

/// Effective worker count for parallel operations started on this thread.
pub fn current_num_threads() -> usize {
    let t = INSTALLED.with(|c| c.get());
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed —
/// building a pool cannot fail here — but kept for signature parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self { num_threads: 0 }
    }

    /// `0` means "use the host parallelism", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical pool: a worker count that parallel adapters started under
/// [`ThreadPool::install`] will honor. Threads are scoped per operation
/// rather than persistent.
pub struct ThreadPool {
    threads: usize,
}

struct InstallGuard(usize);

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's worker count installed for the duration.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED.with(|c| c.replace(self.threads));
        let _guard = InstallGuard(prev);
        op()
    }
}

/// Split `0..n_items` into contiguous bands (one per worker) and run `f` on
/// each band, returning the per-band results in order. Band 0 runs on the
/// calling thread; a single band short-circuits to an inline call.
fn run_bands<R, F>(n_items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n_items == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n_items).max(1);
    if threads == 1 {
        return vec![f(0..n_items)];
    }
    let per = n_items.div_ceil(threads);
    let mut ranges = (0..threads)
        .map(|t| (t * per)..((t + 1) * per).min(n_items))
        .filter(|r| r.start < r.end);
    let first = ranges.next();
    let rest: Vec<Range<usize>> = ranges.collect();
    std::thread::scope(|s| {
        let fref = &f;
        let handles: Vec<_> = rest
            .into_iter()
            .map(|r| s.spawn(move || fref(r)))
            .collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        if let Some(r) = first {
            out.push(f(r));
        }
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Ordered collection from per-band chunks (rayon's `FromParallelIterator`).
pub trait FromParIter<T> {
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// Integer types usable as parallel range indices.
pub trait RangeIndex: Copy + Send + Sync {
    fn to_usize(self) -> usize;
    fn from_usize(u: usize) -> Self;
}

macro_rules! range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
            #[inline]
            fn from_usize(u: usize) -> Self {
                u as $t
            }
        }
    )*};
}

range_index!(u32, u64, usize);

/// Entry point mirroring `rayon::iter::IntoParallelIterator` for ranges.
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: RangeIndex> IntoParallelIterator for Range<T> {
    type Iter = ParRange<T>;
    fn into_par_iter(self) -> ParRange<T> {
        ParRange { range: self }
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    range: Range<T>,
}

impl<T: RangeIndex> ParRange<T> {
    fn base_len(&self) -> (usize, usize) {
        let base = self.range.start.to_usize();
        let len = self.range.end.to_usize().saturating_sub(base);
        (base, len)
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let (base, len) = self.base_len();
        run_bands(len, |band| {
            for i in band {
                f(T::from_usize(base + i));
            }
        });
    }

    pub fn map<U, F>(self, f: F) -> ParRangeMap<T, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        ParRangeMap { range: self, f }
    }
}

/// `map` adapter over a [`ParRange`].
pub struct ParRangeMap<T, F> {
    range: ParRange<T>,
    f: F,
}

impl<T: RangeIndex, U: Send, F: Fn(T) -> U + Sync> ParRangeMap<T, F> {
    pub fn collect<C: FromParIter<U>>(self) -> C {
        let (base, len) = self.range.base_len();
        let f = &self.f;
        let chunks = run_bands(len, |band| {
            band.map(|i| f(T::from_usize(base + i))).collect::<Vec<U>>()
        });
        C::from_ordered_chunks(chunks)
    }

    pub fn for_each_result(self) {}
}

/// Shared-slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let s = self.slice;
        run_bands(s.len(), |band| {
            for i in band {
                f(&s[i]);
            }
        });
    }

    /// rayon's `flat_map_iter`: map each item to a serial iterator and
    /// concatenate in order.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParFlatMapIter<'a, T, F>
    where
        F: Fn(&'a T) -> I + Sync,
        I: IntoIterator<Item = U>,
        U: Send,
    {
        ParFlatMapIter {
            slice: self.slice,
            f,
            _marker: PhantomData,
        }
    }
}

/// `flat_map_iter` adapter over a [`ParSliceIter`].
pub struct ParFlatMapIter<'a, T, F> {
    slice: &'a [T],
    f: F,
    _marker: PhantomData<&'a T>,
}

impl<'a, T, U, I, F> ParFlatMapIter<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> I + Sync,
    I: IntoIterator<Item = U>,
    U: Send,
{
    pub fn collect<C: FromParIter<U>>(self) -> C {
        let s = self.slice;
        let f = &self.f;
        let chunks = run_bands(s.len(), |band| {
            let mut out = Vec::new();
            for i in band {
                out.extend(f(&s[i]));
            }
            out
        });
        C::from_ordered_chunks(chunks)
    }
}

/// Parallel iterator over shared sub-slices of fixed size.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        let s = self.slice;
        let size = self.size;
        let n_chunks = s.len().div_ceil(size);
        run_bands(n_chunks, |band| {
            for ci in band {
                let start = ci * size;
                let end = (start + size).min(s.len());
                f(&s[start..end]);
            }
        });
    }
}

/// Mutable-slice entry point (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

// Safety: the pointer is only dereferenced for disjoint chunk ranges, one
// chunk per band item, so no two threads touch the same elements.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parallel iterator over mutable sub-slices of fixed size.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    fn run<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let len = self.slice.len();
        let size = self.size;
        let n_chunks = len.div_ceil(size);
        let ptr = SendPtr(self.slice.as_mut_ptr());
        run_bands(n_chunks, |band| {
            let p = ptr;
            for ci in band {
                let start = ci * size;
                let end = (start + size).min(len);
                // Safety: chunks are disjoint (one index per band item) and
                // the parent `&mut [T]` borrow outlives the scoped threads.
                let chunk = unsafe { std::slice::from_raw_parts_mut(p.0.add(start), end - start) };
                f(ci, chunk);
            }
        });
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.run(|_, c| f(c));
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// rayon's indexed `zip`: pair this iterator's chunks with another
    /// mutable-chunk iterator's, truncating to the shorter one. Chunk `i`
    /// of both slices lands in the same closure call (and band), so two
    /// arrays banded by the same key can be updated together.
    pub fn zip<U: Send>(self, other: ParChunksMut<'a, U>) -> ParChunksMutZip<'a, T, U> {
        ParChunksMutZip { a: self, b: other }
    }
}

/// `enumerate` adapter over [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.inner.run(|i, c| f((i, c)));
    }
}

/// `zip` of two [`ParChunksMut`] iterators (rayon's indexed zip).
pub struct ParChunksMutZip<'a, T, U> {
    a: ParChunksMut<'a, T>,
    b: ParChunksMut<'a, U>,
}

impl<'a, T: Send, U: Send> ParChunksMutZip<'a, T, U> {
    fn run<F>(self, f: F)
    where
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        let (alen, asize) = (self.a.slice.len(), self.a.size);
        let (blen, bsize) = (self.b.slice.len(), self.b.size);
        let n_chunks = alen.div_ceil(asize).min(blen.div_ceil(bsize));
        let pa = SendPtr(self.a.slice.as_mut_ptr());
        let pb = SendPtr(self.b.slice.as_mut_ptr());
        run_bands(n_chunks, |band| {
            let (pa, pb) = (pa, pb);
            for ci in band {
                let (astart, bstart) = (ci * asize, ci * bsize);
                let aend = (astart + asize).min(alen);
                let bend = (bstart + bsize).min(blen);
                // Safety: as in `ParChunksMut::run` — each chunk index is
                // visited exactly once, so the ranges are disjoint per slice.
                let ca = unsafe { std::slice::from_raw_parts_mut(pa.0.add(astart), aend - astart) };
                let cb = unsafe { std::slice::from_raw_parts_mut(pb.0.add(bstart), bend - bstart) };
                f(ci, ca, cb);
            }
        });
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut [T], &mut [U])) + Sync,
    {
        self.run(|_, a, b| f((a, b)));
    }

    pub fn enumerate(self) -> ParChunksMutZipEnumerate<'a, T, U> {
        ParChunksMutZipEnumerate { inner: self }
    }
}

/// `enumerate` adapter over [`ParChunksMutZip`].
pub struct ParChunksMutZipEnumerate<'a, T, U> {
    inner: ParChunksMutZip<'a, T, U>,
}

impl<T: Send, U: Send> ParChunksMutZipEnumerate<'_, T, U> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut [T], &mut [U]))) + Sync,
    {
        self.inner.run(|i, a, b| f((i, (a, b))));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<u64> = pool.install(|| (0u64..1000).into_par_iter().map(|i| i * 2).collect());
        let want: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chunks_mut_enumerate_touches_every_chunk_once() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0usize; 103];
        pool.install(|| {
            data.as_mut_slice()
                .par_chunks_mut(10)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    for v in chunk {
                        *v = ci + 1;
                    }
                });
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 10 + 1);
        }
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let items = [1usize, 2, 3];
        let got: Vec<usize> = items.par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(got, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn par_chunks_visits_whole_slice() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data: Vec<usize> = (0..57).collect();
        let total = AtomicUsize::new(0);
        data.par_chunks(8).for_each(|c| {
            total.fetch_add(c.iter().sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), (0..57).sum::<usize>());
    }

    #[test]
    fn zipped_chunks_pair_same_index_and_cover_ragged_tails() {
        // 23 rows of width 4 zipped with a 23-long scalar array: chunk i of
        // the wide slice must land with chunk i of the narrow one, including
        // the short tail chunk.
        let mut wide = vec![0usize; 23 * 4];
        let mut narrow = [0usize; 23];
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            wide.par_chunks_mut(5 * 4)
                .zip(narrow.par_chunks_mut(5))
                .enumerate()
                .for_each(|(ci, (w, n))| {
                    assert_eq!(w.len(), n.len() * 4);
                    for v in w.iter_mut() {
                        *v = ci + 1;
                    }
                    for v in n.iter_mut() {
                        *v = ci + 1;
                    }
                });
        });
        for (i, &v) in narrow.iter().enumerate() {
            assert_eq!(v, i / 5 + 1);
        }
        for (i, &v) in wide.iter().enumerate() {
            assert_eq!(v, i / (5 * 4) + 1);
        }
    }

    #[test]
    fn install_restores_previous_worker_count() {
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 5);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 5);
        });
    }

    #[test]
    fn zero_num_threads_means_host_default() {
        let p = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(p.current_num_threads() >= 1);
    }
}
