//! Offline stand-in for the `rand_pcg` crate: [`Pcg64Mcg`] only.
//!
//! Same construction as the real crate — a 128-bit multiplicative
//! congruential generator with XSL-RR output — so statistical quality
//! matches; the seeding path differs only in that `seed_from_u64` comes
//! from the shimmed `rand::SeedableRng` default.

use rand::{RngCore, SeedableRng};

const MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG XSL-RR 128/64 (MCG variant).
#[derive(Clone, Debug)]
pub struct Pcg64Mcg {
    state: u128,
}

impl RngCore for Pcg64Mcg {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MUL);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

impl SeedableRng for Pcg64Mcg {
    type Seed = [u8; 16];

    fn from_seed(seed: [u8; 16]) -> Self {
        // An MCG state must be odd.
        Self {
            state: u128::from_le_bytes(seed) | 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = Pcg64Mcg::seed_from_u64(99);
        let mut b = Pcg64Mcg::seed_from_u64(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64Mcg::seed_from_u64(1);
        let mut b = Pcg64Mcg::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut r = Pcg64Mcg::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
