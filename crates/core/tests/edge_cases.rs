//! Degenerate-input regression tests: empty graphs, isolated vertices, and
//! zero feature dimensions must produce `Err` or a well-defined empty
//! result — never a panic.

use featgraph::reference::{sddmm_reference, spmm_reference};
use featgraph::{
    sddmm, spmm, GraphTensors, KernelError, Reducer, Target, Udf,
};
use fg_graph::Graph;
use fg_ir::Fds;
use fg_tensor::Dense2;

const ALL_REDUCERS: [Reducer; 4] = [Reducer::Sum, Reducer::Max, Reducer::Min, Reducer::Mean];

/// Deterministic quarter-integer lattice values in `[-2, 2]`: sums and
/// products stay exact in f32, so everything but `Mean`'s division can be
/// compared bit-for-bit against the reference.
fn lattice_features(rows: usize, cols: usize) -> Dense2<f32> {
    Dense2::from_fn(rows, cols, |r, c| ((r * 5 + c * 3) % 17) as f32 * 0.25 - 2.0)
}

fn assert_close(want: &[f32], got: &[f32], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: length");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert!(
            (w - g).abs() <= 1e-5 * w.abs().max(1.0),
            "{what}: index {i}: want {w}, got {g}"
        );
    }
}

fn empty_graph() -> Graph {
    Graph::from_edges(0, &[])
}

fn edgeless_graph(n: usize) -> Graph {
    Graph::from_edges(n, &[])
}

#[test]
fn zero_feature_dim_is_a_clean_error() {
    let g = edgeless_graph(4);
    let udf = Udf::copy_src(0);
    for target in [Target::Cpu, Target::Gpu] {
        let Err(err) = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()) else {
            panic!("zero-dim spmm compiled");
        };
        assert!(matches!(err, KernelError::Udf(_)), "{err}");
        let Err(err) = sddmm(&g, &udf, target, &Fds::default()) else {
            panic!("zero-dim sddmm compiled");
        };
        assert!(matches!(err, KernelError::Udf(_)), "{err}");
    }
}

#[test]
fn spmm_on_zero_vertex_graph() {
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let udf = Udf::copy_src(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 8);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn spmm_on_edgeless_graph_yields_identity_rows() {
    // 5 isolated vertices: sum-aggregation output is all zeros, no panic
    // from the partitioner or the thread pool.
    let g = edgeless_graph(5);
    let x = Dense2::<f32>::from_fn(5, 4, |v, i| (v + i) as f32);
    let udf = Udf::copy_src(4);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::from_fn(5, 4, |_, _| 7.0);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn sddmm_on_zero_vertex_graph() {
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let udf = Udf::dot(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = sddmm(&g, &udf, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn sddmm_on_edgeless_graph() {
    let g = edgeless_graph(6);
    let x = Dense2::<f32>::from_fn(6, 8, |v, i| (v * i) as f32 * 0.1);
    let udf = Udf::dot(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = sddmm(&g, &udf, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn mlp_spmm_on_empty_graph() {
    // the MLP fast path indexes params and shared tiles; make sure the
    // empty iteration spaces hold up
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let w = Dense2::<f32>::zeros(8, 4);
    let params = [&w];
    let inputs = GraphTensors::with_params(&x, &params);
    let udf = Udf::mlp(8, 4);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 4);
        k.run(&inputs, &mut out).unwrap();
    }
}

#[test]
fn oversized_schedule_parameters_clamp() {
    // more feature tiles than feature columns, more partitions than
    // vertices: the schedule should clamp, not panic or mis-aggregate
    let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
    let x = Dense2::<f32>::from_fn(3, 2, |v, i| (v * 2 + i) as f32);
    let udf = Udf::copy_src(2);
    use featgraph::cpu::spmm::{CpuSpmm, CpuSpmmOptions};
    let fds = Fds::cpu_tiled(16); // 16 tiles over 2 columns
    let opts = CpuSpmmOptions::with_threads(64, 1); // 64 partitions over 3 vertices
    let k = CpuSpmm::compile(&g, &udf, Reducer::Sum, &fds, &opts).unwrap();
    let mut out = Dense2::<f32>::zeros(3, 2);
    k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    // ring graph: each vertex receives exactly its predecessor's feature
    assert_eq!(out.row(1), x.row(0));
}

// --- degenerate-topology differential tests (fg-check satellite) ---------
//
// Duplicate edges, self-loops, and all-isolated vertex sets are the graph
// shapes the fg-check fuzzer weights hardest; these lock the audited
// behavior in as plain unit tests: every reducer, both kernels, both
// optimized targets, and the ligra/gunrock/sparselib baselines must agree
// with the naive reference.

fn self_loop_graph() -> Graph {
    Graph::from_edges(4, &[(0, 0), (1, 1), (2, 2), (3, 3), (0, 1), (2, 1), (3, 0)])
}

fn duplicate_edges() -> &'static [(u32, u32)] {
    &[(0, 1), (0, 1), (2, 3), (2, 3), (2, 3), (4, 0), (1, 2), (1, 2), (3, 3)]
}

fn unique_edges() -> &'static [(u32, u32)] {
    &[(0, 1), (2, 3), (4, 0), (1, 2), (3, 3)]
}

fn spmm_matches_reference_on(g: &Graph, what: &str) {
    let (n, d) = (g.num_vertices(), 4);
    let x = lattice_features(n, d);
    let udf = Udf::copy_src(d);
    let inputs = GraphTensors::vertex_only(&x);
    for reducer in ALL_REDUCERS {
        let mut want = Dense2::<f32>::zeros(n, d);
        spmm_reference(g, &udf, reducer, &inputs, &mut want).unwrap();
        for target in [Target::Cpu, Target::Gpu] {
            let k = spmm(g, &udf, reducer, target, &Fds::default()).unwrap();
            // canary fill: a skipped row cannot masquerade as a correct zero
            let mut out = Dense2::<f32>::from_fn(n, d, |_, _| -77.25);
            k.run(&inputs, &mut out).unwrap();
            assert_close(
                want.as_slice(),
                out.as_slice(),
                &format!("{what}: spmm {reducer:?} {target:?}"),
            );
        }
    }
}

fn sddmm_matches_reference_on(g: &Graph, what: &str) {
    let (n, m, d) = (g.num_vertices(), g.num_edges(), 4);
    let x = lattice_features(n, d);
    let udf = Udf::dot(d);
    let inputs = GraphTensors::vertex_only(&x);
    let mut want = Dense2::<f32>::zeros(m, 1);
    sddmm_reference(g, &udf, &inputs, &mut want).unwrap();
    for target in [Target::Cpu, Target::Gpu] {
        let k = sddmm(g, &udf, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::from_fn(m, 1, |_, _| -77.25);
        k.run(&inputs, &mut out).unwrap();
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: sddmm {target:?}"));
    }
}

#[test]
fn every_reducer_matches_reference_on_self_loops() {
    let g = self_loop_graph();
    spmm_matches_reference_on(&g, "self-loop");
    sddmm_matches_reference_on(&g, "self-loop");
}

#[test]
fn every_reducer_matches_reference_on_duplicate_edges() {
    let g = Graph::from_edges(5, duplicate_edges());
    spmm_matches_reference_on(&g, "duplicate-edge");
    sddmm_matches_reference_on(&g, "duplicate-edge");
}

#[test]
fn duplicate_edges_collapse_to_the_deduplicated_graph() {
    // Construction canonicalizes: a list with repeats and its unique form
    // must produce identical kernels (Sum in particular would double-count
    // if duplicates survived anywhere in the pipeline).
    let dup = Graph::from_edges(5, duplicate_edges());
    let uni = Graph::from_edges(5, unique_edges());
    assert_eq!(dup.num_edges(), uni.num_edges());
    let x = lattice_features(5, 3);
    let udf = Udf::copy_src(3);
    let inputs = GraphTensors::vertex_only(&x);
    for reducer in ALL_REDUCERS {
        for target in [Target::Cpu, Target::Gpu] {
            let mut out_dup = Dense2::<f32>::zeros(5, 3);
            let mut out_uni = Dense2::<f32>::zeros(5, 3);
            spmm(&dup, &udf, reducer, target, &Fds::default())
                .unwrap()
                .run(&inputs, &mut out_dup)
                .unwrap();
            spmm(&uni, &udf, reducer, target, &Fds::default())
                .unwrap()
                .run(&inputs, &mut out_uni)
                .unwrap();
            assert_eq!(
                out_dup.as_slice(),
                out_uni.as_slice(),
                "{reducer:?} {target:?}"
            );
        }
    }
}

#[test]
fn every_reducer_on_all_isolated_vertices_is_zero() {
    // Zero-in-degree audit: Max/Min must normalize their ±∞-like identity
    // to 0.0 exactly once, Mean must not divide by zero — on every path.
    let g = edgeless_graph(7);
    spmm_matches_reference_on(&g, "all-isolated");
    let x = lattice_features(7, 4);
    let udf = Udf::copy_src(4);
    let inputs = GraphTensors::vertex_only(&x);
    for reducer in ALL_REDUCERS {
        for target in [Target::Cpu, Target::Gpu] {
            let k = spmm(&g, &udf, reducer, target, &Fds::default()).unwrap();
            let mut out = Dense2::<f32>::from_fn(7, 4, |_, _| -77.25);
            k.run(&inputs, &mut out).unwrap();
            assert!(
                out.as_slice().iter().all(|&v| v == 0.0),
                "{reducer:?} {target:?}: sentinel or canary leaked: {:?}",
                out.as_slice()
            );
        }
    }
    sddmm_matches_reference_on(&g, "all-isolated");
}

#[test]
fn baselines_agree_on_degenerate_graphs() {
    // ligra / gunrock / mkl / cusparse on their supported shapes (SpMM ·
    // copy-src · Sum and SDDMM · dot), over the same degenerate topologies.
    let graphs = [
        ("self-loop", self_loop_graph()),
        ("duplicate-edge", Graph::from_edges(5, duplicate_edges())),
        ("all-isolated", edgeless_graph(6)),
    ];
    for (what, g) in &graphs {
        let (n, m, d) = (g.num_vertices(), g.num_edges(), 4);
        let x = lattice_features(n, d);
        let inputs = GraphTensors::vertex_only(&x);

        let udf = Udf::copy_src(d);
        let mut want = Dense2::<f32>::zeros(n, d);
        spmm_reference(g, &udf, Reducer::Sum, &inputs, &mut want).unwrap();
        let lopts = fg_ligra::EdgeMapOptions::default();
        let gopts = fg_gunrock::GunrockOptions::default();
        let copts = fg_sparselib::cusparse_like::CusparseOptions::default();

        let mut out = Dense2::<f32>::from_fn(n, d, |_, _| -77.25);
        fg_ligra::kernels::gcn_aggregation(g, &x, &mut out, &lopts);
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: ligra gcn"));

        out.fill(-77.25);
        fg_gunrock::gcn_aggregation(g, &x, &mut out, &gopts);
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: gunrock gcn"));

        out.fill(-77.25);
        fg_sparselib::mkl_like::csrmm(g, &x, &mut out, 2);
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: mkl csrmm"));

        out.fill(-77.25);
        fg_sparselib::cusparse_like::csrmm(g, &x, &mut out, &copts);
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: cusparse csrmm"));

        let dot = Udf::dot(d);
        let mut want_e = Dense2::<f32>::zeros(m, 1);
        sddmm_reference(g, &dot, &inputs, &mut want_e).unwrap();

        let mut out_e = Dense2::<f32>::from_fn(m, 1, |_, _| -77.25);
        fg_ligra::kernels::dot_attention(g, &x, &mut out_e, &lopts);
        assert_close(want_e.as_slice(), out_e.as_slice(), &format!("{what}: ligra dot"));

        out_e.fill(-77.25);
        fg_gunrock::dot_attention(g, &x, &mut out_e, &gopts);
        assert_close(want_e.as_slice(), out_e.as_slice(), &format!("{what}: gunrock dot"));
    }
}

#[test]
fn mlp_baselines_agree_on_degenerate_graphs() {
    // SpMM · mlp · Max is the other baseline-supported shape.
    let graphs = [
        ("self-loop", self_loop_graph()),
        ("duplicate-edge", Graph::from_edges(5, duplicate_edges())),
        ("all-isolated", edgeless_graph(6)),
    ];
    let (d1, d2) = (4, 3);
    for (what, g) in &graphs {
        let n = g.num_vertices();
        let x = lattice_features(n, d1);
        let w = lattice_features(d1, d2);
        let params = [&w];
        let inputs = GraphTensors::with_params(&x, &params);
        let udf = Udf::mlp(d1, d2);
        let mut want = Dense2::<f32>::zeros(n, d2);
        spmm_reference(g, &udf, Reducer::Max, &inputs, &mut want).unwrap();

        let mut out = Dense2::<f32>::from_fn(n, d2, |_, _| -77.25);
        fg_ligra::kernels::mlp_aggregation(g, &x, &w, &mut out, &fg_ligra::EdgeMapOptions::default());
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: ligra mlp"));

        out.fill(-77.25);
        fg_gunrock::mlp_aggregation(g, &x, &w, &mut out, &fg_gunrock::GunrockOptions::default());
        assert_close(want.as_slice(), out.as_slice(), &format!("{what}: gunrock mlp"));
    }
}

#[test]
fn autotune_on_edgeless_graph() {
    use featgraph::autotune::{tune_spmm_cpu, tune_spmm_cpu_adaptive};
    let g = edgeless_graph(3);
    let x = Dense2::<f32>::zeros(3, 4);
    let inputs = GraphTensors::vertex_only(&x);
    let udf = Udf::copy_src(4);
    let r = tune_spmm_cpu(&g, &udf, Reducer::Sum, &inputs, &[1, 2], &[1, 2], 1, 1).unwrap();
    assert_eq!(r.grid.len(), 4);
    let r = tune_spmm_cpu_adaptive(&g, &udf, Reducer::Sum, &inputs, 2, 2, 1, 1).unwrap();
    assert_eq!(r.best.graph_partitions, 1);
}
