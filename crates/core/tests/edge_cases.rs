//! Degenerate-input regression tests: empty graphs, isolated vertices, and
//! zero feature dimensions must produce `Err` or a well-defined empty
//! result — never a panic.

use featgraph::{
    sddmm, spmm, GraphTensors, KernelError, Reducer, Target, Udf,
};
use fg_graph::Graph;
use fg_ir::Fds;
use fg_tensor::Dense2;

fn empty_graph() -> Graph {
    Graph::from_edges(0, &[])
}

fn edgeless_graph(n: usize) -> Graph {
    Graph::from_edges(n, &[])
}

#[test]
fn zero_feature_dim_is_a_clean_error() {
    let g = edgeless_graph(4);
    let udf = Udf::copy_src(0);
    for target in [Target::Cpu, Target::Gpu] {
        let Err(err) = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()) else {
            panic!("zero-dim spmm compiled");
        };
        assert!(matches!(err, KernelError::Udf(_)), "{err}");
        let Err(err) = sddmm(&g, &udf, target, &Fds::default()) else {
            panic!("zero-dim sddmm compiled");
        };
        assert!(matches!(err, KernelError::Udf(_)), "{err}");
    }
}

#[test]
fn spmm_on_zero_vertex_graph() {
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let udf = Udf::copy_src(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 8);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn spmm_on_edgeless_graph_yields_identity_rows() {
    // 5 isolated vertices: sum-aggregation output is all zeros, no panic
    // from the partitioner or the thread pool.
    let g = edgeless_graph(5);
    let x = Dense2::<f32>::from_fn(5, 4, |v, i| (v + i) as f32);
    let udf = Udf::copy_src(4);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::from_fn(5, 4, |_, _| 7.0);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn sddmm_on_zero_vertex_graph() {
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let udf = Udf::dot(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = sddmm(&g, &udf, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn sddmm_on_edgeless_graph() {
    let g = edgeless_graph(6);
    let x = Dense2::<f32>::from_fn(6, 8, |v, i| (v * i) as f32 * 0.1);
    let udf = Udf::dot(8);
    for target in [Target::Cpu, Target::Gpu] {
        let k = sddmm(&g, &udf, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }
}

#[test]
fn mlp_spmm_on_empty_graph() {
    // the MLP fast path indexes params and shared tiles; make sure the
    // empty iteration spaces hold up
    let g = empty_graph();
    let x = Dense2::<f32>::zeros(0, 8);
    let w = Dense2::<f32>::zeros(8, 4);
    let params = [&w];
    let inputs = GraphTensors::with_params(&x, &params);
    let udf = Udf::mlp(8, 4);
    for target in [Target::Cpu, Target::Gpu] {
        let k = spmm(&g, &udf, Reducer::Sum, target, &Fds::default()).unwrap();
        let mut out = Dense2::<f32>::zeros(0, 4);
        k.run(&inputs, &mut out).unwrap();
    }
}

#[test]
fn oversized_schedule_parameters_clamp() {
    // more feature tiles than feature columns, more partitions than
    // vertices: the schedule should clamp, not panic or mis-aggregate
    let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
    let x = Dense2::<f32>::from_fn(3, 2, |v, i| (v * 2 + i) as f32);
    let udf = Udf::copy_src(2);
    use featgraph::cpu::spmm::{CpuSpmm, CpuSpmmOptions};
    let fds = Fds::cpu_tiled(16); // 16 tiles over 2 columns
    let opts = CpuSpmmOptions::with_threads(64, 1); // 64 partitions over 3 vertices
    let k = CpuSpmm::compile(&g, &udf, Reducer::Sum, &fds, &opts).unwrap();
    let mut out = Dense2::<f32>::zeros(3, 2);
    k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    // ring graph: each vertex receives exactly its predecessor's feature
    assert_eq!(out.row(1), x.row(0));
}

#[test]
fn autotune_on_edgeless_graph() {
    use featgraph::autotune::{tune_spmm_cpu, tune_spmm_cpu_adaptive};
    let g = edgeless_graph(3);
    let x = Dense2::<f32>::zeros(3, 4);
    let inputs = GraphTensors::vertex_only(&x);
    let udf = Udf::copy_src(4);
    let r = tune_spmm_cpu(&g, &udf, Reducer::Sum, &inputs, &[1, 2], &[1, 2], 1, 1).unwrap();
    assert_eq!(r.grid.len(), 4);
    let r = tune_spmm_cpu_adaptive(&g, &udf, Reducer::Sum, &inputs, 2, 2, 1, 1).unwrap();
    assert_eq!(r.best.graph_partitions, 1);
}
