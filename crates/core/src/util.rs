//! Internal utilities: disjoint-row parallel writes and thread pools.

use fg_tensor::Scalar;
use std::cell::UnsafeCell;

/// A shareable view of a mutable 2D buffer that lets parallel workers write
/// *disjoint* rows without locking.
///
/// # Safety contract
///
/// `row_mut` hands out `&mut` slices derived from a shared reference; the
/// caller must guarantee that no two concurrent calls use the same row index.
/// Both call sites in this crate satisfy that by construction:
///
/// * CPU SDDMM writes row `eid`, and the edge visit order is a permutation
///   of edge IDs partitioned into disjoint chunks;
/// * CPU SpMM partitions destination rows into disjoint bands.
pub struct SharedRows<'a, S> {
    data: &'a UnsafeCell<[S]>,
    cols: usize,
}

// Safety: access discipline (disjoint rows) is enforced by callers per the
// contract above; the underlying data is plain `S: Send + Sync` POD.
unsafe impl<S: Send> Send for SharedRows<'_, S> {}
unsafe impl<S: Send> Sync for SharedRows<'_, S> {}

impl<'a, S: Scalar> SharedRows<'a, S> {
    /// Wrap a flat row-major buffer of `cols`-wide rows.
    pub fn new(data: &'a mut [S], cols: usize) -> Self {
        assert!(cols > 0, "cols must be positive");
        assert_eq!(data.len() % cols, 0, "buffer not a whole number of rows");
        // UnsafeCell via pointer cast: &mut [S] -> &UnsafeCell<[S]>
        let ptr = data as *mut [S] as *const UnsafeCell<[S]>;
        // Safety: UnsafeCell<[S]> has the same layout as [S]; we hold the
        // unique borrow for 'a.
        let data = unsafe { &*ptr };
        Self { data, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        // Length of a slice pointer can be read without forming a reference.
        let ptr: *mut [S] = self.data.get();
        ptr.len() / self.cols
    }

    /// Mutable access to row `r`.
    ///
    /// # Safety
    /// Caller must ensure no concurrent access (read or write) to row `r`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [S] {
        let all = &mut *self.data.get();
        debug_assert!((r + 1) * self.cols <= all.len(), "row out of bounds");
        &mut all[r * self.cols..(r + 1) * self.cols]
    }
}

/// Worker-thread count detected from the OS.
///
/// When `std::thread::available_parallelism` errors (sandboxes, unusual
/// cgroup configurations, exotic platforms), the `auto` option constructors
/// fall back to **one** thread. That used to happen silently — a
/// mis-configured container would quietly run every kernel serially. The
/// first fallback in a process now emits a one-line warning on stderr and
/// increments the `parallelism_fallbacks` telemetry counter so the
/// degradation is visible in metric snapshots.
pub fn detected_threads() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(err) => {
            static ONCE: std::sync::Once = std::sync::Once::new();
            ONCE.call_once(|| {
                eprintln!(
                    "featgraph: available_parallelism failed ({err}); \
                     falling back to 1 worker thread"
                );
                fg_telemetry::counter_add(fg_telemetry::Counter::ParallelismFallbacks, 1);
            });
            1
        }
    }
}

/// Build a rayon thread pool with `threads` workers (1 = effectively serial).
pub fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build thread pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut buf = vec![0.0f32; 100 * 8];
        {
            let shared = SharedRows::new(&mut buf, 8);
            assert_eq!(shared.rows(), 100);
            (0..100usize).into_par_iter().for_each(|r| {
                // Safety: each r visited exactly once.
                let row = unsafe { shared.row_mut(r) };
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r * 8 + c) as f32;
                }
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_rejected() {
        let mut buf = vec![0.0f32; 10];
        let _ = SharedRows::new(&mut buf, 3);
    }

    #[test]
    fn pool_respects_thread_count() {
        let p = pool(3);
        assert_eq!(p.current_num_threads(), 3);
        let p = pool(0);
        assert_eq!(p.current_num_threads(), 1);
    }
}
