//! Naive reference implementations.
//!
//! Single-threaded, interpreter-driven, allocation-happy — and obviously
//! correct. Every optimized kernel in this crate (and every baseline system
//! in the workspace) is tested against these.

use fg_graph::Graph;
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::{FusedOp, Reducer, Udf};
use fg_tensor::{Dense2, Scalar};

use crate::error::KernelError;
use crate::inputs::{FusedInputs, GraphTensors};

/// Reference generalized SpMM: for every vertex `v`,
/// `out[v] = agg over incoming edges (u→v) of udf(u, v, eid)`.
pub fn spmm_reference<S: Scalar>(
    graph: &Graph,
    udf: &Udf,
    agg: Reducer,
    inputs: &GraphTensors<'_, S>,
    out: &mut Dense2<S>,
) -> Result<(), KernelError> {
    udf.validate()?;
    inputs.validate(udf, graph.num_vertices(), graph.num_edges(), out, graph.num_vertices())?;
    let empty: [S; 0] = [];
    let xd = inputs.dst_tensor();
    out.fill(agg.identity());
    let mut msg = vec![S::ZERO; udf.out_len];
    for (src, dst, eid) in graph.edges() {
        let ctx = EdgeCtx {
            src: if udf.src_len > 0 { inputs.vertex.row(src as usize) } else { &empty },
            dst: if udf.dst_len > 0 { xd.row(dst as usize) } else { &empty },
            edge: match inputs.edge {
                Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        eval_udf(udf, &ctx, inputs.params, &mut msg, |slot, v| *slot = v);
        let row = out.row_mut(dst as usize);
        for (o, &m) in row.iter_mut().zip(&msg) {
            *o = agg.combine(*o, m);
        }
    }
    // finalize (mean division, zero-degree normalization)
    for v in 0..graph.num_vertices() as u32 {
        let deg = graph.in_degree(v);
        for o in out.row_mut(v as usize) {
            *o = agg.finalize(*o, deg);
        }
    }
    Ok(())
}

/// Reference generalized SDDMM: for every edge `(u→v, eid)`,
/// `out[eid] = udf(u, v, eid)`.
pub fn sddmm_reference<S: Scalar>(
    graph: &Graph,
    udf: &Udf,
    inputs: &GraphTensors<'_, S>,
    out: &mut Dense2<S>,
) -> Result<(), KernelError> {
    udf.validate()?;
    inputs.validate(udf, graph.num_vertices(), graph.num_edges(), out, graph.num_edges())?;
    let empty: [S; 0] = [];
    let xd = inputs.dst_tensor();
    for (src, dst, eid) in graph.edges() {
        let ctx = EdgeCtx {
            src: if udf.src_len > 0 { inputs.vertex.row(src as usize) } else { &empty },
            dst: if udf.dst_len > 0 { xd.row(dst as usize) } else { &empty },
            edge: match inputs.edge {
                Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        // Split borrow: out row is disjoint from inputs.
        let mut msg = vec![S::ZERO; udf.out_len];
        eval_udf(udf, &ctx, inputs.params, &mut msg, |slot, v| *slot = v);
        out.row_mut(eid as usize).copy_from_slice(&msg);
    }
    Ok(())
}

/// Reference fused SDDMM → (softmax) → SpMM — deliberately the *unfused*
/// composition: materialize all `|E|` scores, normalize per destination,
/// then aggregate scaled messages. The fused kernels are differential-tested
/// against this.
pub fn fused_reference(
    graph: &Graph,
    op: &FusedOp,
    inputs: &FusedInputs<'_, f32>,
    out: &mut Dense2<f32>,
) -> Result<(), KernelError> {
    op.validate()?;
    inputs.validate(op, graph.num_vertices(), graph.num_edges(), out)?;
    let empty: [f32; 0] = [];

    // Pass 1: materialize the |E| raw scores (what the fused path avoids).
    let sudf = &op.score;
    let sxd = inputs.score.dst_tensor();
    let mut scores = vec![0f32; graph.num_edges()];
    for (src, dst, eid) in graph.edges() {
        let ctx = EdgeCtx {
            src: if sudf.src_len > 0 { inputs.score.vertex.row(src as usize) } else { &empty },
            dst: if sudf.dst_len > 0 { sxd.row(dst as usize) } else { &empty },
            edge: match inputs.score.edge {
                Some(e) if sudf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        let mut s = [0f32; 1];
        eval_udf(sudf, &ctx, inputs.score.params, &mut s, |slot, v| *slot = v);
        scores[eid as usize] = s[0];
    }

    // Pass 2: per-destination softmax. Canonical edge IDs are dst-major, so
    // each destination's incoming edges are the contiguous indptr segment.
    if op.softmax {
        let indptr = graph.in_csr().indptr();
        for v in 0..graph.num_vertices() {
            let seg = &mut scores[indptr[v]..indptr[v + 1]];
            if seg.is_empty() {
                continue;
            }
            let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for s in seg.iter_mut() {
                *s = (*s - max).exp();
                sum += *s;
            }
            if sum > 0.0 {
                for s in seg.iter_mut() {
                    *s /= sum;
                }
            }
        }
    }

    // Pass 3: aggregate score-scaled messages.
    let mudf = &op.message;
    let mxd = inputs.message.dst_tensor();
    out.fill(op.agg.identity());
    let mut msg = vec![0f32; mudf.out_len];
    for (src, dst, eid) in graph.edges() {
        let ctx = EdgeCtx {
            src: if mudf.src_len > 0 { inputs.message.vertex.row(src as usize) } else { &empty },
            dst: if mudf.dst_len > 0 { mxd.row(dst as usize) } else { &empty },
            edge: match inputs.message.edge {
                Some(e) if mudf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        eval_udf(mudf, &ctx, inputs.message.params, &mut msg, |slot, v| *slot = v);
        let w = scores[eid as usize];
        let row = out.row_mut(dst as usize);
        for (o, &m) in row.iter_mut().zip(&msg) {
            *o = op.agg.combine(*o, w * m);
        }
    }
    for v in 0..graph.num_vertices() as u32 {
        let deg = graph.in_degree(v);
        for o in out.row_mut(v as usize) {
            *o = op.agg.finalize(*o, deg);
        }
    }
    Ok(())
}

/// Dense ground truth for vanilla SpMM (`H = A × X`), computed via an
/// explicit dense adjacency. Quadratic — tests only.
pub fn dense_spmm_ground_truth<S: Scalar>(graph: &Graph, x: &Dense2<S>) -> Dense2<S> {
    let n = graph.num_vertices();
    let d = x.cols();
    let mut out = Dense2::zeros(n, d);
    for (src, dst, _) in graph.edges() {
        let (orow, xrow) = (dst as usize, src as usize);
        for c in 0..d {
            let v = out.at(orow, c) + x.at(xrow, c);
            out.set(orow, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    #[test]
    fn spmm_reference_matches_dense_ground_truth() {
        let g = generators::uniform(60, 5, 3);
        let x = Dense2::<f64>::from_fn(60, 8, |v, i| ((v * 7 + i) % 13) as f64 - 6.0);
        let udf = Udf::copy_src(8);
        let mut out = Dense2::zeros(60, 8);
        spmm_reference(&g, &udf, Reducer::Sum, &GraphTensors::vertex_only(&x), &mut out).unwrap();
        let truth = dense_spmm_ground_truth(&g, &x);
        assert!(out.approx_eq(&truth, 1e-9));
    }

    #[test]
    fn spmm_mean_divides_by_degree() {
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]);
        let x = Dense2::<f64>::from_fn(3, 2, |v, _| v as f64);
        let udf = Udf::copy_src(2);
        let mut out = Dense2::zeros(3, 2);
        spmm_reference(&g, &udf, Reducer::Mean, &GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert_eq!(out.row(2), &[0.5, 0.5]);
        // zero-degree vertices are zero, not identity sentinels
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn spmm_max_on_zero_degree_vertex_is_zero() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let x = Dense2::<f32>::from_fn(2, 2, |_, _| -5.0);
        let udf = Udf::copy_src(2);
        let mut out = Dense2::zeros(2, 2);
        spmm_reference(&g, &udf, Reducer::Max, &GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert_eq!(out.row(1), &[-5.0, -5.0]);
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn sddmm_reference_dot_is_rowwise_dot() {
        let g = generators::uniform(20, 3, 1);
        let x = Dense2::<f64>::from_fn(20, 4, |v, i| (v + i) as f64 * 0.1);
        let udf = Udf::dot(4);
        let mut out = Dense2::zeros(g.num_edges(), 1);
        sddmm_reference(&g, &udf, &GraphTensors::vertex_only(&x), &mut out).unwrap();
        for (src, dst, eid) in g.edges() {
            let want: f64 = x
                .row(src as usize)
                .iter()
                .zip(x.row(dst as usize))
                .map(|(&a, &b)| a * b)
                .sum();
            assert!((out.at(eid as usize, 0) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_validates_inputs() {
        let g = generators::uniform(10, 2, 0);
        let x = Dense2::<f32>::zeros(10, 4);
        let udf = Udf::copy_src(8); // wants d=8
        let mut out = Dense2::zeros(10, 8);
        let err =
            spmm_reference(&g, &udf, Reducer::Sum, &GraphTensors::vertex_only(&x), &mut out)
                .unwrap_err();
        assert!(matches!(err, KernelError::Shape { .. }));
    }
}
