//! CPU fused SDDMM → (softmax) → SpMM template.
//!
//! The unfused composition materializes an `|E| × d` edge tensor between the
//! SDDMM and SpMM templates (three full passes over the edge set for an
//! attention layer). This kernel walks each CSR partition and evaluates the
//! edge score *inside* the aggregation loop, combining the scaled message
//! directly into the destination row.
//!
//! The softmax variant streams a per-destination running max in a first
//! (exp-free) pass, then recomputes each score in the aggregate pass,
//! combining `exp(s - m[dst]) · message` unnormalized while accumulating the
//! per-destination exp-sum, and closes with one `O(|V|·d)` row-scale by
//! `1 / sum[dst]`. One `exp` per edge; peak intermediate state is two
//! `|V|`-length f32 vectors — never the `|E| × d` normalized-score tensor.

use fg_graph::{Graph, PartitionedCsr};
use fg_ir::interp::{eval_expr, eval_udf, EdgeCtx};
use fg_ir::{FusedOp, FusedPattern, KernelPattern, Reducer};
use fg_tensor::Dense2;
use fg_telemetry::{counter_add, histogram_record, span, Counter, Histogram};
use rayon::prelude::*;

use crate::cpu::spmm::{band_rows, band_slice, CpuSpmmOptions};
use crate::error::KernelError;
use crate::inputs::FusedInputs;
use crate::util;
use crate::RunStats;

/// A compiled CPU fused-attention kernel.
pub struct CpuFused {
    op: FusedOp,
    pattern: FusedPattern,
    parts: PartitionedCsr,
    degrees: Vec<u32>,
    num_vertices: usize,
    num_edges: usize,
    pool: rayon::ThreadPool,
}

impl CpuFused {
    /// Validate and build the execution plan. Reuses the SpMM template
    /// options (1D source partitions + worker threads) — the traversal is
    /// the same, only the per-edge work differs.
    pub fn compile(
        graph: &Graph,
        op: &FusedOp,
        opts: &CpuSpmmOptions,
    ) -> Result<Self, KernelError> {
        op.validate()?;
        if opts.graph_partitions == 0 {
            return Err(KernelError::BadSchedule(
                "graph_partitions must be >= 1".into(),
            ));
        }
        let parts = PartitionedCsr::build(graph, opts.graph_partitions);
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            op: op.clone(),
            pattern: FusedPattern::of(op),
            parts,
            degrees: (0..graph.num_vertices() as u32)
                .map(|v| graph.in_degree(v) as u32)
                .collect(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            pool: util::pool(opts.threads),
        })
    }

    /// The recognized fused pattern (which fast path will run).
    pub fn pattern(&self) -> FusedPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (partitioned CSR + degree
    /// array).
    pub fn mem_bytes(&self) -> u64 {
        self.parts.mem_bytes() + (self.degrees.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Execute the kernel.
    pub fn run(
        &self,
        inputs: &FusedInputs<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.op, self.num_vertices, self.num_edges, out)?;
        let _run_span = span!(
            "fused/run",
            "pattern={} d={} parts={} softmax={}",
            self.pattern.name(),
            self.op.out_len(),
            self.parts.num_partitions(),
            self.op.softmax
        );
        counter_add(Counter::Partitions, self.parts.num_partitions() as u64);
        if self.op.softmax {
            self.run_softmax(inputs, out);
        } else {
            self.run_plain(inputs, out);
        }
        Ok(RunStats::default())
    }

    /// Softmax path: (A) stream a per-destination running max (exp-free),
    /// (B) combine `exp(s - max) · message` unnormalized while accumulating
    /// the per-destination exp-sum, (C) scale each output row by `1 / sum`.
    fn run_softmax(&self, inputs: &FusedInputs<'_, f32>, out: &mut Dense2<f32>) {
        let n = self.num_vertices;
        let d = self.op.out_len();
        let score = ScoreEval::new(&self.op, self.pattern, inputs);
        let band = band_rows(n, self.pool.current_num_threads());

        // O(|V|) accumulators: running score max and (in pass B) exp-sum.
        let mut maxes = vec![f32::NEG_INFINITY; n];

        for (pi, seg, eids, _) in self.parts.iter() {
            let _span = span!("fused/max", "part={pi} edges={}", eids.len());
            counter_add(Counter::EdgesProcessed, eids.len() as u64);
            histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
            // Per edge: the source-side score operand plus the running-max
            // read/update (the destination operand is hoisted per row).
            counter_add(Counter::BytesMoved, (eids.len() * 3 * 4) as u64);
            let ne = self.parts.nonempty(pi);
            self.pool.install(|| {
                maxes.par_chunks_mut(band).enumerate().for_each(|(b, chunk)| {
                    let dst0 = b * band;
                    for &dst in band_slice(ne, dst0, chunk.len()) {
                        let local = dst as usize - dst0;
                        let t = score.dst_term(dst);
                        let srcs = seg.row(dst);
                        let base = seg.row_start(dst);
                        if score.is_gat() {
                            // leaky-relu is monotonic, so the segment's max
                            // score is leaky(max sl[src] + t): the per-edge
                            // work collapses to one load + compare.
                            let mut z = f32::NEG_INFINITY;
                            for &src in srcs {
                                z = z.max(score.src_operand(src));
                            }
                            if z > f32::NEG_INFINITY {
                                let v = score.leaky(z + t);
                                if v > chunk[local] {
                                    chunk[local] = v;
                                }
                            }
                        } else {
                            let mut mv = chunk[local];
                            for (i, &src) in srcs.iter().enumerate() {
                                let v = score.eval_with(src, dst, eids[base + i], t);
                                if v > mv {
                                    mv = v;
                                }
                            }
                            chunk[local] = mv;
                        }
                    }
                });
            });
        }

        // Pass B: every weight is exp(s - max) ∈ (0, 1]; the row with the
        // max contributes exactly 1, so any destination with an edge ends
        // with sum >= 1 and the accumulation cannot overflow.
        out.fill(0.0);
        let mut sums = vec![0f32; n];
        for (pi, seg, eids, _) in self.parts.iter() {
            let _span = span!("fused/aggregate", "part={pi} edges={}", eids.len());
            counter_add(Counter::EdgesProcessed, eids.len() as u64);
            histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
            // Per edge: score recompute + message row read + output combine
            // + exp-sum update.
            counter_add(Counter::BytesMoved, (eids.len() * (2 * d + 3) * 4) as u64);
            let ne = self.parts.nonempty(pi);
            let maxes = maxes.as_slice();
            self.pool.install(|| {
                out.as_mut_slice()
                    .par_chunks_mut(band * d)
                    .zip(sums.par_chunks_mut(band))
                    .enumerate()
                    .for_each(|(b, (chunk, schunk))| {
                        let dst0 = b * band;
                        let mut msg = MessageEval::new(&self.op, self.pattern, inputs);
                        for &dst in band_slice(ne, dst0, schunk.len()) {
                            let local = dst as usize - dst0;
                            let mv = maxes[dst as usize];
                            let t = score.dst_term(dst);
                            let orow = &mut chunk[local * d..(local + 1) * d];
                            let srcs = seg.row(dst);
                            let base = seg.row_start(dst);
                            let mut lsum = 0f32;
                            for (i, &src) in srcs.iter().enumerate() {
                                let eid = eids[base + i];
                                let w = (score.eval_with(src, dst, eid, t) - mv).exp();
                                lsum += w;
                                // softmax implies Sum aggregation (validated)
                                msg.combine_scaled(orow, src, dst, eid, w);
                            }
                            schunk[local] += lsum;
                        }
                    });
            });
        }

        // Pass C: one O(|V|·d) row-scale closes the softmax normalization.
        let _span = span!("fused/normalize", "rows={n}");
        let sums = sums.as_slice();
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(d)
                .enumerate()
                .for_each(|(v, row)| {
                    let s = sums[v];
                    if s > 0.0 {
                        let inv = 1.0 / s;
                        for o in row {
                            *o *= inv;
                        }
                    }
                });
        });
    }

    /// Non-softmax path: one pass, `out[v] = agg of score · message`.
    fn run_plain(&self, inputs: &FusedInputs<'_, f32>, out: &mut Dense2<f32>) {
        let d = self.op.out_len();
        let agg = self.op.agg;
        let score = ScoreEval::new(&self.op, self.pattern, inputs);
        let band = band_rows(self.num_vertices, self.pool.current_num_threads());

        out.fill(agg.identity());
        for (pi, seg, eids, _) in self.parts.iter() {
            let _span = span!("fused/aggregate", "part={pi} edges={}", eids.len());
            counter_add(Counter::EdgesProcessed, eids.len() as u64);
            histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
            counter_add(Counter::BytesMoved, (eids.len() * (2 * d + 4) * 4) as u64);
            let ne = self.parts.nonempty(pi);
            self.pool.install(|| {
                out.as_mut_slice()
                    .par_chunks_mut(band * d)
                    .enumerate()
                    .for_each(|(b, chunk)| {
                        let dst0 = b * band;
                        let mut msg = MessageEval::new(&self.op, self.pattern, inputs);
                        for &dst in band_slice(ne, dst0, chunk.len() / d) {
                            let local = dst as usize - dst0;
                            let t = score.dst_term(dst);
                            let orow = &mut chunk[local * d..(local + 1) * d];
                            let srcs = seg.row(dst);
                            let base = seg.row_start(dst);
                            for (i, &src) in srcs.iter().enumerate() {
                                let eid = eids[base + i];
                                let w = score.eval_with(src, dst, eid, t);
                                msg.combine_agg(agg, orow, src, dst, eid, w);
                            }
                        }
                    });
            });
        }

        let degrees = &self.degrees;
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(d)
                .enumerate()
                .for_each(|(v, row)| {
                    let deg = degrees[v] as usize;
                    for o in row {
                        *o = agg.finalize(*o, deg);
                    }
                });
        });
    }
}

/// Per-edge scalar score evaluation: monomorphized leaky-relu(sl+sr) for the
/// GAT pattern, interpreter otherwise.
struct ScoreEval<'a> {
    op: &'a FusedOp,
    inputs: &'a FusedInputs<'a, f32>,
    /// `Some(slope)` enables the GAT fast path.
    gat_slope: Option<f32>,
}

impl<'a> ScoreEval<'a> {
    fn new(op: &'a FusedOp, pattern: FusedPattern, inputs: &'a FusedInputs<'a, f32>) -> Self {
        let gat_slope = match pattern {
            FusedPattern::GatAttention { slope } => Some(slope as f32),
            FusedPattern::Generic => None,
        };
        Self {
            op,
            inputs,
            gat_slope,
        }
    }

    /// Whether the monomorphized GAT fast path is active.
    #[inline]
    fn is_gat(&self) -> bool {
        self.gat_slope.is_some()
    }

    /// Source-side GAT score operand (`sl[src]`); only meaningful when
    /// [`Self::is_gat`] holds.
    #[inline]
    fn src_operand(&self, src: u32) -> f32 {
        self.inputs.score.vertex.at(src as usize, 0)
    }

    /// The GAT leaky-relu; only meaningful when [`Self::is_gat`] holds.
    #[inline]
    fn leaky(&self, v: f32) -> f32 {
        let slope = self.gat_slope.unwrap_or(1.0);
        if v > 0.0 { v } else { slope * v }
    }

    /// Loop-invariant destination-side score operand, hoisted out of the
    /// per-edge loop on the GAT fast path (0.0 on the interpreter path,
    /// where [`Self::eval_with`] ignores it).
    #[inline]
    fn dst_term(&self, dst: u32) -> f32 {
        if self.gat_slope.is_some() {
            self.inputs.score.dst_tensor().at(dst as usize, 0)
        } else {
            0.0
        }
    }

    /// Score with the destination operand pre-fetched by [`Self::dst_term`].
    #[inline]
    fn eval_with(&self, src: u32, dst: u32, eid: u32, dst_term: f32) -> f32 {
        if let Some(slope) = self.gat_slope {
            let v = self.inputs.score.vertex.at(src as usize, 0) + dst_term;
            return if v > 0.0 { v } else { slope * v };
        }
        self.eval_generic(src, dst, eid)
    }

    #[inline]
    fn eval_generic(&self, src: u32, dst: u32, eid: u32) -> f32 {
        let udf = &self.op.score;
        let empty: [f32; 0] = [];
        let ctx = EdgeCtx {
            src: if udf.src_len > 0 { self.inputs.score.vertex.row(src as usize) } else { &empty },
            dst: if udf.dst_len > 0 {
                self.inputs.score.dst_tensor().row(dst as usize)
            } else {
                &empty
            },
            edge: match self.inputs.score.edge {
                Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        match udf.reduce {
            None => {
                let mut v = eval_expr(&udf.body, &ctx, self.inputs.score.params, 0, 0);
                if udf.post_relu {
                    v = v.max(0.0);
                }
                v
            }
            Some(r) => {
                let mut acc = r.op.identity::<f32>();
                for k in 0..r.len {
                    acc = r
                        .op
                        .combine(acc, eval_expr(&udf.body, &ctx, self.inputs.score.params, 0, k));
                }
                let mut v = r.op.finalize(acc, r.len);
                if udf.post_relu {
                    v = v.max(0.0);
                }
                v
            }
        }
    }
}

/// Per-edge message evaluation and combine: direct source-row reads for the
/// CopySrc message, interpreter (with per-band scratch) otherwise.
struct MessageEval<'a> {
    op: &'a FusedOp,
    inputs: &'a FusedInputs<'a, f32>,
    copy_src: bool,
    scratch: Vec<f32>,
}

impl<'a> MessageEval<'a> {
    fn new(op: &'a FusedOp, pattern: FusedPattern, inputs: &'a FusedInputs<'a, f32>) -> Self {
        let copy_src = matches!(pattern, FusedPattern::GatAttention { .. })
            || KernelPattern::of(&op.message) == KernelPattern::CopySrc;
        Self {
            op,
            inputs,
            copy_src,
            scratch: vec![0f32; op.message.out_len],
        }
    }

    fn eval_into_scratch(&mut self, src: u32, dst: u32, eid: u32) {
        let udf = &self.op.message;
        let empty: [f32; 0] = [];
        let ctx = EdgeCtx {
            src: if udf.src_len > 0 { self.inputs.message.vertex.row(src as usize) } else { &empty },
            dst: if udf.dst_len > 0 {
                self.inputs.message.dst_tensor().row(dst as usize)
            } else {
                &empty
            },
            edge: match self.inputs.message.edge {
                Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        eval_udf(udf, &ctx, self.inputs.message.params, &mut self.scratch, |slot, v| *slot = v);
    }

    /// `out += w · message` (Sum aggregation; the softmax path).
    #[inline]
    fn combine_scaled(&mut self, out: &mut [f32], src: u32, dst: u32, eid: u32, w: f32) {
        if self.copy_src {
            let srow = self.inputs.message.vertex.row(src as usize);
            for (o, &v) in out.iter_mut().zip(srow) {
                *o += w * v;
            }
        } else {
            self.eval_into_scratch(src, dst, eid);
            for (o, &v) in out.iter_mut().zip(&self.scratch) {
                *o += w * v;
            }
        }
    }

    /// `out = agg.combine(out, w · message)` (the non-softmax path).
    #[inline]
    fn combine_agg(&mut self, agg: Reducer, out: &mut [f32], src: u32, dst: u32, eid: u32, w: f32) {
        let apply = |out: &mut [f32], msg: &[f32]| match agg {
            Reducer::Sum | Reducer::Mean => {
                for (o, &v) in out.iter_mut().zip(msg) {
                    *o += w * v;
                }
            }
            Reducer::Max => {
                for (o, &v) in out.iter_mut().zip(msg) {
                    let m = w * v;
                    if m > *o {
                        *o = m;
                    }
                }
            }
            Reducer::Min => {
                for (o, &v) in out.iter_mut().zip(msg) {
                    let m = w * v;
                    if m < *o {
                        *o = m;
                    }
                }
            }
        };
        if self.copy_src {
            apply(out, self.inputs.message.vertex.row(src as usize));
        } else {
            self.eval_into_scratch(src, dst, eid);
            apply(out, &self.scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::GraphTensors;
    use crate::reference::fused_reference;
    use fg_graph::generators;
    use fg_ir::Udf;

    fn features(n: usize, d: usize, salt: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| {
            ((v * 31 + i * 7 + salt * 13) % 23) as f32 * 0.25 - 2.0
        })
    }

    fn check(g: &Graph, op: &FusedOp, inputs: &FusedInputs<'_, f32>, opts: &CpuSpmmOptions) {
        let k = CpuFused::compile(g, op, opts).unwrap();
        let mut out = Dense2::zeros(g.num_vertices(), op.out_len());
        k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_vertices(), op.out_len());
        fused_reference(g, op, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch: max diff {} (pattern {}, opts {opts:?})",
            out.max_abs_diff(&want),
            k.pattern().name()
        );
    }

    #[test]
    fn gat_attention_matches_reference_across_schedules() {
        let g = generators::uniform(200, 6, 5);
        let d = 32;
        let x = features(200, d, 0);
        let sl = features(200, 1, 1);
        let sr = features(200, 1, 2);
        let op = FusedOp::gat_attention(d, 0.2);
        assert_eq!(
            FusedPattern::of(&op),
            FusedPattern::GatAttention { slope: 0.2 }
        );
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::vertex_only(&x),
        };
        for parts in [1, 4, 7] {
            for threads in [1, 3] {
                check(&g, &op, &inputs, &CpuSpmmOptions::with_threads(parts, threads));
            }
        }
    }

    #[test]
    fn generic_fused_softmax_message_udf() {
        // src_mul_edge message forces the interpreter path but keeps softmax.
        let g = generators::uniform(80, 5, 3);
        let d = 8;
        let x = features(80, d, 0);
        let xe = features(g.num_edges(), d, 4);
        let sl = features(80, 1, 1);
        let sr = features(80, 1, 2);
        let mut op = FusedOp::gat_attention(d, 0.2);
        op.message = Udf::src_mul_edge(d);
        assert_eq!(FusedPattern::of(&op), FusedPattern::Generic);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::with_edge(&x, &xe),
        };
        check(&g, &op, &inputs, &CpuSpmmOptions::with_threads(3, 2));
    }

    #[test]
    fn plain_weighted_aggregation_without_softmax() {
        // dot-score × copy-src message, every reducer.
        let g = generators::uniform(100, 4, 9);
        let d = 16;
        let x = features(100, d, 0);
        let p = features(100, d, 5);
        let mut op = FusedOp {
            score: Udf::dot(d),
            softmax: false,
            message: Udf::copy_src(d),
            agg: Reducer::Sum,
        };
        let inputs = FusedInputs {
            score: GraphTensors::vertex_only(&p),
            message: GraphTensors::vertex_only(&x),
        };
        for agg in [Reducer::Sum, Reducer::Mean, Reducer::Max, Reducer::Min] {
            op.agg = agg;
            check(&g, &op, &inputs, &CpuSpmmOptions::with_threads(3, 2));
        }
    }

    #[test]
    fn zero_degree_and_single_edge_destinations() {
        // vertex 0: no in-edges; vertex 1: exactly one in-edge (softmax
        // weight must be exactly 1); vertex 2: duplicate edges.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (0, 2), (1, 2)]);
        let x = features(3, 4, 0);
        let sl = features(3, 1, 1);
        let sr = features(3, 1, 2);
        let op = FusedOp::gat_attention(4, 0.2);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::vertex_only(&x),
        };
        let k = CpuFused::compile(&g, &op, &CpuSpmmOptions::single_thread(2)).unwrap();
        let mut out = Dense2::zeros(3, 4);
        k.run(&inputs, &mut out).unwrap();
        assert_eq!(out.row(0), &[0.0; 4], "zero-degree row stays zero");
        assert_eq!(out.row(1), x.row(0), "single-edge softmax weight is 1");
        let mut want = Dense2::zeros(3, 4);
        fused_reference(&g, &op, &inputs, &mut want).unwrap();
        assert!(out.approx_eq(&want, 1e-5));
    }

    #[test]
    fn large_negative_scores_stay_finite() {
        // Online softmax must not overflow exp() even when all scores are
        // hugely negative.
        let g = Graph::from_edges(2, &[(0, 1), (1, 1)]);
        let x = features(2, 4, 0);
        let sl = Dense2::from_fn(2, 1, |v, _| -1e30 - v as f32);
        let sr = Dense2::zeros(2, 1);
        let op = FusedOp::gat_attention(4, 0.2);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::vertex_only(&x),
        };
        let k = CpuFused::compile(&g, &op, &CpuSpmmOptions::single_thread(1)).unwrap();
        let mut out = Dense2::zeros(2, 4);
        k.run(&inputs, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let mut want = Dense2::zeros(2, 4);
        fused_reference(&g, &op, &inputs, &mut want).unwrap();
        assert!(out.approx_eq(&want, 1e-4));
    }

    #[test]
    fn rejects_invalid_op_and_schedule() {
        let g = generators::uniform(10, 2, 1);
        let mut op = FusedOp::gat_attention(4, 0.2);
        op.agg = Reducer::Max;
        assert!(matches!(
            CpuFused::compile(&g, &op, &CpuSpmmOptions::single_thread(1)),
            Err(KernelError::Fused(_))
        ));
        let op = FusedOp::gat_attention(4, 0.2);
        let opts = CpuSpmmOptions {
            graph_partitions: 0,
            ..CpuSpmmOptions::single_thread(1)
        };
        assert!(matches!(
            CpuFused::compile(&g, &op, &opts),
            Err(KernelError::BadSchedule(_))
        ));
    }

    #[test]
    fn rejects_bad_inputs_at_run_time() {
        let g = generators::uniform(10, 2, 1);
        let op = FusedOp::gat_attention(8, 0.2);
        let k = CpuFused::compile(&g, &op, &CpuSpmmOptions::single_thread(1)).unwrap();
        let x = Dense2::zeros(10, 4); // message wants 8 cols
        let sl = Dense2::zeros(10, 1);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sl),
            message: GraphTensors::vertex_only(&x),
        };
        let mut out = Dense2::zeros(10, 8);
        assert!(k.run(&inputs, &mut out).is_err());
    }
}
