//! CPU kernel templates.
//!
//! Template-level optimizations (§III-C1):
//! * **1D graph partitioning** — source vertices are split into contiguous
//!   ranges whose feature tiles fit in LLC; partitions are processed one at
//!   a time with all threads cooperating on the same partition (the paper's
//!   LLC-contention-avoiding parallelization, §IV-A).
//! * **Feature dimension tiling** — the FDS splits the feature axis so a
//!   partition's working set shrinks further; the graph is traversed once
//!   per tile (the Fig. 6b trade-off).
//! * **Hilbert-curve edge traversal** for SDDMM locality over both endpoint
//!   feature sets.

pub mod fused;
pub mod sddmm;
pub mod spmm;
