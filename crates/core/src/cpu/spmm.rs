//! CPU generalized SpMM template.

use fg_graph::{Graph, PartitionedCsr};
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::pattern::ElemOp;
use fg_ir::{Fds, KernelPattern, Reducer, Udf};
use fg_tensor::half::WIDEN_CHUNK;
use fg_tensor::tile::{ColTile, ColTiles};
use fg_tensor::{Dense2, FeatElem};
use fg_telemetry::{counter_add, histogram_record, span, Counter, Histogram};
use rayon::prelude::*;

use crate::error::KernelError;
use crate::inputs::GraphTensors;
use crate::util;
use crate::RunStats;

/// Template-level options for the CPU SpMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSpmmOptions {
    /// Number of 1D source-vertex partitions (1 disables partitioning).
    pub graph_partitions: usize,
    /// Worker threads (1 = single-threaded, as in Table III).
    pub threads: usize,
    /// LLC size assumed by [`CpuSpmmOptions::auto`].
    pub llc_bytes: usize,
}

/// LLC of the paper's c5.9xlarge (25 MB); also a sane default elsewhere.
pub const DEFAULT_LLC_BYTES: usize = 25 * 1024 * 1024;

impl CpuSpmmOptions {
    /// Heuristic defaults: partition count from the cache model
    /// (`fg_graph::partition::partitions_for_cache`), all cores.
    ///
    /// When the OS cannot report its core count the thread count falls back
    /// to 1 — see [`crate::util::detected_threads`] for how that fallback is
    /// surfaced (stderr warning + `parallelism_fallbacks` counter).
    pub fn auto(graph: &Graph, udf: &Udf, fds: &Fds) -> Self {
        let tile_cols = udf.src_len.max(udf.dst_len).max(1) / fds.feature_tiles.max(1);
        let parts = fg_graph::partition::partitions_for_cache(
            graph.num_vertices(),
            tile_cols.max(1),
            std::mem::size_of::<f32>(),
            DEFAULT_LLC_BYTES,
        );
        Self {
            graph_partitions: parts,
            threads: util::detected_threads(),
            llc_bytes: DEFAULT_LLC_BYTES,
        }
    }

    /// Single-threaded, explicit partition count (kernel benchmarks).
    pub fn single_thread(graph_partitions: usize) -> Self {
        Self {
            graph_partitions: graph_partitions.max(1),
            threads: 1,
            llc_bytes: DEFAULT_LLC_BYTES,
        }
    }

    /// Explicit thread and partition counts.
    pub fn with_threads(graph_partitions: usize, threads: usize) -> Self {
        Self {
            graph_partitions: graph_partitions.max(1),
            threads: threads.max(1),
            llc_bytes: DEFAULT_LLC_BYTES,
        }
    }
}

/// A compiled CPU generalized-SpMM kernel.
pub struct CpuSpmm {
    udf: Udf,
    agg: Reducer,
    fds: Fds,
    pattern: KernelPattern,
    parts: PartitionedCsr,
    degrees: Vec<u32>,
    num_vertices: usize,
    num_edges: usize,
    pool: rayon::ThreadPool,
}

impl CpuSpmm {
    /// Validate and build the execution plan (partitioned CSR, thread pool).
    /// Plans are reused across runs, amortizing this cost over training
    /// epochs exactly as the paper amortizes compilation (§IV-B).
    pub fn compile(
        graph: &Graph,
        udf: &Udf,
        agg: Reducer,
        fds: &Fds,
        opts: &CpuSpmmOptions,
    ) -> Result<Self, KernelError> {
        udf.validate()?;
        if opts.graph_partitions == 0 {
            return Err(KernelError::BadSchedule(
                "graph_partitions must be >= 1".into(),
            ));
        }
        let parts = PartitionedCsr::build(graph, opts.graph_partitions);
        let degrees = (0..graph.num_vertices() as u32)
            .map(|v| graph.in_degree(v) as u32)
            .collect();
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            udf: udf.clone(),
            agg,
            fds: *fds,
            pattern: KernelPattern::of(udf),
            parts,
            degrees,
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            pool: util::pool(opts.threads),
        })
    }

    /// The recognized kernel pattern (which fused fast path will run).
    pub fn pattern(&self) -> KernelPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (partitioned CSR + degree
    /// array); feeds the serve engine's byte-bounded plan cache.
    pub fn mem_bytes(&self) -> u64 {
        self.parts.mem_bytes() + (self.degrees.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Execute the kernel.
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.udf, self.num_vertices, self.num_edges, out, self.num_vertices)?;
        let _run_span = span!(
            "spmm/run",
            "pattern={:?} d={} parts={} tiles={}",
            self.pattern,
            self.udf.out_len,
            self.parts.num_partitions(),
            self.fds.feature_tiles.max(1)
        );
        counter_add(Counter::Partitions, self.parts.num_partitions() as u64);
        counter_add(Counter::FeatureTiles, self.fds.feature_tiles.max(1) as u64);
        out.fill(self.agg.identity());

        match self.pattern {
            KernelPattern::CopySrc => self.run_elementwise(inputs, out, MsgKind::CopySrc),
            KernelPattern::CopyEdge => self.run_elementwise(inputs, out, MsgKind::CopyEdge),
            KernelPattern::SrcOpEdge(op) => {
                self.run_elementwise(inputs, out, MsgKind::SrcOpEdge(op))
            }
            KernelPattern::SrcOpDst(op) => {
                self.run_elementwise(inputs, out, MsgKind::SrcOpDst(op))
            }
            KernelPattern::SrcMulEdgeScalar => {
                self.run_elementwise(inputs, out, MsgKind::SrcMulEdgeScalar)
            }
            KernelPattern::MlpSrcDst => self.run_mlp(inputs, out),
            _ => self.run_generic(inputs, out),
        }

        // Finalize: mean division / zero-degree normalization.
        let agg = self.agg;
        let degrees = &self.degrees;
        let cols = out.cols();
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(v, row)| {
                    let deg = degrees[v] as usize;
                    for o in row {
                        *o = agg.finalize(*o, deg);
                    }
                });
        });
        Ok(RunStats::default())
    }

    /// Execute the kernel reading vertex features from half-precision (or
    /// any [`FeatElem`]) storage, accumulating in `f32`. Supports the
    /// element-wise message patterns directly — loads widen per element in
    /// the inner loop, so half storage halves the bytes the kernel streams.
    /// Other parameterless patterns fall back to a one-off `f32`
    /// materialization; UDFs that declare parameter matrices are rejected
    /// (pass them through [`run`](Self::run) instead).
    ///
    /// With `E = f32` this is the exact code path of [`run`](Self::run):
    /// the conversions monomorphize to the identity, so results stay
    /// bitwise identical to the full-precision kernel.
    pub fn run_typed<E: FeatElem>(
        &self,
        vertex: &Dense2<E>,
        edge: Option<&Dense2<f32>>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        let needs_src = self.udf.src_len > 0 && self.udf.body.reads_src();
        let needs_dst = self.udf.dst_len > 0 && self.udf.body.reads_dst();
        if needs_src || needs_dst {
            let want_cols = if needs_src { self.udf.src_len } else { self.udf.dst_len };
            if vertex.rows() != self.num_vertices || vertex.cols() < want_cols {
                return Err(KernelError::Shape {
                    what: "vertex".into(),
                    expected: (self.num_vertices, want_cols),
                    got: vertex.shape(),
                });
            }
        }
        if self.udf.edge_len > 0 && self.udf.body.reads_edge() {
            let Some(e) = edge else {
                return Err(KernelError::MissingInput { what: "edge" });
            };
            if e.rows() != self.num_edges || e.cols() < self.udf.edge_len {
                return Err(KernelError::Shape {
                    what: "edge".into(),
                    expected: (self.num_edges, self.udf.edge_len),
                    got: e.shape(),
                });
            }
        }
        if !self.udf.params.is_empty() {
            return Err(KernelError::ParamCount {
                expected: self.udf.params.len(),
                got: 0,
            });
        }
        if out.shape() != (self.num_vertices, self.udf.out_len) {
            return Err(KernelError::Shape {
                what: "out".into(),
                expected: (self.num_vertices, self.udf.out_len),
                got: out.shape(),
            });
        }
        let _run_span = span!(
            "spmm/run_typed",
            "pattern={:?} dtype={} d={}",
            self.pattern,
            E::DTYPE,
            self.udf.out_len
        );
        counter_add(Counter::Partitions, self.parts.num_partitions() as u64);
        counter_add(Counter::FeatureTiles, self.fds.feature_tiles.max(1) as u64);
        out.fill(self.agg.identity());

        match self.pattern {
            KernelPattern::CopySrc => self.run_elementwise_t(vertex, vertex, edge, out, MsgKind::CopySrc),
            KernelPattern::CopyEdge => self.run_elementwise_t(vertex, vertex, edge, out, MsgKind::CopyEdge),
            KernelPattern::SrcOpEdge(op) => {
                self.run_elementwise_t(vertex, vertex, edge, out, MsgKind::SrcOpEdge(op))
            }
            KernelPattern::SrcOpDst(op) => {
                self.run_elementwise_t(vertex, vertex, edge, out, MsgKind::SrcOpDst(op))
            }
            KernelPattern::SrcMulEdgeScalar => {
                self.run_elementwise_t(vertex, vertex, edge, out, MsgKind::SrcMulEdgeScalar)
            }
            // Patterns without a typed inner loop: widen once and let the
            // interpreter run on the f32 copy (parameterless UDFs only,
            // enforced above).
            _ => {
                let wide = fg_tensor::half::dequantize(vertex);
                let inputs = match edge {
                    Some(e) => GraphTensors::with_edge(&wide, e),
                    None => GraphTensors::vertex_only(&wide),
                };
                self.run_generic(&inputs, out);
            }
        }

        let agg = self.agg;
        let degrees = &self.degrees;
        let cols = out.cols();
        self.pool.install(|| {
            out.as_mut_slice()
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(v, row)| {
                    let deg = degrees[v] as usize;
                    for o in row {
                        *o = agg.finalize(*o, deg);
                    }
                });
        });
        Ok(RunStats::default())
    }

    /// Fused element-wise message kernels (copy/add/mul/sub of per-edge
    /// operands) under graph partitioning + feature tiling.
    fn run_elementwise(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>, kind: MsgKind) {
        self.run_elementwise_t(inputs.vertex, inputs.dst_tensor(), inputs.edge, out, kind);
    }

    /// The element-wise inner loops, generic over the vertex-feature storage
    /// type: loads widen to `f32` ([`FeatElem::load`]), accumulation stays
    /// `f32`. `E = f32` monomorphizes to the identity load — the historical
    /// full-precision kernel, op for op.
    fn run_elementwise_t<E: FeatElem>(
        &self,
        x: &Dense2<E>,
        xd: &Dense2<E>,
        xe: Option<&Dense2<f32>>,
        out: &mut Dense2<f32>,
        kind: MsgKind,
    ) {
        let d = self.udf.out_len;
        let agg = self.agg;
        let band_rows = band_rows(self.num_vertices, self.pool.current_num_threads());

        for (ti, tile) in ColTiles::new(d, self.fds.feature_tiles).enumerate() {
            // Partitions are processed one at a time; every thread works on
            // the same partition to keep its source rows hot in shared LLC.
            for (pi, seg, eids, _) in self.parts.iter() {
                let _span = span!("spmm/partition", "tile={ti} part={pi} edges={}", eids.len());
                counter_add(Counter::EdgesProcessed, eids.len() as u64);
                histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
                // Estimate: one source-row read (at the storage width) +
                // one output combine (f32) per edge, tile-width elements
                // each — except the scalar-weight kernel, whose edge
                // operand is one f32, not a tile-width row.
                let elem = std::mem::size_of::<E>();
                let per_edge_bytes = match kind {
                    MsgKind::SrcMulEdgeScalar => tile.len() * (elem + 4) + 4,
                    _ => tile.len() * (elem + 4),
                };
                counter_add(Counter::BytesMoved, (eids.len() * per_edge_bytes) as u64);
                let ne = self.parts.nonempty(pi);
                self.pool.install(|| {
                    out.as_mut_slice()
                        .par_chunks_mut(band_rows * d)
                        .enumerate()
                        .for_each(|(band, chunk)| {
                            let dst0 = band * band_rows;
                            for &dst in band_slice(ne, dst0, chunk.len() / d) {
                                let local = dst as usize - dst0;
                                let orow = &mut chunk[local * d..(local + 1) * d];
                                let srcs = seg.row(dst);
                                let base = seg.row_start(dst);
                                let ot = &mut orow[tile.range()];
                                match kind {
                                    MsgKind::CopySrc => {
                                        for &src in srcs {
                                            combine_rows(agg, ot, &x.row(src as usize)[tile.range()]);
                                        }
                                    }
                                    MsgKind::CopyEdge => {
                                        let xe = xe.expect("validated");
                                        for i in 0..srcs.len() {
                                            let eid = eids[base + i];
                                            combine_rows(agg, ot, &xe.row(eid as usize)[tile.range()]);
                                        }
                                    }
                                    MsgKind::SrcOpEdge(op) => {
                                        let xe = xe.expect("validated");
                                        for (i, &src) in srcs.iter().enumerate() {
                                            let eid = eids[base + i];
                                            combine_rows2(
                                                agg,
                                                op,
                                                ot,
                                                &x.row(src as usize)[tile.range()],
                                                &xe.row(eid as usize)[tile.range()],
                                            );
                                        }
                                    }
                                    MsgKind::SrcMulEdgeScalar => {
                                        let xe = xe.expect("validated");
                                        for (i, &src) in srcs.iter().enumerate() {
                                            let eid = eids[base + i];
                                            let wscalar = xe.at(eid as usize, 0);
                                            combine_scaled(
                                                agg,
                                                ot,
                                                &x.row(src as usize)[tile.range()],
                                                wscalar,
                                            );
                                        }
                                    }
                                    MsgKind::SrcOpDst(op) => {
                                        let drow = &xd.row(dst as usize)[tile.range()];
                                        for &src in srcs {
                                            combine_rows2(
                                                agg,
                                                op,
                                                ot,
                                                &x.row(src as usize)[tile.range()],
                                                drow,
                                            );
                                        }
                                    }
                                }
                            }
                        });
                });
            }
        }
    }

    /// Fused MLP-aggregation kernel: `agg over edges of
    /// relu((x[src] + x[dst]) × W)`, with both W axes tiled per the FDS
    /// (Fig. 8).
    fn run_mlp(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>) {
        let d1 = self.udf.red_len();
        let d2 = self.udf.out_len;
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let w = inputs.params[0];
        let agg = self.agg;
        let ktiles: Vec<ColTile> = ColTiles::new(d1, self.fds.reduce_tiles).collect();
        let band_rows = band_rows(self.num_vertices, self.pool.current_num_threads());

        for (ti, tile) in ColTiles::new(d2, self.fds.feature_tiles).enumerate() {
            for (pi, seg, eids, _) in self.parts.iter() {
                let _span = span!("spmm/partition", "tile={ti} part={pi} edges={}", eids.len());
                counter_add(Counter::EdgesProcessed, eids.len() as u64);
                histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
                // Estimate per edge: read src+dst rows (d1 each), stream the
                // weight tile, and combine into the output tile.
                counter_add(
                    Counter::BytesMoved,
                    (eids.len() * (2 * d1 + d1 * tile.len() + tile.len()) * 4) as u64,
                );
                let ne = self.parts.nonempty(pi);
                self.pool.install(|| {
                    out.as_mut_slice()
                        .par_chunks_mut(band_rows * d2)
                        .enumerate()
                        .for_each(|(band, chunk)| {
                            let dst0 = band * band_rows;
                            // Per-thread scratch, reused across the band.
                            let mut tmp = vec![0.0f32; d1];
                            let mut acc = vec![0.0f32; tile.len()];
                            for &dst in band_slice(ne, dst0, chunk.len() / d2) {
                                let local = dst as usize - dst0;
                                let orow = &mut chunk[local * d2..(local + 1) * d2];
                                let srcs = seg.row(dst);
                                let drow = xd.row(dst as usize);
                                let ot = &mut orow[tile.range()];
                                for &src in srcs {
                                    let srow = x.row(src as usize);
                                    for ((t, &a), &b) in
                                        tmp.iter_mut().zip(srow).zip(drow)
                                    {
                                        *t = a + b;
                                    }
                                    acc.fill(0.0);
                                    // k-tiled dense inner product into acc
                                    for kt in &ktiles {
                                        for k in kt.range() {
                                            let tv = tmp[k];
                                            let wrow = &w.row(k)[tile.range()];
                                            for (a, &wv) in acc.iter_mut().zip(wrow) {
                                                *a += tv * wv;
                                            }
                                        }
                                    }
                                    for (o, &a) in ot.iter_mut().zip(&acc) {
                                        *o = agg.combine(*o, a.max(0.0));
                                    }
                                }
                            }
                        });
                });
            }
        }
    }

    /// Interpreter fallback: correct for every expressible UDF. Runs
    /// untiled (the interpreter evaluates whole output rows), but still
    /// benefits from graph partitioning and parallel destination bands.
    fn run_generic(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>) {
        let d = self.udf.out_len;
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let xe = inputs.edge;
        let params = inputs.params;
        let udf = &self.udf;
        let agg = self.agg;
        let empty: [f32; 0] = [];
        let band_rows = band_rows(self.num_vertices, self.pool.current_num_threads());

        for (pi, seg, eids, _) in self.parts.iter() {
            let _span = span!("spmm/partition", "part={pi} edges={}", eids.len());
            counter_add(Counter::EdgesProcessed, eids.len() as u64);
            histogram_record(Histogram::SpmmPartitionEdges, eids.len() as u64);
            counter_add(Counter::BytesMoved, (eids.len() * d * 2 * 4) as u64);
            let ne = self.parts.nonempty(pi);
            self.pool.install(|| {
                out.as_mut_slice()
                    .par_chunks_mut(band_rows * d)
                    .enumerate()
                    .for_each(|(band, chunk)| {
                        let dst0 = band * band_rows;
                        for &dst in band_slice(ne, dst0, chunk.len() / d) {
                            let local = dst as usize - dst0;
                            let orow = &mut chunk[local * d..(local + 1) * d];
                            let srcs = seg.row(dst);
                            let base = seg.row_start(dst);
                            for (i, &src) in srcs.iter().enumerate() {
                                let eid = eids[base + i];
                                let ctx = EdgeCtx {
                                    src: if udf.src_len > 0 { x.row(src as usize) } else { &empty },
                                    dst: if udf.dst_len > 0 { xd.row(dst as usize) } else { &empty },
                                    edge: match xe {
                                        Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                                        _ => &empty,
                                    },
                                };
                                eval_udf(udf, &ctx, params, orow, |slot, v| {
                                    *slot = agg.combine(*slot, v)
                                });
                            }
                        }
                    });
            });
        }
    }
}

/// Message kinds handled by the fused element-wise path.
#[derive(Clone, Copy)]
enum MsgKind {
    CopySrc,
    CopyEdge,
    SrcOpEdge(ElemOp),
    SrcOpDst(ElemOp),
    SrcMulEdgeScalar,
}

// The combine helpers are generic over feature storage: operands widen to
// `f32` per element ([`FeatElem::load`], the identity for `f32`), and the
// accumulator is always `f32`.

#[inline(always)]
fn combine_scaled<E: FeatElem>(agg: Reducer, out: &mut [f32], src: &[E], w: f32) {
    if let Some(src) = E::as_f32(src) {
        return combine_scaled_f32(agg, out, src, w);
    }
    if !E::STAGED_WIDEN {
        // Trivial decode (bf16: one shift): combine in place, vectorized.
        match agg {
            Reducer::Sum | Reducer::Mean => {
                for (o, &v) in out.iter_mut().zip(src) {
                    *o += v.load() * w;
                }
            }
            Reducer::Max => {
                for (o, &v) in out.iter_mut().zip(src) {
                    let m = v.load() * w;
                    if m > *o {
                        *o = m;
                    }
                }
            }
            Reducer::Min => {
                for (o, &v) in out.iter_mut().zip(src) {
                    let m = v.load() * w;
                    if m < *o {
                        *o = m;
                    }
                }
            }
        }
        return;
    }
    let mut buf = [0.0f32; WIDEN_CHUNK];
    for (oc, sc) in out.chunks_mut(WIDEN_CHUNK).zip(src.chunks(WIDEN_CHUNK)) {
        let b = &mut buf[..sc.len()];
        E::widen(sc, b);
        combine_scaled_f32(agg, oc, b, w);
    }
}

#[inline(always)]
fn combine_scaled_f32(agg: Reducer, out: &mut [f32], src: &[f32], w: f32) {
    match agg {
        Reducer::Sum | Reducer::Mean => {
            for (o, &v) in out.iter_mut().zip(src) {
                *o += v * w;
            }
        }
        Reducer::Max => {
            for (o, &v) in out.iter_mut().zip(src) {
                let m = v * w;
                if m > *o {
                    *o = m;
                }
            }
        }
        Reducer::Min => {
            for (o, &v) in out.iter_mut().zip(src) {
                let m = v * w;
                if m < *o {
                    *o = m;
                }
            }
        }
    }
}

/// Combine one message row into the output. Half-storage rows stage
/// through a stack buffer via [`FeatElem::widen`] (8-wide F16C decode or
/// an auto-vectorizable loop); `f32` rows combine in place via
/// [`FeatElem::as_f32`], so the full-precision instantiation is the
/// pre-existing loop, bit for bit.
#[inline(always)]
fn combine_rows<E: FeatElem>(agg: Reducer, out: &mut [f32], msg: &[E]) {
    if let Some(msg) = E::as_f32(msg) {
        return combine_rows_f32(agg, out, msg);
    }
    if !E::STAGED_WIDEN {
        // Trivial decode (bf16: one shift): combine in place, vectorized.
        match agg {
            Reducer::Sum | Reducer::Mean => {
                for (o, &m) in out.iter_mut().zip(msg) {
                    *o += m.load();
                }
            }
            Reducer::Max => {
                for (o, &m) in out.iter_mut().zip(msg) {
                    let m = m.load();
                    if m > *o {
                        *o = m;
                    }
                }
            }
            Reducer::Min => {
                for (o, &m) in out.iter_mut().zip(msg) {
                    let m = m.load();
                    if m < *o {
                        *o = m;
                    }
                }
            }
        }
        return;
    }
    let mut buf = [0.0f32; WIDEN_CHUNK];
    for (oc, mc) in out.chunks_mut(WIDEN_CHUNK).zip(msg.chunks(WIDEN_CHUNK)) {
        let b = &mut buf[..mc.len()];
        E::widen(mc, b);
        combine_rows_f32(agg, oc, b);
    }
}

#[inline(always)]
fn combine_rows_f32(agg: Reducer, out: &mut [f32], msg: &[f32]) {
    match agg {
        Reducer::Sum | Reducer::Mean => {
            for (o, &m) in out.iter_mut().zip(msg) {
                *o += m;
            }
        }
        Reducer::Max => {
            for (o, &m) in out.iter_mut().zip(msg) {
                if m > *o {
                    *o = m;
                }
            }
        }
        Reducer::Min => {
            for (o, &m) in out.iter_mut().zip(msg) {
                if m < *o {
                    *o = m;
                }
            }
        }
    }
}

#[inline(always)]
fn combine_rows2<A: FeatElem, B: FeatElem>(
    agg: Reducer,
    op: ElemOp,
    out: &mut [f32],
    a: &[A],
    b: &[B],
) {
    if let (Some(a), Some(b)) = (A::as_f32(a), B::as_f32(b)) {
        return combine_rows2_f32(agg, op, out, a, b);
    }
    if !A::STAGED_WIDEN && !B::STAGED_WIDEN {
        // Trivial decodes only: combine in place, vectorized.
        macro_rules! go {
            ($apply:expr) => {
                match agg {
                    Reducer::Sum | Reducer::Mean => {
                        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                            *o += $apply(x.load(), y.load());
                        }
                    }
                    Reducer::Max => {
                        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                            let m = $apply(x.load(), y.load());
                            if m > *o {
                                *o = m;
                            }
                        }
                    }
                    Reducer::Min => {
                        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                            let m = $apply(x.load(), y.load());
                            if m < *o {
                                *o = m;
                            }
                        }
                    }
                }
            };
        }
        match op {
            ElemOp::Add => go!(|x: f32, y: f32| x + y),
            ElemOp::Mul => go!(|x: f32, y: f32| x * y),
            ElemOp::Sub => go!(|x: f32, y: f32| x - y),
        }
        return;
    }
    let mut ba = [0.0f32; WIDEN_CHUNK];
    let mut bb = [0.0f32; WIDEN_CHUNK];
    for ((oc, ac), bc) in out
        .chunks_mut(WIDEN_CHUNK)
        .zip(a.chunks(WIDEN_CHUNK))
        .zip(b.chunks(WIDEN_CHUNK))
    {
        let af: &[f32] = match A::as_f32(ac) {
            Some(s) => s,
            None => {
                A::widen(ac, &mut ba[..ac.len()]);
                &ba[..ac.len()]
            }
        };
        let bf: &[f32] = match B::as_f32(bc) {
            Some(s) => s,
            None => {
                B::widen(bc, &mut bb[..bc.len()]);
                &bb[..bc.len()]
            }
        };
        combine_rows2_f32(agg, op, oc, af, bf);
    }
}

#[inline(always)]
fn combine_rows2_f32(agg: Reducer, op: ElemOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    macro_rules! go {
        ($apply:expr) => {
            match agg {
                Reducer::Sum | Reducer::Mean => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o += $apply(x, y);
                    }
                }
                Reducer::Max => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        let m = $apply(x, y);
                        if m > *o {
                            *o = m;
                        }
                    }
                }
                Reducer::Min => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        let m = $apply(x, y);
                        if m < *o {
                            *o = m;
                        }
                    }
                }
            }
        };
    }
    match op {
        ElemOp::Add => go!(|x: f32, y: f32| x + y),
        ElemOp::Mul => go!(|x: f32, y: f32| x * y),
        ElemOp::Sub => go!(|x: f32, y: f32| x - y),
    }
}

/// Rows per parallel band: a few bands per thread for load balance.
pub(crate) fn band_rows(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).max(1)
}

/// Sub-slice of a sorted nonempty-destination list falling inside the band
/// `[dst0, dst0 + rows)`.
#[inline]
pub(crate) fn band_slice(nonempty: &[u32], dst0: usize, rows: usize) -> &[u32] {
    let lo = nonempty.partition_point(|&v| (v as usize) < dst0);
    let hi = lo + nonempty[lo..].partition_point(|&v| (v as usize) < dst0 + rows);
    &nonempty[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spmm_reference;
    use fg_graph::generators;

    fn check_against_reference(
        g: &Graph,
        udf: &Udf,
        agg: Reducer,
        inputs: &GraphTensors<'_, f32>,
        fds: &Fds,
        opts: &CpuSpmmOptions,
    ) {
        let k = CpuSpmm::compile(g, udf, agg, fds, opts).unwrap();
        let mut out = Dense2::zeros(g.num_vertices(), udf.out_len);
        k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_vertices(), udf.out_len);
        spmm_reference(g, udf, agg, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch: max diff {} (pattern {:?}, fds {fds:?}, opts {opts:?})",
            out.max_abs_diff(&want),
            k.pattern()
        );
    }

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 31 + i * 7) % 23) as f32 * 0.25 - 2.0)
    }

    #[test]
    fn copy_src_sum_all_schedules() {
        let g = generators::uniform(200, 6, 5);
        let x = features(200, 32);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        for parts in [1, 4, 7] {
            for tiles in [1, 2, 5] {
                for threads in [1, 3] {
                    check_against_reference(
                        &g,
                        &udf,
                        Reducer::Sum,
                        &inputs,
                        &Fds::cpu_tiled(tiles),
                        &CpuSpmmOptions::with_threads(parts, threads),
                    );
                }
            }
        }
    }

    #[test]
    fn copy_src_max_and_mean() {
        let g = generators::uniform(150, 5, 9);
        let x = features(150, 16);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(16);
        for agg in [Reducer::Max, Reducer::Mean, Reducer::Min] {
            check_against_reference(
                &g,
                &udf,
                agg,
                &inputs,
                &Fds::cpu_tiled(3),
                &CpuSpmmOptions::with_threads(4, 2),
            );
        }
    }

    #[test]
    fn zero_degree_vertices_finalize_to_zero() {
        // vertex 0 has no in-edges
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Dense2::from_fn(3, 4, |_, _| -3.0f32);
        let udf = Udf::copy_src(4);
        let k = CpuSpmm::compile(&g, &udf, Reducer::Max, &Fds::default(), &CpuSpmmOptions::single_thread(1)).unwrap();
        let mut out = Dense2::zeros(3, 4);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert_eq!(out.row(0), &[0.0; 4]);
        assert_eq!(out.row(1), &[-3.0; 4]);
    }

    #[test]
    fn src_op_dst_and_edge_kernels() {
        let g = generators::uniform(120, 4, 2);
        let x = features(120, 8);
        let xe = features(g.num_edges(), 8);
        let inputs = GraphTensors {
            vertex: &x,
            vertex_dst: None,
            edge: Some(&xe),
            params: &[],
        };
        for udf in [
            Udf::src_add_dst(8),
            Udf::src_mul_edge(8),
            Udf::copy_edge(8),
        ] {
            check_against_reference(
                &g,
                &udf,
                Reducer::Sum,
                &inputs,
                &Fds::cpu_tiled(2),
                &CpuSpmmOptions::with_threads(3, 2),
            );
        }
    }

    #[test]
    fn mlp_aggregation_matches_reference() {
        let g = generators::uniform(80, 4, 7);
        let x = features(80, 8);
        let w = Dense2::from_fn(8, 12, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.1 - 0.5);
        let params = [&w];
        let inputs = GraphTensors::with_params(&x, &params);
        let udf = Udf::mlp(8, 12);
        for (ft, rt) in [(1, 1), (3, 2), (4, 4)] {
            check_against_reference(
                &g,
                &udf,
                Reducer::Max,
                &inputs,
                &Fds::cpu_tiled2(ft, rt),
                &CpuSpmmOptions::with_threads(2, 2),
            );
        }
    }

    #[test]
    fn generic_fallback_handles_novel_udf() {
        use fg_ir::ScalarExpr;
        let g = generators::uniform(60, 3, 4);
        let x = features(60, 6);
        let inputs = GraphTensors::vertex_only(&x);
        // exp(src - dst) * 0.5 : not a recognized pattern
        let udf = Udf {
            out_len: 6,
            src_len: 6,
            dst_len: 6,
            edge_len: 0,
            reduce: None,
            params: vec![],
            body: ScalarExpr::Exp(Box::new(ScalarExpr::src_i().sub(ScalarExpr::dst_i())))
                .mul(ScalarExpr::Const(0.5)),
            post_relu: false,
        };
        let k = CpuSpmm::compile(&g, &udf, Reducer::Sum, &Fds::default(), &CpuSpmmOptions::single_thread(2)).unwrap();
        assert_eq!(k.pattern(), KernelPattern::Generic);
        check_against_reference(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &Fds::default(),
            &CpuSpmmOptions::with_threads(2, 2),
        );
    }

    #[test]
    fn band_slice_selects_the_band() {
        let ne = [1u32, 4, 5, 9, 10];
        assert_eq!(band_slice(&ne, 0, 5), &[1, 4]);
        assert_eq!(band_slice(&ne, 5, 5), &[5, 9]);
        assert_eq!(band_slice(&ne, 10, 5), &[10]);
        assert!(band_slice(&ne, 11, 5).is_empty());
        assert!(band_slice(&[], 0, 5).is_empty());
    }

    #[test]
    fn rejects_bad_inputs_at_run_time() {
        let g = generators::uniform(10, 2, 1);
        let udf = Udf::copy_src(8);
        let k = CpuSpmm::compile(&g, &udf, Reducer::Sum, &Fds::default(), &CpuSpmmOptions::single_thread(1)).unwrap();
        let x = Dense2::zeros(10, 4); // too narrow
        let mut out = Dense2::zeros(10, 8);
        assert!(k.run(&GraphTensors::vertex_only(&x), &mut out).is_err());
    }

    #[test]
    fn rejects_zero_partitions_at_compile_time() {
        let g = generators::uniform(10, 2, 1);
        let udf = Udf::copy_src(4);
        let opts = CpuSpmmOptions {
            graph_partitions: 0,
            threads: 1,
            llc_bytes: DEFAULT_LLC_BYTES,
        };
        assert!(matches!(
            CpuSpmm::compile(&g, &udf, Reducer::Sum, &Fds::default(), &opts),
            Err(KernelError::BadSchedule(_))
        ));
    }

    #[test]
    fn run_typed_f32_is_bitwise_identical_to_run() {
        let g = generators::uniform(160, 5, 11);
        let x = features(160, 24);
        let xe = features(g.num_edges(), 24);
        for (udf, edge) in [
            (Udf::copy_src(24), None),
            (Udf::src_add_dst(24), None),
            (Udf::src_mul_edge(24), Some(&xe)),
            (Udf::copy_edge(24), Some(&xe)),
        ] {
            for agg in [Reducer::Sum, Reducer::Max, Reducer::Mean] {
                let k = CpuSpmm::compile(
                    &g,
                    &udf,
                    agg,
                    &Fds::cpu_tiled(3),
                    &CpuSpmmOptions::with_threads(4, 2),
                )
                .unwrap();
                let inputs = GraphTensors {
                    vertex: &x,
                    vertex_dst: None,
                    edge,
                    params: &[],
                };
                let mut legacy = Dense2::zeros(160, 24);
                k.run(&inputs, &mut legacy).unwrap();
                let mut typed = Dense2::zeros(160, 24);
                k.run_typed::<f32>(&x, edge, &mut typed).unwrap();
                assert_eq!(
                    legacy.as_slice(),
                    typed.as_slice(),
                    "f32 run_typed diverged bitwise (udf out_len {}, agg {agg:?})",
                    udf.out_len
                );
            }
        }
    }

    #[test]
    fn run_typed_half_tracks_reference_within_tolerance() {
        use fg_tensor::half::quantize;
        use fg_tensor::{Bf16, F16};
        let g = generators::uniform(140, 5, 17);
        let x = features(140, 16);
        let xe = features(g.num_edges(), 16);
        fn check_half<E: FeatElem>(
            g: &Graph,
            x: &Dense2<f32>,
            xe: &Dense2<f32>,
            udf: &Udf,
            edge: bool,
            tol: f64,
        ) {
            let k = CpuSpmm::compile(
                g,
                udf,
                Reducer::Sum,
                &Fds::cpu_tiled(2),
                &CpuSpmmOptions::with_threads(3, 2),
            )
            .unwrap();
            let xh: Dense2<E> = quantize(x);
            let edge = edge.then_some(xe);
            let mut got = Dense2::zeros(g.num_vertices(), udf.out_len);
            k.run_typed(&xh, edge, &mut got).unwrap();
            // Reference: run the full-precision kernel on the dequantized
            // features — the half path should only differ by f32 rounding in
            // a different association order (none for these kernels).
            let wide = fg_tensor::half::dequantize(&xh);
            let inputs = GraphTensors {
                vertex: &wide,
                vertex_dst: None,
                edge,
                params: &[],
            };
            let mut want = Dense2::zeros(g.num_vertices(), udf.out_len);
            k.run(&inputs, &mut want).unwrap();
            assert!(
                got.approx_eq(&want, tol),
                "{} path drifted from dequantized reference: max diff {}",
                E::DTYPE,
                got.max_abs_diff(&want)
            );
        }
        for (udf, edge) in [
            (Udf::copy_src(16), false),
            (Udf::src_add_dst(16), false),
            (Udf::src_mul_edge(16), true),
        ] {
            check_half::<F16>(&g, &x, &xe, &udf, edge, 1e-6);
            check_half::<Bf16>(&g, &x, &xe, &udf, edge, 1e-6);
        }
    }

    #[test]
    fn run_typed_rejects_param_udfs() {
        let g = generators::uniform(30, 3, 1);
        let udf = Udf::mlp(8, 4);
        let k = CpuSpmm::compile(
            &g,
            &udf,
            Reducer::Sum,
            &Fds::default(),
            &CpuSpmmOptions::single_thread(1),
        )
        .unwrap();
        let x = features(30, 8);
        let mut out = Dense2::zeros(30, 4);
        assert!(matches!(
            k.run_typed::<f32>(&x, None, &mut out),
            Err(KernelError::ParamCount { .. })
        ));
    }

    #[test]
    fn auto_options_pick_more_partitions_for_wider_features() {
        let g = generators::uniform(50_000, 2, 3);
        let narrow = CpuSpmmOptions::auto(&g, &Udf::copy_src(8), &Fds::default());
        let wide = CpuSpmmOptions::auto(&g, &Udf::copy_src(2048), &Fds::default());
        assert!(wide.graph_partitions > narrow.graph_partitions);
        // tiling reduces the needed partition count
        let tiled = CpuSpmmOptions::auto(&g, &Udf::copy_src(2048), &Fds::cpu_tiled(8));
        assert!(tiled.graph_partitions < wide.graph_partitions);
    }
}
