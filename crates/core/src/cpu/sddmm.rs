//! CPU generalized SDDMM template.

use fg_graph::hilbert::EdgeOrder;
use fg_graph::Graph;
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::{Fds, KernelPattern, Udf};
use fg_tensor::half::WIDEN_CHUNK;
use fg_tensor::tile::{ColTile, ColTiles};
use fg_tensor::{Dense2, FeatElem};
use fg_telemetry::{counter_add, histogram_record, span, Counter, Histogram};
use rayon::prelude::*;

use crate::error::KernelError;
use crate::inputs::GraphTensors;
use crate::util::{self, SharedRows};
use crate::RunStats;

/// Edge traversal order for the CPU SDDMM template (§III-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// Canonical destination-major order.
    Canonical,
    /// Hilbert-curve order over the `(src, dst)` plane — locality in both
    /// endpoint feature sets across cache levels.
    #[default]
    Hilbert,
}

/// Template-level options for the CPU SDDMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSddmmOptions {
    /// Edge traversal order.
    pub traversal: Traversal,
    /// Worker threads.
    pub threads: usize,
}

impl CpuSddmmOptions {
    /// Defaults: Hilbert traversal, all cores.
    ///
    /// When the OS cannot report its core count the thread count falls back
    /// to 1 — see [`crate::util::detected_threads`] for how that fallback is
    /// surfaced (stderr warning + `parallelism_fallbacks` counter).
    pub fn auto(_graph: &Graph, _udf: &Udf, _fds: &Fds) -> Self {
        Self {
            traversal: Traversal::Hilbert,
            threads: util::detected_threads(),
        }
    }

    /// Single-threaded with an explicit traversal.
    pub fn single_thread(traversal: Traversal) -> Self {
        Self {
            traversal,
            threads: 1,
        }
    }
}

/// A compiled CPU generalized-SDDMM kernel.
pub struct CpuSddmm {
    udf: Udf,
    fds: Fds,
    pattern: KernelPattern,
    order: EdgeOrder,
    num_vertices: usize,
    num_edges: usize,
    pool: rayon::ThreadPool,
}

impl CpuSddmm {
    /// Validate and build the execution plan (edge order, thread pool).
    pub fn compile(
        graph: &Graph,
        udf: &Udf,
        fds: &Fds,
        opts: &CpuSddmmOptions,
    ) -> Result<Self, KernelError> {
        udf.validate()?;
        let order = match opts.traversal {
            Traversal::Canonical => EdgeOrder::canonical(graph),
            Traversal::Hilbert => EdgeOrder::hilbert(graph),
        };
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            udf: udf.clone(),
            fds: *fds,
            pattern: KernelPattern::of(udf),
            order,
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            pool: util::pool(opts.threads),
        })
    }

    /// The recognized kernel pattern.
    pub fn pattern(&self) -> KernelPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (the materialized edge order).
    pub fn mem_bytes(&self) -> u64 {
        self.order.mem_bytes()
    }

    /// Execute the kernel: `out[eid] = udf(src, dst, eid)` for every edge.
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.udf, self.num_vertices, self.num_edges, out, self.num_edges)?;
        let _run_span = span!(
            "sddmm/run",
            "pattern={:?} edges={} tiles={}",
            self.pattern,
            self.num_edges,
            self.fds.feature_tiles.max(1)
        );
        match self.pattern {
            KernelPattern::Dot => self.run_dot_t(inputs.vertex, inputs.dst_tensor(), out),
            KernelPattern::MultiHeadDot { d } => {
                self.run_multi_head_t(inputs.vertex, inputs.dst_tensor(), out, d)
            }
            _ => self.run_generic(inputs, out),
        }
        Ok(RunStats::default())
    }

    /// Execute the kernel reading vertex features from half-precision (or
    /// any [`FeatElem`]) storage; partial dots accumulate in `f32`. The
    /// fused dot patterns get true typed inner loops; other parameterless
    /// patterns widen once and run the interpreter. With `E = f32` this is
    /// bitwise identical to [`run`](Self::run).
    pub fn run_typed<E: FeatElem>(
        &self,
        vertex: &Dense2<E>,
        edge: Option<&Dense2<f32>>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        let needs_src = self.udf.src_len > 0 && self.udf.body.reads_src();
        let needs_dst = self.udf.dst_len > 0 && self.udf.body.reads_dst();
        if needs_src || needs_dst {
            let want_cols = if needs_src { self.udf.src_len } else { self.udf.dst_len };
            if vertex.rows() != self.num_vertices || vertex.cols() < want_cols {
                return Err(KernelError::Shape {
                    what: "vertex".into(),
                    expected: (self.num_vertices, want_cols),
                    got: vertex.shape(),
                });
            }
        }
        if self.udf.edge_len > 0 && self.udf.body.reads_edge() {
            let Some(e) = edge else {
                return Err(KernelError::MissingInput { what: "edge" });
            };
            if e.rows() != self.num_edges || e.cols() < self.udf.edge_len {
                return Err(KernelError::Shape {
                    what: "edge".into(),
                    expected: (self.num_edges, self.udf.edge_len),
                    got: e.shape(),
                });
            }
        }
        if !self.udf.params.is_empty() {
            return Err(KernelError::ParamCount {
                expected: self.udf.params.len(),
                got: 0,
            });
        }
        if out.shape() != (self.num_edges, self.udf.out_len) {
            return Err(KernelError::Shape {
                what: "out".into(),
                expected: (self.num_edges, self.udf.out_len),
                got: out.shape(),
            });
        }
        let _run_span = span!(
            "sddmm/run_typed",
            "pattern={:?} dtype={} edges={}",
            self.pattern,
            E::DTYPE,
            self.num_edges
        );
        match self.pattern {
            KernelPattern::Dot => self.run_dot_t(vertex, vertex, out),
            KernelPattern::MultiHeadDot { d } => self.run_multi_head_t(vertex, vertex, out, d),
            _ => {
                let wide = fg_tensor::half::dequantize(vertex);
                let inputs = match edge {
                    Some(e) => GraphTensors::with_edge(&wide, e),
                    None => GraphTensors::vertex_only(&wide),
                };
                self.run_generic(&inputs, out);
            }
        }
        Ok(RunStats::default())
    }

    /// Fused dot-product attention with the reduce axis tiled per the FDS:
    /// each k-tile traverses the edges once, accumulating partial dots —
    /// the edge-wise analogue of Fig. 6b. Generic over feature storage:
    /// operands widen per element, partials accumulate in `f32`.
    fn run_dot_t<E: FeatElem>(&self, x: &Dense2<E>, xd: &Dense2<E>, out: &mut Dense2<f32>) {
        let d = self.udf.red_len();
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);
        let ktiles: Vec<ColTile> = ColTiles::new(d, self.fds.feature_tiles).collect();

        out.fill_zero();
        counter_add(Counter::FeatureTiles, ktiles.len() as u64);
        let writer = SharedRows::new(out.as_mut_slice(), 1);
        for (ti, kt) in ktiles.iter().enumerate() {
            let _span = span!("sddmm/ktile", "tile={ti} width={}", kt.len());
            counter_add(Counter::EdgesProcessed, visits.len() as u64);
            // Per edge and k-tile pass: read a src and a dst slice, combine
            // into the edge's scalar output.
            let elem = std::mem::size_of::<E>();
            counter_add(
                Counter::BytesMoved,
                (visits.len() * (2 * kt.len() * elem + 4)) as u64,
            );
            self.pool.install(|| {
                visits.par_chunks(chunk).for_each(|edges| {
                    histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                    for &(src, dst, eid) in edges {
                        let a = &x.row(src as usize)[kt.range()];
                        let b = &xd.row(dst as usize)[kt.range()];
                        let partial = dot_t(a, b);
                        // Safety: each eid appears exactly once per k-tile
                        // pass, and chunks are disjoint.
                        unsafe {
                            writer.row_mut(eid as usize)[0] += partial;
                        }
                    }
                });
            });
        }
    }

    /// Fused multi-head dot product: `out[eid][h] = Σ_k src[h·d+k]·dst[h·d+k]`.
    /// Generic over feature storage like [`run_dot_t`](Self::run_dot_t).
    fn run_multi_head_t<E: FeatElem>(
        &self,
        x: &Dense2<E>,
        xd: &Dense2<E>,
        out: &mut Dense2<f32>,
        d: usize,
    ) {
        let h = self.udf.out_len;
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);

        let _span = span!("sddmm/multi_head", "heads={h} d={d}");
        counter_add(Counter::EdgesProcessed, visits.len() as u64);
        let elem = std::mem::size_of::<E>();
        counter_add(
            Counter::BytesMoved,
            (visits.len() * (2 * h * d * elem + h * 4)) as u64,
        );
        let writer = SharedRows::new(out.as_mut_slice(), h);
        self.pool.install(|| {
            visits.par_chunks(chunk).for_each(|edges| {
                histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                for &(src, dst, eid) in edges {
                    let srow = x.row(src as usize);
                    let drow = xd.row(dst as usize);
                    // Safety: eids unique across disjoint chunks.
                    let orow = unsafe { writer.row_mut(eid as usize) };
                    for (head, o) in orow.iter_mut().enumerate() {
                        let a = &srow[head * d..(head + 1) * d];
                        let b = &drow[head * d..(head + 1) * d];
                        *o = dot_t(a, b);
                    }
                }
            });
        });
    }

    /// Interpreter fallback for arbitrary edge functions.
    fn run_generic(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>) {
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let xe = inputs.edge;
        let params = inputs.params;
        let udf = &self.udf;
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);
        let empty: [f32; 0] = [];

        let cols = udf.out_len;
        let _span = span!("sddmm/generic", "edges={}", visits.len());
        counter_add(Counter::EdgesProcessed, visits.len() as u64);
        counter_add(
            Counter::BytesMoved,
            (visits.len() * (udf.src_len + udf.dst_len + udf.edge_len + cols) * 4) as u64,
        );
        let writer = SharedRows::new(out.as_mut_slice(), cols);
        self.pool.install(|| {
            visits.par_chunks(chunk).for_each(|edges| {
                histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                for &(src, dst, eid) in edges {
                    let ctx = EdgeCtx {
                        src: if udf.src_len > 0 { x.row(src as usize) } else { &empty },
                        dst: if udf.dst_len > 0 { xd.row(dst as usize) } else { &empty },
                        edge: match xe {
                            Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                            _ => &empty,
                        },
                    };
                    // Safety: eids unique across disjoint chunks.
                    let orow = unsafe { writer.row_mut(eid as usize) };
                    eval_udf(udf, &ctx, params, orow, |slot, v| *slot = v);
                }
            });
        });
    }
}

/// Dot product over typed storage. `f32` operands dot in place via
/// [`FeatElem::as_f32`] — the exact pre-existing expression, bit for bit.
/// Half operands stage through stack buffers via [`FeatElem::widen`]
/// (8-wide F16C decode or an auto-vectorizable loop) so the decode never
/// sits inside the multiply-accumulate loop.
#[inline(always)]
fn dot_t<E: FeatElem>(a: &[E], b: &[E]) -> f32 {
    if let (Some(a), Some(b)) = (E::as_f32(a), E::as_f32(b)) {
        return a.iter().zip(b).map(|(&p, &q)| p * q).sum();
    }
    if !E::STAGED_WIDEN {
        // Trivial decode (bf16: one shift): dot in place, vectorized.
        return a.iter().zip(b).map(|(&p, &q)| p.load() * q.load()).sum();
    }
    let mut ba = [0.0f32; WIDEN_CHUNK];
    let mut bb = [0.0f32; WIDEN_CHUNK];
    let mut acc = 0.0f32;
    for (ac, bc) in a.chunks(WIDEN_CHUNK).zip(b.chunks(WIDEN_CHUNK)) {
        let af = &mut ba[..ac.len()];
        E::widen(ac, af);
        let bf = &mut bb[..bc.len()];
        E::widen(bc, bf);
        acc += af.iter().zip(bf.iter()).map(|(&p, &q)| p * q).sum::<f32>();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sddmm_reference;
    use fg_graph::generators;

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 13 + i * 5) % 17) as f32 * 0.125 - 1.0)
    }

    fn check(
        g: &Graph,
        udf: &Udf,
        inputs: &GraphTensors<'_, f32>,
        fds: &Fds,
        opts: &CpuSddmmOptions,
    ) {
        let k = CpuSddmm::compile(g, udf, fds, opts).unwrap();
        let mut out = Dense2::zeros(g.num_edges(), udf.out_len);
        k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_edges(), udf.out_len);
        sddmm_reference(g, udf, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch {} ({:?}, {opts:?})",
            out.max_abs_diff(&want),
            k.pattern()
        );
    }

    #[test]
    fn dot_product_attention_all_schedules() {
        let g = generators::uniform(150, 5, 11);
        let x = features(150, 24);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::dot(24);
        for traversal in [Traversal::Canonical, Traversal::Hilbert] {
            for tiles in [1, 3] {
                for threads in [1, 3] {
                    check(
                        &g,
                        &udf,
                        &inputs,
                        &Fds::cpu_tiled(tiles),
                        &CpuSddmmOptions { traversal, threads },
                    );
                }
            }
        }
    }

    #[test]
    fn multi_head_dot_matches_reference() {
        let g = generators::uniform(80, 4, 3);
        let x = features(80, 4 * 8);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::multi_head_dot(4, 8);
        check(
            &g,
            &udf,
            &inputs,
            &Fds::default(),
            &CpuSddmmOptions {
                traversal: Traversal::Hilbert,
                threads: 2,
            },
        );
    }

    #[test]
    fn generic_edge_function() {
        use fg_ir::ScalarExpr;
        let g = generators::uniform(60, 3, 8);
        let x = features(60, 6);
        let xe = features(g.num_edges(), 6);
        let inputs = GraphTensors::with_edge(&x, &xe);
        // (src + edge) * dst, element-wise — unrecognized pattern
        let udf = Udf {
            out_len: 6,
            src_len: 6,
            dst_len: 6,
            edge_len: 6,
            reduce: None,
            params: vec![],
            body: ScalarExpr::src_i()
                .add(ScalarExpr::edge_i())
                .mul(ScalarExpr::dst_i()),
            post_relu: false,
        };
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Hilbert)).unwrap();
        assert_eq!(k.pattern(), KernelPattern::Generic);
        check(
            &g,
            &udf,
            &inputs,
            &Fds::default(),
            &CpuSddmmOptions {
                traversal: Traversal::Hilbert,
                threads: 2,
            },
        );
    }

    #[test]
    fn run_typed_f32_is_bitwise_identical_to_run() {
        let g = generators::uniform(130, 5, 19);
        let x = features(130, 24);
        let inputs = GraphTensors::vertex_only(&x);
        for udf in [Udf::dot(24), Udf::multi_head_dot(3, 8)] {
            for traversal in [Traversal::Canonical, Traversal::Hilbert] {
                let k = CpuSddmm::compile(
                    &g,
                    &udf,
                    &Fds::cpu_tiled(2),
                    &CpuSddmmOptions { traversal, threads: 3 },
                )
                .unwrap();
                let mut legacy = Dense2::zeros(g.num_edges(), udf.out_len);
                k.run(&inputs, &mut legacy).unwrap();
                let mut typed = Dense2::zeros(g.num_edges(), udf.out_len);
                k.run_typed::<f32>(&x, None, &mut typed).unwrap();
                assert_eq!(
                    legacy.as_slice(),
                    typed.as_slice(),
                    "f32 run_typed diverged bitwise ({:?}, {traversal:?})",
                    k.pattern()
                );
            }
        }
    }

    #[test]
    fn run_typed_half_tracks_dequantized_reference() {
        use fg_tensor::half::{dequantize, quantize};
        use fg_tensor::{Bf16, F16};
        let g = generators::uniform(110, 4, 23);
        let x = features(110, 16);
        fn check_half<E: FeatElem>(g: &Graph, x: &Dense2<f32>, udf: &Udf) {
            let k = CpuSddmm::compile(
                g,
                udf,
                &Fds::cpu_tiled(2),
                &CpuSddmmOptions {
                    traversal: Traversal::Hilbert,
                    threads: 2,
                },
            )
            .unwrap();
            let xh: Dense2<E> = quantize(x);
            let mut got = Dense2::zeros(g.num_edges(), udf.out_len);
            k.run_typed(&xh, None, &mut got).unwrap();
            let wide = dequantize(&xh);
            let mut want = Dense2::zeros(g.num_edges(), udf.out_len);
            k.run(&GraphTensors::vertex_only(&wide), &mut want).unwrap();
            assert!(
                got.approx_eq(&want, 1e-6),
                "{} path drifted from dequantized reference: max diff {}",
                E::DTYPE,
                got.max_abs_diff(&want)
            );
        }
        for udf in [Udf::dot(16), Udf::multi_head_dot(2, 8)] {
            check_half::<F16>(&g, &x, &udf);
            check_half::<Bf16>(&g, &x, &udf);
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = Graph::from_edges(5, &[]);
        let x = features(5, 8);
        let udf = Udf::dot(8);
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Canonical)).unwrap();
        let mut out = Dense2::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }

    #[test]
    fn out_shape_is_validated() {
        let g = generators::uniform(10, 2, 1);
        let x = features(10, 8);
        let udf = Udf::dot(8);
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Canonical)).unwrap();
        let mut out = Dense2::zeros(g.num_edges(), 2); // should be 1 col
        assert!(k.run(&GraphTensors::vertex_only(&x), &mut out).is_err());
    }
}
