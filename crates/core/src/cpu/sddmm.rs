//! CPU generalized SDDMM template.

use fg_graph::hilbert::EdgeOrder;
use fg_graph::Graph;
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::{Fds, KernelPattern, Udf};
use fg_tensor::tile::{ColTile, ColTiles};
use fg_tensor::Dense2;
use fg_telemetry::{counter_add, histogram_record, span, Counter, Histogram};
use rayon::prelude::*;

use crate::error::KernelError;
use crate::inputs::GraphTensors;
use crate::util::{self, SharedRows};
use crate::RunStats;

/// Edge traversal order for the CPU SDDMM template (§III-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// Canonical destination-major order.
    Canonical,
    /// Hilbert-curve order over the `(src, dst)` plane — locality in both
    /// endpoint feature sets across cache levels.
    #[default]
    Hilbert,
}

/// Template-level options for the CPU SDDMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSddmmOptions {
    /// Edge traversal order.
    pub traversal: Traversal,
    /// Worker threads.
    pub threads: usize,
}

impl CpuSddmmOptions {
    /// Defaults: Hilbert traversal, all cores.
    ///
    /// When the OS cannot report its core count the thread count falls back
    /// to 1 — see [`crate::util::detected_threads`] for how that fallback is
    /// surfaced (stderr warning + `parallelism_fallbacks` counter).
    pub fn auto(_graph: &Graph, _udf: &Udf, _fds: &Fds) -> Self {
        Self {
            traversal: Traversal::Hilbert,
            threads: util::detected_threads(),
        }
    }

    /// Single-threaded with an explicit traversal.
    pub fn single_thread(traversal: Traversal) -> Self {
        Self {
            traversal,
            threads: 1,
        }
    }
}

/// A compiled CPU generalized-SDDMM kernel.
pub struct CpuSddmm {
    udf: Udf,
    fds: Fds,
    pattern: KernelPattern,
    order: EdgeOrder,
    num_vertices: usize,
    num_edges: usize,
    pool: rayon::ThreadPool,
}

impl CpuSddmm {
    /// Validate and build the execution plan (edge order, thread pool).
    pub fn compile(
        graph: &Graph,
        udf: &Udf,
        fds: &Fds,
        opts: &CpuSddmmOptions,
    ) -> Result<Self, KernelError> {
        udf.validate()?;
        let order = match opts.traversal {
            Traversal::Canonical => EdgeOrder::canonical(graph),
            Traversal::Hilbert => EdgeOrder::hilbert(graph),
        };
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            udf: udf.clone(),
            fds: *fds,
            pattern: KernelPattern::of(udf),
            order,
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            pool: util::pool(opts.threads),
        })
    }

    /// The recognized kernel pattern.
    pub fn pattern(&self) -> KernelPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (the materialized edge order).
    pub fn mem_bytes(&self) -> u64 {
        self.order.mem_bytes()
    }

    /// Execute the kernel: `out[eid] = udf(src, dst, eid)` for every edge.
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.udf, self.num_vertices, self.num_edges, out, self.num_edges)?;
        let _run_span = span!(
            "sddmm/run",
            "pattern={:?} edges={} tiles={}",
            self.pattern,
            self.num_edges,
            self.fds.feature_tiles.max(1)
        );
        match self.pattern {
            KernelPattern::Dot => self.run_dot(inputs, out),
            KernelPattern::MultiHeadDot { d } => self.run_multi_head(inputs, out, d),
            _ => self.run_generic(inputs, out),
        }
        Ok(RunStats::default())
    }

    /// Fused dot-product attention with the reduce axis tiled per the FDS:
    /// each k-tile traverses the edges once, accumulating partial dots —
    /// the edge-wise analogue of Fig. 6b.
    fn run_dot(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>) {
        let d = self.udf.red_len();
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);
        let ktiles: Vec<ColTile> = ColTiles::new(d, self.fds.feature_tiles).collect();

        out.fill_zero();
        counter_add(Counter::FeatureTiles, ktiles.len() as u64);
        let writer = SharedRows::new(out.as_mut_slice(), 1);
        for (ti, kt) in ktiles.iter().enumerate() {
            let _span = span!("sddmm/ktile", "tile={ti} width={}", kt.len());
            counter_add(Counter::EdgesProcessed, visits.len() as u64);
            // Per edge and k-tile pass: read a src and a dst slice, combine
            // into the edge's scalar output.
            counter_add(Counter::BytesMoved, (visits.len() * (2 * kt.len() + 1) * 4) as u64);
            self.pool.install(|| {
                visits.par_chunks(chunk).for_each(|edges| {
                    histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                    for &(src, dst, eid) in edges {
                        let a = &x.row(src as usize)[kt.range()];
                        let b = &xd.row(dst as usize)[kt.range()];
                        let partial: f32 = a.iter().zip(b).map(|(&p, &q)| p * q).sum();
                        // Safety: each eid appears exactly once per k-tile
                        // pass, and chunks are disjoint.
                        unsafe {
                            writer.row_mut(eid as usize)[0] += partial;
                        }
                    }
                });
            });
        }
    }

    /// Fused multi-head dot product: `out[eid][h] = Σ_k src[h·d+k]·dst[h·d+k]`.
    fn run_multi_head(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>, d: usize) {
        let h = self.udf.out_len;
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);

        let _span = span!("sddmm/multi_head", "heads={h} d={d}");
        counter_add(Counter::EdgesProcessed, visits.len() as u64);
        counter_add(Counter::BytesMoved, (visits.len() * (2 * h * d + h) * 4) as u64);
        let writer = SharedRows::new(out.as_mut_slice(), h);
        self.pool.install(|| {
            visits.par_chunks(chunk).for_each(|edges| {
                histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                for &(src, dst, eid) in edges {
                    let srow = x.row(src as usize);
                    let drow = xd.row(dst as usize);
                    // Safety: eids unique across disjoint chunks.
                    let orow = unsafe { writer.row_mut(eid as usize) };
                    for (head, o) in orow.iter_mut().enumerate() {
                        let a = &srow[head * d..(head + 1) * d];
                        let b = &drow[head * d..(head + 1) * d];
                        *o = a.iter().zip(b).map(|(&p, &q)| p * q).sum();
                    }
                }
            });
        });
    }

    /// Interpreter fallback for arbitrary edge functions.
    fn run_generic(&self, inputs: &GraphTensors<'_, f32>, out: &mut Dense2<f32>) {
        let x = inputs.vertex;
        let xd = inputs.dst_tensor();
        let xe = inputs.edge;
        let params = inputs.params;
        let udf = &self.udf;
        let visits = &self.order.visits;
        let chunk = visits.len().div_ceil(self.pool.current_num_threads().max(1) * 4).max(1);
        let empty: [f32; 0] = [];

        let cols = udf.out_len;
        let _span = span!("sddmm/generic", "edges={}", visits.len());
        counter_add(Counter::EdgesProcessed, visits.len() as u64);
        counter_add(
            Counter::BytesMoved,
            (visits.len() * (udf.src_len + udf.dst_len + udf.edge_len + cols) * 4) as u64,
        );
        let writer = SharedRows::new(out.as_mut_slice(), cols);
        self.pool.install(|| {
            visits.par_chunks(chunk).for_each(|edges| {
                histogram_record(Histogram::SddmmChunkEdges, edges.len() as u64);
                for &(src, dst, eid) in edges {
                    let ctx = EdgeCtx {
                        src: if udf.src_len > 0 { x.row(src as usize) } else { &empty },
                        dst: if udf.dst_len > 0 { xd.row(dst as usize) } else { &empty },
                        edge: match xe {
                            Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                            _ => &empty,
                        },
                    };
                    // Safety: eids unique across disjoint chunks.
                    let orow = unsafe { writer.row_mut(eid as usize) };
                    eval_udf(udf, &ctx, params, orow, |slot, v| *slot = v);
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sddmm_reference;
    use fg_graph::generators;

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 13 + i * 5) % 17) as f32 * 0.125 - 1.0)
    }

    fn check(
        g: &Graph,
        udf: &Udf,
        inputs: &GraphTensors<'_, f32>,
        fds: &Fds,
        opts: &CpuSddmmOptions,
    ) {
        let k = CpuSddmm::compile(g, udf, fds, opts).unwrap();
        let mut out = Dense2::zeros(g.num_edges(), udf.out_len);
        k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_edges(), udf.out_len);
        sddmm_reference(g, udf, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch {} ({:?}, {opts:?})",
            out.max_abs_diff(&want),
            k.pattern()
        );
    }

    #[test]
    fn dot_product_attention_all_schedules() {
        let g = generators::uniform(150, 5, 11);
        let x = features(150, 24);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::dot(24);
        for traversal in [Traversal::Canonical, Traversal::Hilbert] {
            for tiles in [1, 3] {
                for threads in [1, 3] {
                    check(
                        &g,
                        &udf,
                        &inputs,
                        &Fds::cpu_tiled(tiles),
                        &CpuSddmmOptions { traversal, threads },
                    );
                }
            }
        }
    }

    #[test]
    fn multi_head_dot_matches_reference() {
        let g = generators::uniform(80, 4, 3);
        let x = features(80, 4 * 8);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::multi_head_dot(4, 8);
        check(
            &g,
            &udf,
            &inputs,
            &Fds::default(),
            &CpuSddmmOptions {
                traversal: Traversal::Hilbert,
                threads: 2,
            },
        );
    }

    #[test]
    fn generic_edge_function() {
        use fg_ir::ScalarExpr;
        let g = generators::uniform(60, 3, 8);
        let x = features(60, 6);
        let xe = features(g.num_edges(), 6);
        let inputs = GraphTensors::with_edge(&x, &xe);
        // (src + edge) * dst, element-wise — unrecognized pattern
        let udf = Udf {
            out_len: 6,
            src_len: 6,
            dst_len: 6,
            edge_len: 6,
            reduce: None,
            params: vec![],
            body: ScalarExpr::src_i()
                .add(ScalarExpr::edge_i())
                .mul(ScalarExpr::dst_i()),
            post_relu: false,
        };
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Hilbert)).unwrap();
        assert_eq!(k.pattern(), KernelPattern::Generic);
        check(
            &g,
            &udf,
            &inputs,
            &Fds::default(),
            &CpuSddmmOptions {
                traversal: Traversal::Hilbert,
                threads: 2,
            },
        );
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = Graph::from_edges(5, &[]);
        let x = features(5, 8);
        let udf = Udf::dot(8);
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Canonical)).unwrap();
        let mut out = Dense2::zeros(0, 1);
        k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
    }

    #[test]
    fn out_shape_is_validated() {
        let g = generators::uniform(10, 2, 1);
        let x = features(10, 8);
        let udf = Udf::dot(8);
        let k = CpuSddmm::compile(&g, &udf, &Fds::default(), &CpuSddmmOptions::single_thread(Traversal::Canonical)).unwrap();
        let mut out = Dense2::zeros(g.num_edges(), 2); // should be 1 col
        assert!(k.run(&GraphTensors::vertex_only(&x), &mut out).is_err());
    }
}
