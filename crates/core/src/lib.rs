//! # featgraph
//!
//! The core of the FeatGraph reproduction: **generalized SpMM and SDDMM
//! kernel templates** that compose coarse-grained graph traversal with
//! fine-grained user-defined feature-dimension computations (UDFs), exactly
//! as the paper's two-granularity programming interface does (§III-B).
//!
//! ## The paper's API, in Rust
//!
//! The paper's Fig. 3a builds GCN aggregation as
//! `featgraph.spmm(A, msgfunc, aggregation, target, fds)`; here:
//!
//! ```
//! use featgraph::{spmm, GraphTensors, Reducer, Target, Fds, Udf};
//! use fg_graph::generators;
//! use fg_tensor::Dense2;
//!
//! let graph = generators::uniform(100, 8, 42);
//! let d = 32;
//! // message function: copy the source vertex feature (GCN aggregation)
//! let msgfunc = Udf::copy_src(d);
//! // feature dimension schedule: tile the feature dimension for cache reuse
//! let fds = Fds::cpu_tiled(4);
//! let kernel = spmm(&graph, &msgfunc, Reducer::Sum, Target::Cpu, &fds).unwrap();
//!
//! let x = Dense2::<f32>::from_fn(100, d, |v, i| (v + i) as f32);
//! let mut h = Dense2::<f32>::zeros(100, d);
//! kernel.run(&GraphTensors::vertex_only(&x), &mut h).unwrap();
//! ```
//!
//! ## Two decoupled optimization levels
//!
//! * **Template level** (this crate): 1D graph partitioning + LLC-aware
//!   cooperative threading for CPU SpMM (§III-C1, Fig. 6), Hilbert-curve
//!   edge traversal for CPU SDDMM, vertex/edge parallelization with
//!   feature-dimension thread binding for the GPU templates (§III-C2,
//!   Fig. 7), and hybrid degree-split shared-memory partitioning on GPU
//!   (§III-C3).
//! * **UDF level** (the [`Fds`] the caller passes): feature/reduce-axis
//!   tiling on CPU, thread binding and tree reduction on GPU.
//!
//! "GPU" executions run on [`fg_gpusim`]'s functional V100 cost model — see
//! DESIGN.md's substitution table.

pub mod autotune;
pub mod cpu;
pub mod error;
pub mod gpu;
pub mod inputs;
pub mod reference;
pub mod util;

pub use error::KernelError;
pub use inputs::{FusedInputs, GraphTensors};

// Re-export the IR types a user needs to drive the API, so `featgraph` is a
// one-stop dependency like the Python package in the paper.
pub use fg_ir::{
    Fds, FusedError, FusedOp, FusedPattern, GpuBind, GpuFds, KernelPattern, Reducer, Udf,
};

use fg_graph::Graph;
use fg_tensor::Dense2;

/// Compilation/execution target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Host CPU (rayon-parallel kernels; thread count set via options).
    Cpu,
    /// The simulated V100 GPU.
    Gpu,
}

/// A compiled generalized-SpMM kernel (vertex-wise computation, Eq. (1)).
pub enum SpmmKernel {
    /// CPU plan.
    Cpu(cpu::spmm::CpuSpmm),
    /// GPU-simulator plan.
    Gpu(gpu::spmm::GpuSpmm),
}

impl SpmmKernel {
    /// Execute: aggregate per-edge messages into `out` (`|V| × udf.out_len`).
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        match self {
            SpmmKernel::Cpu(k) => k.run(inputs, out),
            SpmmKernel::Gpu(k) => k.run(inputs, out),
        }
    }

    /// Heap bytes held by the compiled plan.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            SpmmKernel::Cpu(k) => k.mem_bytes(),
            SpmmKernel::Gpu(k) => k.mem_bytes(),
        }
    }
}

/// A compiled generalized-SDDMM kernel (edge-wise computation, Eq. (2)).
pub enum SddmmKernel {
    /// CPU plan.
    Cpu(cpu::sddmm::CpuSddmm),
    /// GPU-simulator plan.
    Gpu(gpu::sddmm::GpuSddmm),
}

impl SddmmKernel {
    /// Execute: compute per-edge outputs into `out` (`|E| × udf.out_len`).
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        match self {
            SddmmKernel::Cpu(k) => k.run(inputs, out),
            SddmmKernel::Gpu(k) => k.run(inputs, out),
        }
    }

    /// Heap bytes held by the compiled plan.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            SddmmKernel::Cpu(k) => k.mem_bytes(),
            SddmmKernel::Gpu(k) => k.mem_bytes(),
        }
    }
}

/// A compiled fused SDDMM → (softmax) → SpMM kernel (attention layers
/// without the `|E| × d` intermediate).
pub enum FusedKernel {
    /// CPU plan.
    Cpu(cpu::fused::CpuFused),
    /// GPU-simulator plan.
    Gpu(gpu::fused::GpuFused),
}

impl FusedKernel {
    /// Execute: aggregate score-weighted messages into `out`
    /// (`|V| × op.out_len()`).
    pub fn run(
        &self,
        inputs: &FusedInputs<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        match self {
            FusedKernel::Cpu(k) => k.run(inputs, out),
            FusedKernel::Gpu(k) => k.run(inputs, out),
        }
    }

    /// The recognized fused pattern.
    pub fn pattern(&self) -> FusedPattern {
        match self {
            FusedKernel::Cpu(k) => k.pattern(),
            FusedKernel::Gpu(k) => k.pattern(),
        }
    }

    /// Heap bytes held by the compiled plan.
    pub fn mem_bytes(&self) -> u64 {
        match self {
            FusedKernel::Cpu(k) => k.mem_bytes(),
            FusedKernel::Gpu(k) => k.mem_bytes(),
        }
    }
}

/// Execution statistics returned by a kernel run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Simulated GPU time in milliseconds (`None` for CPU runs — time those
    /// with a wall clock).
    pub gpu_time_ms: Option<f64>,
    /// The GPU launch reports, one per simulated kernel launch.
    pub gpu_launches: Vec<fg_gpusim::LaunchReport>,
}

impl RunStats {
    /// Total simulated GPU milliseconds across launches.
    pub fn total_gpu_ms(&self) -> f64 {
        self.gpu_time_ms.unwrap_or(0.0)
    }
}

/// Build a generalized SpMM kernel (the paper's `featgraph.spmm`).
///
/// * `graph` — adjacency (destination-major aggregation).
/// * `msgfunc` — the per-edge message UDF.
/// * `aggregation` — commutative reducer combining messages per vertex.
/// * `target` / `fds` — where to run and how to schedule the UDF.
///
/// Template-level choices (graph partitions, thread counts, block sizes,
/// hybrid partitioning) use tuned defaults; override them with
/// [`spmm_with_options`].
pub fn spmm(
    graph: &Graph,
    msgfunc: &Udf,
    aggregation: Reducer,
    target: Target,
    fds: &Fds,
) -> Result<SpmmKernel, KernelError> {
    spmm_with_options(graph, msgfunc, aggregation, fds, target, None, None)
}

/// [`spmm`] with explicit template-level options.
pub fn spmm_with_options(
    graph: &Graph,
    msgfunc: &Udf,
    aggregation: Reducer,
    fds: &Fds,
    target: Target,
    cpu_opts: Option<&cpu::spmm::CpuSpmmOptions>,
    gpu_opts: Option<&gpu::spmm::GpuSpmmOptions>,
) -> Result<SpmmKernel, KernelError> {
    match target {
        Target::Cpu => {
            let auto;
            let opts = match cpu_opts {
                Some(o) => o,
                None => {
                    auto = cpu::spmm::CpuSpmmOptions::auto(graph, msgfunc, fds);
                    &auto
                }
            };
            Ok(SpmmKernel::Cpu(cpu::spmm::CpuSpmm::compile(
                graph,
                msgfunc,
                aggregation,
                fds,
                opts,
            )?))
        }
        Target::Gpu => {
            let default;
            let opts = match gpu_opts {
                Some(o) => o,
                None => {
                    default = gpu::spmm::GpuSpmmOptions::default();
                    &default
                }
            };
            Ok(SpmmKernel::Gpu(gpu::spmm::GpuSpmm::compile(
                graph,
                msgfunc,
                aggregation,
                fds,
                opts,
            )?))
        }
    }
}

/// Build a fused SDDMM → (softmax) → SpMM kernel.
///
/// The unfused composition runs three kernels and materializes an `|E| × d`
/// edge tensor between them; the fused kernel evaluates the score inside the
/// aggregation loop, with streaming `O(|V|)` softmax accumulators.
pub fn fused(graph: &Graph, op: &FusedOp, target: Target) -> Result<FusedKernel, KernelError> {
    fused_with_options(graph, op, target, None, None)
}

/// [`fused`] with explicit template-level options. The CPU kernel reuses the
/// SpMM template's options (same traversal, different per-edge work).
pub fn fused_with_options(
    graph: &Graph,
    op: &FusedOp,
    target: Target,
    cpu_opts: Option<&cpu::spmm::CpuSpmmOptions>,
    gpu_opts: Option<&gpu::fused::GpuFusedOptions>,
) -> Result<FusedKernel, KernelError> {
    match target {
        Target::Cpu => {
            let auto;
            let opts = match cpu_opts {
                Some(o) => o,
                None => {
                    auto = cpu::spmm::CpuSpmmOptions::auto(graph, &op.message, &Fds::default());
                    &auto
                }
            };
            Ok(FusedKernel::Cpu(cpu::fused::CpuFused::compile(graph, op, opts)?))
        }
        Target::Gpu => {
            let default;
            let opts = match gpu_opts {
                Some(o) => o,
                None => {
                    default = gpu::fused::GpuFusedOptions::default();
                    &default
                }
            };
            Ok(FusedKernel::Gpu(gpu::fused::GpuFused::compile(graph, op, opts)?))
        }
    }
}

/// Build a generalized SDDMM kernel (the paper's `featgraph.sddmm`).
pub fn sddmm(
    graph: &Graph,
    edgefunc: &Udf,
    target: Target,
    fds: &Fds,
) -> Result<SddmmKernel, KernelError> {
    sddmm_with_options(graph, edgefunc, fds, target, None, None)
}

/// [`sddmm`] with explicit template-level options.
pub fn sddmm_with_options(
    graph: &Graph,
    edgefunc: &Udf,
    fds: &Fds,
    target: Target,
    cpu_opts: Option<&cpu::sddmm::CpuSddmmOptions>,
    gpu_opts: Option<&gpu::sddmm::GpuSddmmOptions>,
) -> Result<SddmmKernel, KernelError> {
    match target {
        Target::Cpu => {
            let auto;
            let opts = match cpu_opts {
                Some(o) => o,
                None => {
                    auto = cpu::sddmm::CpuSddmmOptions::auto(graph, edgefunc, fds);
                    &auto
                }
            };
            Ok(SddmmKernel::Cpu(cpu::sddmm::CpuSddmm::compile(
                graph, edgefunc, fds, opts,
            )?))
        }
        Target::Gpu => {
            let default;
            let opts = match gpu_opts {
                Some(o) => o,
                None => {
                    default = gpu::sddmm::GpuSddmmOptions::default();
                    &default
                }
            };
            Ok(SddmmKernel::Gpu(gpu::sddmm::GpuSddmm::compile(
                graph, edgefunc, fds, opts,
            )?))
        }
    }
}
