//! Grid-search autotuning of scheduling parameters (§IV-A).
//!
//! The paper combines template parameters (number of graph partitions,
//! number of CUDA blocks) with FDS parameters (feature tiling factors) into
//! one design space and grid-searches it per input shape. Tuning cost is
//! amortized over training epochs. Figs. 14/15 are direct prints of these
//! grids.

use std::time::Instant;

use fg_graph::Graph;
use fg_ir::{Fds, Reducer, Udf};
use fg_telemetry::{counter_add, gauge_set, span, Counter, Gauge};
use fg_tensor::Dense2;

use crate::cpu::spmm::{CpuSpmm, CpuSpmmOptions};
use crate::error::KernelError;
use crate::gpu::spmm::{GpuSpmm, GpuSpmmOptions};
use crate::inputs::GraphTensors;

/// One grid point of a CPU SpMM tuning run.
#[derive(Debug, Clone, Copy)]
pub struct CpuGridPoint {
    /// Number of 1D graph partitions.
    pub graph_partitions: usize,
    /// Number of feature tiles.
    pub feature_tiles: usize,
    /// Measured wall-clock seconds per run.
    pub seconds: f64,
}

/// Result of a CPU SpMM grid search.
#[derive(Debug, Clone)]
pub struct CpuTuneResult {
    /// Every evaluated point.
    pub grid: Vec<CpuGridPoint>,
    /// Index of the fastest point in `grid`.
    pub best: usize,
}

impl CpuTuneResult {
    /// The winning grid point.
    pub fn best_point(&self) -> CpuGridPoint {
        self.grid[self.best]
    }
}

/// Grid-search `(graph_partitions × feature_tiles)` for CPU SpMM, timing
/// `repeats` runs of each configuration (Fig. 14).
#[allow(clippy::too_many_arguments)]
pub fn tune_spmm_cpu(
    graph: &Graph,
    udf: &Udf,
    agg: Reducer,
    inputs: &GraphTensors<'_, f32>,
    partition_choices: &[usize],
    tile_choices: &[usize],
    threads: usize,
    repeats: usize,
) -> Result<CpuTuneResult, KernelError> {
    let _tune_span = span!(
        "autotune/spmm_cpu",
        "grid={}x{}",
        partition_choices.len(),
        tile_choices.len()
    );
    let mut grid = Vec::new();
    let mut out = Dense2::zeros(graph.num_vertices(), udf.out_len);
    for &gp in partition_choices {
        for &ft in tile_choices {
            let _trial_span = span!("autotune/trial", "partitions={gp} tiles={ft}");
            counter_add(Counter::AutotuneTrials, 1);
            let fds = Fds::cpu_tiled(ft);
            let opts = CpuSpmmOptions::with_threads(gp, threads);
            let kernel = CpuSpmm::compile(graph, udf, agg, &fds, &opts)?;
            // warm-up, then measure
            kernel.run(inputs, &mut out)?;
            let t0 = Instant::now();
            for _ in 0..repeats.max(1) {
                kernel.run(inputs, &mut out)?;
            }
            let seconds = t0.elapsed().as_secs_f64() / repeats.max(1) as f64;
            grid.push(CpuGridPoint {
                graph_partitions: gp,
                feature_tiles: ft,
                seconds,
            });
        }
    }
    let best = grid
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.seconds.total_cmp(&b.1.seconds))
        .map(|(i, _)| i)
        .expect("non-empty grid");
    gauge_set(Gauge::AutotuneBestSeconds, grid[best].seconds);
    Ok(CpuTuneResult { grid, best })
}

/// Result of the adaptive tuner: the chosen point plus its search trace.
#[derive(Debug, Clone)]
pub struct AdaptiveTuneResult {
    /// Best configuration found.
    pub best: CpuGridPoint,
    /// Every configuration evaluated, in visit order.
    pub trace: Vec<CpuGridPoint>,
}

/// Measurement callback threaded through the adaptive tuner's line search:
/// `(graph_partitions, feature_tiles, trace) -> seconds`.
type MeasureFn<'a> = dyn FnMut(usize, usize, &mut Vec<CpuGridPoint>) -> Result<f64, KernelError> + 'a;

/// Adaptive coordinate-descent tuner for the CPU SpMM schedule — the
/// "more intelligent tuner" the paper leaves as future work (§VII).
///
/// Instead of the full `|partitions| × |tiles|` grid, it alternates
/// early-stopping line searches along each axis over power-of-two
/// candidates (two coordinate-descent rounds). On the Fig. 14 landscape —
/// unimodal along each axis — it reaches the grid optimum in a fraction of
/// the evaluations; tested against the exhaustive grid.
#[allow(clippy::too_many_arguments)]
pub fn tune_spmm_cpu_adaptive(
    graph: &Graph,
    udf: &Udf,
    agg: Reducer,
    inputs: &GraphTensors<'_, f32>,
    max_partitions: usize,
    max_tiles: usize,
    threads: usize,
    repeats: usize,
) -> Result<AdaptiveTuneResult, KernelError> {
    let _tune_span = span!(
        "autotune/spmm_cpu_adaptive",
        "max_partitions={max_partitions} max_tiles={max_tiles}"
    );
    let mut out = Dense2::zeros(graph.num_vertices(), udf.out_len);
    let mut trace: Vec<CpuGridPoint> = Vec::new();

    let pow2_upto = |cap: usize| -> Vec<usize> {
        let mut v = vec![1usize];
        while *v.last().unwrap() * 2 <= cap.max(1) {
            let next = v.last().unwrap() * 2;
            v.push(next);
        }
        v
    };
    let partition_axis = pow2_upto(max_partitions);
    let tile_axis = pow2_upto(max_tiles.min(udf.out_len.max(1)));

    let mut measure = |gp: usize, ft: usize, trace: &mut Vec<CpuGridPoint>| -> Result<f64, KernelError> {
        if let Some(hit) = trace
            .iter()
            .find(|p| p.graph_partitions == gp && p.feature_tiles == ft)
        {
            return Ok(hit.seconds);
        }
        let _trial_span = span!("autotune/trial", "partitions={gp} tiles={ft}");
        counter_add(Counter::AutotuneTrials, 1);
        let fds = Fds::cpu_tiled(ft);
        let opts = CpuSpmmOptions::with_threads(gp, threads);
        let kernel = CpuSpmm::compile(graph, udf, agg, &fds, &opts)?;
        kernel.run(inputs, &mut out)?; // warm-up
        let t0 = Instant::now();
        for _ in 0..repeats.max(1) {
            kernel.run(inputs, &mut out)?;
        }
        let seconds = t0.elapsed().as_secs_f64() / repeats.max(1) as f64;
        trace.push(CpuGridPoint {
            graph_partitions: gp,
            feature_tiles: ft,
            seconds,
        });
        Ok(seconds)
    };

    let mut ft = 1usize;

    let line_search = |axis: &[usize],
                       fixed_other: usize,
                       is_partition_axis: bool,
                       trace: &mut Vec<CpuGridPoint>,
                       measure: &mut MeasureFn<'_>|
     -> Result<usize, KernelError> {
        let mut best = axis[0];
        let mut best_t = f64::INFINITY;
        // unimodal assumption: stop after the first uptick past the minimum
        let mut rising = 0;
        for &cand in axis {
            let t = if is_partition_axis {
                measure(cand, fixed_other, trace)?
            } else {
                measure(fixed_other, cand, trace)?
            };
            if t < best_t {
                best_t = t;
                best = cand;
                rising = 0;
            } else {
                rising += 1;
                if rising >= 2 {
                    break;
                }
            }
        }
        Ok(best)
    };

    let mut gp = 1usize;
    for _round in 0..2 {
        gp = line_search(&partition_axis, ft, true, &mut trace, &mut measure)?;
        ft = line_search(&tile_axis, gp, false, &mut trace, &mut measure)?;
    }
    let _ = gp;
    // Noise-aware selection: trials on tiny or degenerate graphs finish in
    // well under the timer's useful resolution, so a raw min would pick
    // whichever point jitter happened to favor. Treat everything within a
    // small margin of the fastest as a tie and prefer the simplest
    // schedule — fewer partitions/tiles never loses at equal speed. The
    // 20 µs floor is what matters: it collapses noise-dominated
    // micro-measurements into ties without overriding real differences on
    // measurable workloads.
    let fastest = trace
        .iter()
        .map(|p| p.seconds)
        .fold(f64::INFINITY, f64::min);
    let margin = (fastest * 0.025).max(20e-6);
    let best = *trace
        .iter()
        .filter(|p| p.seconds <= fastest + margin)
        .min_by_key(|p| (p.graph_partitions, p.feature_tiles))
        .expect("non-empty trace");
    gauge_set(Gauge::AutotuneBestSeconds, best.seconds);
    Ok(AdaptiveTuneResult { best, trace })
}

/// One grid point of a GPU block-count sweep (Fig. 15).
#[derive(Debug, Clone, Copy)]
pub struct GpuGridPoint {
    /// Requested number of blocks.
    pub num_blocks: usize,
    /// Simulated milliseconds.
    pub time_ms: f64,
}

/// Sweep the number of CUDA blocks for the GPU SpMM kernel (Fig. 15).
pub fn tune_spmm_gpu_blocks(
    graph: &Graph,
    udf: &Udf,
    agg: Reducer,
    fds: &Fds,
    inputs: &GraphTensors<'_, f32>,
    block_choices: &[usize],
) -> Result<Vec<GpuGridPoint>, KernelError> {
    let _tune_span = span!("autotune/spmm_gpu_blocks", "choices={}", block_choices.len());
    let mut out = Dense2::zeros(graph.num_vertices(), udf.out_len);
    let mut points = Vec::with_capacity(block_choices.len());
    for &blocks in block_choices {
        let _trial_span = span!("autotune/trial", "blocks={blocks}");
        counter_add(Counter::AutotuneTrials, 1);
        let opts = GpuSpmmOptions::with_num_blocks(graph, blocks);
        let kernel = GpuSpmm::compile(graph, udf, agg, fds, &opts)?;
        let stats = kernel.run(inputs, &mut out)?;
        points.push(GpuGridPoint {
            num_blocks: blocks,
            time_ms: stats.gpu_time_ms.expect("gpu run"),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    #[test]
    fn cpu_grid_search_finds_a_minimum() {
        let g = generators::uniform(400, 6, 2);
        let x = Dense2::from_fn(400, 32, |v, i| (v + i) as f32 * 0.01);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        let result = tune_spmm_cpu(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &[1, 4],
            &[1, 2],
            1,
            1,
        )
        .unwrap();
        assert_eq!(result.grid.len(), 4);
        let best = result.best_point();
        assert!(result.grid.iter().all(|p| p.seconds >= best.seconds));
        assert!(best.seconds > 0.0);
    }

    #[test]
    fn adaptive_tuner_matches_grid_search_quality() {
        let g = generators::uniform(600, 8, 5);
        let x = Dense2::from_fn(600, 64, |v, i| (v + i) as f32 * 0.01);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(64);
        let grid = tune_spmm_cpu(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &[1, 2, 4, 8],
            &[1, 2, 4],
            1,
            1,
        )
        .unwrap();
        let adaptive =
            tune_spmm_cpu_adaptive(&g, &udf, Reducer::Sum, &inputs, 8, 4, 1, 1).unwrap();
        // fewer (or equal) evaluations than the exhaustive grid
        assert!(
            adaptive.trace.len() <= grid.grid.len(),
            "adaptive evaluated {} vs grid {}",
            adaptive.trace.len(),
            grid.grid.len()
        );
        // and a result in the same ballpark as the grid optimum (timing
        // noise on a busy host makes exact equality too strict)
        assert!(
            adaptive.best.seconds <= grid.best_point().seconds * 3.0,
            "adaptive {:?} vs grid best {:?}",
            adaptive.best,
            grid.best_point()
        );
    }

    #[test]
    fn adaptive_tuner_handles_degenerate_axes() {
        let g = generators::uniform(50, 3, 1);
        let x = Dense2::from_fn(50, 4, |v, i| (v + i) as f32);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(4);
        let r = tune_spmm_cpu_adaptive(&g, &udf, Reducer::Sum, &inputs, 1, 1, 1, 1).unwrap();
        assert_eq!(r.best.graph_partitions, 1);
        assert_eq!(r.best.feature_tiles, 1);
    }

    #[test]
    fn gpu_block_sweep_returns_monotone_grid_shape() {
        let g = generators::uniform(2000, 8, 3);
        let x = Dense2::from_fn(2000, 32, |v, i| (v + i) as f32 * 0.01);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        let points = tune_spmm_gpu_blocks(
            &g,
            &udf,
            Reducer::Sum,
            &Fds::gpu_thread_x(32),
            &inputs,
            &[8, 64, 2000],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        // more blocks should not be slower in this regime (Fig. 15 shape)
        assert!(points[0].time_ms >= points[2].time_ms);
    }
}
