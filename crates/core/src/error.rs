//! Kernel compilation and execution errors.

use fg_ir::{FusedError, UdfError};
use fg_tensor::ShapeError;

/// Errors surfaced by kernel compilation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The UDF failed validation.
    Udf(UdfError),
    /// A fused operator failed validation.
    Fused(FusedError),
    /// An input/output tensor has the wrong shape.
    Shape {
        /// Which tensor ("vertex", "edge", "out", "param k").
        what: String,
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Provided `(rows, cols)`.
        got: (usize, usize),
    },
    /// A required input tensor was not supplied.
    MissingInput {
        /// Which tensor.
        what: &'static str,
    },
    /// Wrong number of parameter matrices.
    ParamCount {
        /// Declared by the UDF.
        expected: usize,
        /// Supplied at run time.
        got: usize,
    },
    /// The schedule is not executable on the target (e.g. a zero block size).
    BadSchedule(String),
    /// A tensor-level error bubbled up.
    Tensor(ShapeError),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Udf(e) => write!(f, "invalid UDF: {e}"),
            KernelError::Fused(e) => write!(f, "invalid fused operator: {e}"),
            KernelError::Shape {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} tensor has shape {got:?}, kernel expects {expected:?}"
            ),
            KernelError::MissingInput { what } => {
                write!(f, "kernel requires the {what} tensor but none was supplied")
            }
            KernelError::ParamCount { expected, got } => {
                write!(f, "UDF declares {expected} parameter(s), {got} supplied")
            }
            KernelError::BadSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            KernelError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<UdfError> for KernelError {
    fn from(e: UdfError) -> Self {
        KernelError::Udf(e)
    }
}

impl From<ShapeError> for KernelError {
    fn from(e: ShapeError) -> Self {
        KernelError::Tensor(e)
    }
}

impl From<FusedError> for KernelError {
    fn from(e: FusedError) -> Self {
        KernelError::Fused(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KernelError::Shape {
            what: "vertex".into(),
            expected: (10, 32),
            got: (10, 16),
        };
        let s = e.to_string();
        assert!(s.contains("vertex") && s.contains("32") && s.contains("16"));

        assert!(KernelError::MissingInput { what: "edge" }
            .to_string()
            .contains("edge"));
        assert!(KernelError::ParamCount {
            expected: 1,
            got: 0
        }
        .to_string()
        .contains('1'));
        assert!(KernelError::BadSchedule("x".into()).to_string().contains('x'));
    }

    #[test]
    fn conversions() {
        let ue = UdfError::EmptyOutput;
        let ke: KernelError = ue.into();
        assert!(matches!(ke, KernelError::Udf(_)));
        let se = ShapeError::ZeroDim { axis: "cols" };
        let ke: KernelError = se.into();
        assert!(matches!(ke, KernelError::Tensor(_)));
    }
}
