//! Kernel input bundles and shape validation.

use fg_ir::Udf;
use fg_tensor::{Dense2, Scalar};

use crate::error::KernelError;

/// The tensors a kernel reads: the vertex feature matrix `X_V`, an optional
/// edge feature matrix `X_E` (row `eid` is the edge's feature), and the UDF's
/// parameter matrices (e.g. MLP weights), in declaration order.
#[derive(Clone, Copy)]
pub struct GraphTensors<'a, S> {
    /// Vertex features read by `Src(...)` leaves, `|V| × d_v`.
    pub vertex: &'a Dense2<S>,
    /// Vertex features read by `Dst(...)` leaves. `None` means destination
    /// reads come from `vertex` too (the paper's single-`X_V` interface);
    /// gradient kernels set it to a different tensor (e.g. `∂L/∂H`).
    pub vertex_dst: Option<&'a Dense2<S>>,
    /// Edge features, `|E| × d_e` (canonical edge order).
    pub edge: Option<&'a Dense2<S>>,
    /// Parameter matrices in UDF declaration order.
    pub params: &'a [&'a Dense2<S>],
}

impl<'a, S: Scalar> GraphTensors<'a, S> {
    /// Inputs with vertex features only (most kernels).
    pub fn vertex_only(vertex: &'a Dense2<S>) -> Self {
        Self {
            vertex,
            vertex_dst: None,
            edge: None,
            params: &[],
        }
    }

    /// Inputs with vertex features and parameters.
    pub fn with_params(vertex: &'a Dense2<S>, params: &'a [&'a Dense2<S>]) -> Self {
        Self {
            vertex,
            vertex_dst: None,
            edge: None,
            params,
        }
    }

    /// Inputs with vertex and edge features.
    pub fn with_edge(vertex: &'a Dense2<S>, edge: &'a Dense2<S>) -> Self {
        Self {
            vertex,
            vertex_dst: None,
            edge: Some(edge),
            params: &[],
        }
    }

    /// Inputs with distinct source-side and destination-side vertex tensors
    /// (gradient kernels: grad(SpMM) is an SDDMM over `x` and `∂L/∂H`).
    pub fn src_dst(vertex: &'a Dense2<S>, vertex_dst: &'a Dense2<S>) -> Self {
        Self {
            vertex,
            vertex_dst: Some(vertex_dst),
            edge: None,
            params: &[],
        }
    }

    /// The tensor `Dst(...)` leaves read.
    pub fn dst_tensor(&self) -> &'a Dense2<S> {
        self.vertex_dst.unwrap_or(self.vertex)
    }

    /// Validate shapes against a UDF and graph sizes; `out_rows` is `|V|` for
    /// SpMM and `|E|` for SDDMM.
    pub fn validate(
        &self,
        udf: &Udf,
        num_vertices: usize,
        num_edges: usize,
        out: &Dense2<S>,
        out_rows: usize,
    ) -> Result<(), KernelError> {
        self.validate_operands(udf, num_vertices, num_edges)?;
        if out.shape() != (out_rows, udf.out_len) {
            return Err(KernelError::Shape {
                what: "out".into(),
                expected: (out_rows, udf.out_len),
                got: out.shape(),
            });
        }
        Ok(())
    }

    /// Operand-shape validation without an output tensor — used for UDFs
    /// whose output is never materialized (the score half of a fused
    /// operator).
    pub fn validate_operands(
        &self,
        udf: &Udf,
        num_vertices: usize,
        num_edges: usize,
    ) -> Result<(), KernelError> {
        let needs_src = udf.src_len > 0 && udf.body.reads_src();
        let needs_dst = udf.dst_len > 0 && udf.body.reads_dst();
        if needs_src || (needs_dst && self.vertex_dst.is_none()) {
            let want_cols = if needs_src { udf.src_len } else { udf.dst_len };
            if self.vertex.rows() != num_vertices || self.vertex.cols() < want_cols {
                return Err(KernelError::Shape {
                    what: "vertex".into(),
                    expected: (num_vertices, want_cols),
                    got: self.vertex.shape(),
                });
            }
        }
        if needs_dst {
            let xd = self.dst_tensor();
            if xd.rows() != num_vertices || xd.cols() < udf.dst_len {
                return Err(KernelError::Shape {
                    what: "vertex_dst".into(),
                    expected: (num_vertices, udf.dst_len),
                    got: xd.shape(),
                });
            }
        }
        if udf.edge_len > 0 && udf.body.reads_edge() {
            let Some(e) = self.edge else {
                return Err(KernelError::MissingInput { what: "edge" });
            };
            if e.rows() != num_edges || e.cols() < udf.edge_len {
                return Err(KernelError::Shape {
                    what: "edge".into(),
                    expected: (num_edges, udf.edge_len),
                    got: e.shape(),
                });
            }
        }
        if self.params.len() != udf.params.len() {
            return Err(KernelError::ParamCount {
                expected: udf.params.len(),
                got: self.params.len(),
            });
        }
        for (k, (&p, shape)) in self.params.iter().zip(&udf.params).enumerate() {
            if p.shape() != (shape.rows, shape.cols) {
                return Err(KernelError::Shape {
                    what: format!("param {k}"),
                    expected: (shape.rows, shape.cols),
                    got: p.shape(),
                });
            }
        }
        Ok(())
    }
}

/// Inputs to a fused SDDMM → (softmax) → SpMM kernel: the score and message
/// UDFs read *separate* operand bundles (a GAT score reads `|V| × 1`
/// projections while the message reads the `|V| × d` features).
#[derive(Clone, Copy)]
pub struct FusedInputs<'a, S> {
    /// Operands of the score UDF.
    pub score: GraphTensors<'a, S>,
    /// Operands of the message UDF.
    pub message: GraphTensors<'a, S>,
}

impl<S: Scalar> FusedInputs<'_, S> {
    /// Validate both operand bundles and the output (`|V| × message.out_len`).
    pub fn validate(
        &self,
        op: &fg_ir::FusedOp,
        num_vertices: usize,
        num_edges: usize,
        out: &Dense2<S>,
    ) -> Result<(), KernelError> {
        self.score
            .validate_operands(&op.score, num_vertices, num_edges)?;
        self.message
            .validate(&op.message, num_vertices, num_edges, out, num_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_ir::Udf;

    #[test]
    fn valid_inputs_pass() {
        let x = Dense2::<f32>::zeros(10, 16);
        let out = Dense2::<f32>::zeros(10, 16);
        let udf = Udf::copy_src(16);
        GraphTensors::vertex_only(&x)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap();
    }

    #[test]
    fn wrong_vertex_shape_rejected() {
        let x = Dense2::<f32>::zeros(10, 8);
        let out = Dense2::<f32>::zeros(10, 16);
        let udf = Udf::copy_src(16);
        let err = GraphTensors::vertex_only(&x)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap_err();
        assert!(matches!(err, KernelError::Shape { .. }));
    }

    #[test]
    fn missing_edge_tensor_rejected() {
        let x = Dense2::<f32>::zeros(10, 16);
        let out = Dense2::<f32>::zeros(10, 16);
        let udf = Udf::src_mul_edge(16);
        let err = GraphTensors::vertex_only(&x)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap_err();
        assert_eq!(err, KernelError::MissingInput { what: "edge" });
    }

    #[test]
    fn edge_tensor_row_count_must_match_edges() {
        let x = Dense2::<f32>::zeros(10, 16);
        let e = Dense2::<f32>::zeros(39, 16);
        let out = Dense2::<f32>::zeros(10, 16);
        let udf = Udf::src_mul_edge(16);
        let err = GraphTensors::with_edge(&x, &e)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap_err();
        assert!(matches!(err, KernelError::Shape { .. }));
    }

    #[test]
    fn param_count_and_shape_checked() {
        let x = Dense2::<f32>::zeros(10, 8);
        let out = Dense2::<f32>::zeros(10, 4);
        let udf = Udf::mlp(8, 4);
        // missing param
        let err = GraphTensors::vertex_only(&x)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap_err();
        assert_eq!(err, KernelError::ParamCount { expected: 1, got: 0 });
        // wrong shape param
        let w = Dense2::<f32>::zeros(8, 5);
        let params = [&w];
        let err = GraphTensors::with_params(&x, &params)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap_err();
        assert!(matches!(err, KernelError::Shape { .. }));
        // correct
        let w = Dense2::<f32>::zeros(8, 4);
        let params = [&w];
        GraphTensors::with_params(&x, &params)
            .validate(&udf, 10, 40, &out, 10)
            .unwrap();
    }

    #[test]
    fn out_shape_checked_for_sddmm_rows() {
        let x = Dense2::<f32>::zeros(10, 16);
        let out = Dense2::<f32>::zeros(10, 1); // should be |E| rows
        let udf = Udf::dot(16);
        let err = GraphTensors::vertex_only(&x)
            .validate(&udf, 10, 40, &out, 40)
            .unwrap_err();
        assert!(matches!(err, KernelError::Shape { .. }));
    }
}
