//! GPU generalized SDDMM template (edge-parallel).

use fg_gpusim::{launch, BlockCtx, DeviceConfig, GpuKernel};
use fg_graph::{Graph, VId};
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::{Fds, KernelPattern, Udf};
use fg_telemetry::{counter_add, span, Counter};
use fg_tensor::Dense2;

use crate::error::KernelError;
use crate::inputs::GraphTensors;
use crate::RunStats;

const F32: usize = std::mem::size_of::<f32>();

/// Template-level options for the GPU SDDMM kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSddmmOptions {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Edges per block.
    pub edges_per_block: usize,
}

impl Default for GpuSddmmOptions {
    fn default() -> Self {
        Self {
            device: DeviceConfig::v100(),
            edges_per_block: 256,
        }
    }
}

/// A compiled GPU generalized-SDDMM kernel.
pub struct GpuSddmm {
    udf: Udf,
    fds: Fds,
    pattern: KernelPattern,
    /// `(src, dst)` per canonical edge ID.
    edges: Vec<(VId, VId)>,
    num_vertices: usize,
    opts: GpuSddmmOptions,
}

impl GpuSddmm {
    /// Validate and build the plan.
    pub fn compile(
        graph: &Graph,
        udf: &Udf,
        fds: &Fds,
        opts: &GpuSddmmOptions,
    ) -> Result<Self, KernelError> {
        udf.validate()?;
        if opts.edges_per_block == 0 {
            return Err(KernelError::BadSchedule("edges_per_block must be >= 1".into()));
        }
        if fds.gpu.threads_per_block == 0
            || fds.gpu.threads_per_block > opts.device.max_threads_per_sm
        {
            return Err(KernelError::BadSchedule(format!(
                "threads_per_block {} out of range",
                fds.gpu.threads_per_block
            )));
        }
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            udf: udf.clone(),
            fds: *fds,
            pattern: KernelPattern::of(udf),
            edges: graph.edge_list(),
            num_vertices: graph.num_vertices(),
            opts: *opts,
        })
    }

    /// The recognized kernel pattern.
    pub fn pattern(&self) -> KernelPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (the gathered edge list).
    pub fn mem_bytes(&self) -> u64 {
        (self.edges.len() * std::mem::size_of::<(VId, VId)>()) as u64
    }

    /// Execute on the simulator.
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.udf, self.num_vertices, self.edges.len(), out, self.edges.len())?;
        let _run_span = span!(
            "gpu/sddmm/run",
            "pattern={:?} d={} grid={} tree={}",
            self.pattern,
            self.udf.red_len(),
            self.grid_dim(),
            self.fds.gpu.tree_reduce
        );
        counter_add(Counter::EdgesProcessed, self.edges.len() as u64);
        if self.fds.gpu.tree_reduce {
            // depth of the log₂ combine tree over the reduce axis (Fig. 7b)
            let d = self.udf.red_len().max(1);
            counter_add(
                Counter::TreeReductionDepth,
                u64::from(usize::BITS - (d - 1).leading_zeros()),
            );
        }
        let report = match self.pattern {
            KernelPattern::Dot | KernelPattern::MultiHeadDot { .. } => {
                let mut kernel = DotKernel {
                    plan: self,
                    x: inputs.vertex,
                    xd: inputs.dst_tensor(),
                    out,
                };
                launch(&self.opts.device, &mut kernel)
            }
            _ => {
                let mut kernel = GenericKernel {
                    plan: self,
                    inputs,
                    out,
                };
                launch(&self.opts.device, &mut kernel)
            }
        };
        Ok(RunStats {
            gpu_time_ms: Some(report.time_ms),
            gpu_launches: vec![report],
        })
    }

    fn grid_dim(&self) -> usize {
        self.edges.len().div_ceil(self.opts.edges_per_block).max(1)
    }

    fn block_edges(&self, block: usize) -> std::ops::Range<usize> {
        let lo = block * self.opts.edges_per_block;
        let hi = (lo + self.opts.edges_per_block).min(self.edges.len());
        lo..hi
    }
}

/// Fused (multi-head) dot-product attention.
///
/// With `fds.gpu.tree_reduce`, the block's threads cooperate on each dot via
/// a `log₂`-depth tree (Fig. 7b): low register pressure, shared-memory
/// traffic for the reduction. Without it, each thread computes a full dot
/// serially in registers — the Fig. 12 ablation — which inflates
/// `regs_per_thread` and therefore costs occupancy.
struct DotKernel<'a> {
    plan: &'a GpuSddmm,
    x: &'a Dense2<f32>,
    xd: &'a Dense2<f32>,
    out: &'a mut Dense2<f32>,
}

impl GpuKernel for DotKernel<'_> {
    fn name(&self) -> &'static str {
        "fg-sddmm-dot"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.fds.gpu.threads_per_block
    }
    fn shared_mem_bytes(&self) -> usize {
        if self.plan.fds.gpu.tree_reduce {
            self.plan.fds.gpu.threads_per_block * F32
        } else {
            0
        }
    }
    fn regs_per_thread(&self) -> usize {
        if self.plan.fds.gpu.tree_reduce {
            32
        } else {
            // Serial per-thread dot: accumulator chain + unrolled loads.
            // Grows with the feature length until the compiler spills —
            // the register-pressure effect the paper cites for Fig. 12.
            (40 + self.plan.udf.red_len() / 4).min(168)
        }
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let d = plan.udf.red_len();
        let heads = plan.udf.out_len; // 1 for plain dot
        let range = plan.block_edges(block);
        let tpb = plan.fds.gpu.threads_per_block as u64;
        let tree = plan.fds.gpu.tree_reduce;

        // edge endpoint indices, coalesced
        ctx.global_contiguous(range.start * 2, range.len() * 2, std::mem::size_of::<VId>());

        for eid in range.clone() {
            let (src, dst) = plan.edges[eid];
            let srow = self.x.row(src as usize);
            let drow = self.xd.row(dst as usize);
            ctx.global_contiguous(src as usize * heads * d, heads * d, F32);
            ctx.global_contiguous(dst as usize * heads * d, heads * d, F32);
            let orow = self.out.row_mut(eid);
            for (h, o) in orow.iter_mut().enumerate() {
                let a = &srow[h * d..(h + 1) * d];
                let b = &drow[h * d..(h + 1) * d];
                *o = a.iter().zip(b).map(|(&p, &q)| p * q).sum();
            }
            if tree {
                // lane multiplies + warp-synchronous tree combine: shuffles
                // within warps, one shared-memory exchange across warps
                ctx.alu((2 * heads * d) as u64);
                ctx.alu(heads as u64 * (64 - u64::from((d as u64).leading_zeros())));
                ctx.shared(heads as u64 * (tpb / 32).max(1) * 2);
            } else {
                // one thread per edge: d lockstep iterations per warp
                ctx.warp_exec(32, (2 * heads * d) as u64 / 32 + 1);
            }
        }
        if tree {
            ctx.barrier();
        }
        // coalesced write of the block's contiguous output rows
        ctx.global_contiguous(range.start * heads, range.len() * heads, F32);
    }
}

/// Interpreter fallback: arbitrary edge UDFs, serialized per thread.
struct GenericKernel<'a, 'b> {
    plan: &'a GpuSddmm,
    inputs: &'a GraphTensors<'b, f32>,
    out: &'a mut Dense2<f32>,
}

impl GpuKernel for GenericKernel<'_, '_> {
    fn name(&self) -> &'static str {
        "fg-sddmm-generic"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.fds.gpu.threads_per_block
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let udf = &plan.udf;
        let range = plan.block_edges(block);
        let empty: [f32; 0] = [];
        let flops = udf.flops_per_edge() as u64;

        ctx.global_contiguous(range.start * 2, range.len() * 2, std::mem::size_of::<VId>());
        for eid in range.clone() {
            let (src, dst) = plan.edges[eid];
            if udf.src_len > 0 {
                ctx.global_contiguous(src as usize * udf.src_len, udf.src_len, F32);
            }
            if udf.dst_len > 0 {
                ctx.global_contiguous(dst as usize * udf.dst_len, udf.dst_len, F32);
            }
            if udf.edge_len > 0 {
                ctx.global_contiguous(eid * udf.edge_len, udf.edge_len, F32);
            }
            let ectx = EdgeCtx {
                src: if udf.src_len > 0 { self.inputs.vertex.row(src as usize) } else { &empty },
                dst: if udf.dst_len > 0 {
                    self.inputs.dst_tensor().row(dst as usize)
                } else {
                    &empty
                },
                edge: match self.inputs.edge {
                    Some(e) if udf.edge_len > 0 => e.row(eid),
                    _ => &empty,
                },
            };
            let orow = self.out.row_mut(eid);
            eval_udf(udf, &ectx, self.inputs.params, orow, |slot, v| *slot = v);
            ctx.warp_exec(1, flops);
        }
        ctx.global_contiguous(range.start * udf.out_len, range.len() * udf.out_len, F32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sddmm_reference;
    use fg_graph::generators;

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 13 + i * 5) % 17) as f32 * 0.125 - 1.0)
    }

    fn check(
        g: &Graph,
        udf: &Udf,
        inputs: &GraphTensors<'_, f32>,
        fds: &Fds,
        opts: &GpuSddmmOptions,
    ) -> RunStats {
        let k = GpuSddmm::compile(g, udf, fds, opts).unwrap();
        let mut out = Dense2::zeros(g.num_edges(), udf.out_len);
        let stats = k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_edges(), udf.out_len);
        sddmm_reference(g, udf, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch {} ({:?})",
            out.max_abs_diff(&want),
            k.pattern()
        );
        stats
    }

    #[test]
    fn dot_attention_with_and_without_tree_reduction() {
        let g = generators::uniform(200, 6, 5);
        let x = features(200, 128);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::dot(128);
        let tree = check(&g, &udf, &inputs, &Fds::gpu_tree_reduce(64), &GpuSddmmOptions::default());
        let mut no_tree_fds = Fds::gpu_tree_reduce(64);
        no_tree_fds.gpu.tree_reduce = false;
        let serial = check(&g, &udf, &inputs, &no_tree_fds, &GpuSddmmOptions::default());
        // tree reduction wins at large feature lengths (Fig. 12 shape)
        assert!(
            tree.gpu_time_ms.unwrap() < serial.gpu_time_ms.unwrap(),
            "tree {} vs serial {}",
            tree.gpu_time_ms.unwrap(),
            serial.gpu_time_ms.unwrap()
        );
    }

    #[test]
    fn multi_head_dot_matches_reference() {
        let g = generators::uniform(100, 4, 3);
        let x = features(100, 4 * 16);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::multi_head_dot(4, 16);
        check(&g, &udf, &inputs, &Fds::gpu_tree_reduce(64), &GpuSddmmOptions::default());
    }

    #[test]
    fn generic_edge_udf_on_gpu() {
        use fg_ir::ScalarExpr;
        let g = generators::uniform(50, 3, 8);
        let x = features(50, 6);
        let xe = features(g.num_edges(), 6);
        let inputs = GraphTensors::with_edge(&x, &xe);
        let udf = Udf {
            out_len: 6,
            src_len: 6,
            dst_len: 6,
            edge_len: 6,
            reduce: None,
            params: vec![],
            body: ScalarExpr::src_i()
                .add(ScalarExpr::edge_i())
                .mul(ScalarExpr::dst_i()),
            post_relu: false,
        };
        check(&g, &udf, &inputs, &Fds::gpu_thread_x(32), &GpuSddmmOptions::default());
    }

    #[test]
    fn schedule_validation() {
        let g = generators::uniform(10, 2, 1);
        let udf = Udf::dot(4);
        let bad = GpuSddmmOptions {
            edges_per_block: 0,
            ..Default::default()
        };
        assert!(matches!(
            GpuSddmm::compile(&g, &udf, &Fds::default(), &bad),
            Err(KernelError::BadSchedule(_))
        ));
    }

    #[test]
    fn empty_graph_launch() {
        let g = Graph::from_edges(4, &[]);
        let x = features(4, 8);
        let udf = Udf::dot(8);
        let k = GpuSddmm::compile(&g, &udf, &Fds::gpu_tree_reduce(32), &GpuSddmmOptions::default()).unwrap();
        let mut out = Dense2::zeros(0, 1);
        let stats = k.run(&GraphTensors::vertex_only(&x), &mut out).unwrap();
        assert!(stats.gpu_time_ms.unwrap() > 0.0); // launch overhead only
    }
}
