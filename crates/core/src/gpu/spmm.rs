//! GPU generalized SpMM template (vertex-parallel, feature-thread binding).

use fg_gpusim::{launch, BlockCtx, DeviceConfig, GpuKernel};
use fg_graph::{Csr, Graph, VId};
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::pattern::ElemOp;
use fg_ir::{Fds, GpuBind, KernelPattern, Reducer, Udf};
use fg_telemetry::{counter_add, span, Counter};
use fg_tensor::Dense2;

use crate::error::KernelError;
use crate::inputs::GraphTensors;
use crate::RunStats;

const F32: usize = std::mem::size_of::<f32>();

/// Hybrid (degree-split) partitioning options (§III-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridOptions {
    /// Source vertices with out-degree `>= degree_threshold` are staged in
    /// shared memory.
    pub degree_threshold: usize,
    /// Shared-memory budget per block for staged rows (default 48 KB, the
    /// V100 default carve-out).
    pub shared_budget_bytes: usize,
}

impl Default for HybridOptions {
    fn default() -> Self {
        Self {
            degree_threshold: 1000,
            // 24 KB keeps 4 blocks resident per SM (96 KB carve-out), so
            // staging never starves occupancy
            shared_budget_bytes: 24 * 1024,
        }
    }
}

/// Template-level options for the GPU SpMM kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpmmOptions {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Destination rows per block. The grid is `ceil(|V| / rows_per_block)`;
    /// Fig. 15 sweeps this via [`GpuSpmmOptions::with_num_blocks`].
    pub rows_per_block: usize,
    /// Hybrid partitioning (None = off).
    pub hybrid: Option<HybridOptions>,
}

impl Default for GpuSpmmOptions {
    fn default() -> Self {
        Self {
            device: DeviceConfig::v100(),
            rows_per_block: 1,
            hybrid: None,
        }
    }
}

impl GpuSpmmOptions {
    /// Configure the launch to use (approximately) `blocks` blocks, as in
    /// the Fig. 15 sweep.
    pub fn with_num_blocks(graph: &Graph, blocks: usize) -> Self {
        Self {
            rows_per_block: graph.num_vertices().div_ceil(blocks.max(1)).max(1),
            ..Self::default()
        }
    }
}

/// A compiled GPU generalized-SpMM kernel.
pub struct GpuSpmm {
    udf: Udf,
    agg: Reducer,
    fds: Fds,
    pattern: KernelPattern,
    csr: Csr,
    eid_is_position: bool,
    degrees: Vec<u32>,
    /// For hybrid: out-degree per source vertex.
    out_degrees: Vec<u32>,
    num_vertices: usize,
    num_edges: usize,
    opts: GpuSpmmOptions,
}

impl GpuSpmm {
    /// Validate and build the plan.
    pub fn compile(
        graph: &Graph,
        udf: &Udf,
        agg: Reducer,
        fds: &Fds,
        opts: &GpuSpmmOptions,
    ) -> Result<Self, KernelError> {
        udf.validate()?;
        if opts.rows_per_block == 0 {
            return Err(KernelError::BadSchedule("rows_per_block must be >= 1".into()));
        }
        if fds.gpu.threads_per_block == 0
            || fds.gpu.threads_per_block > opts.device.max_threads_per_sm
        {
            return Err(KernelError::BadSchedule(format!(
                "threads_per_block {} out of range",
                fds.gpu.threads_per_block
            )));
        }
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            udf: udf.clone(),
            agg,
            fds: *fds,
            pattern: KernelPattern::of(udf),
            csr: graph.in_csr().clone(),
            eid_is_position: true,
            degrees: (0..graph.num_vertices() as VId)
                .map(|v| graph.in_degree(v) as u32)
                .collect(),
            out_degrees: (0..graph.num_vertices() as VId)
                .map(|v| graph.out_degree(v) as u32)
                .collect(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            opts: *opts,
        })
    }

    /// The recognized kernel pattern.
    pub fn pattern(&self) -> KernelPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (CSR copy + degree arrays).
    pub fn mem_bytes(&self) -> u64 {
        self.csr.mem_bytes()
            + ((self.degrees.len() + self.out_degrees.len()) * std::mem::size_of::<u32>()) as u64
    }

    /// Execute on the simulator; `RunStats::gpu_time_ms` carries the
    /// simulated time.
    pub fn run(
        &self,
        inputs: &GraphTensors<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.udf, self.num_vertices, self.num_edges, out, self.num_vertices)?;
        debug_assert!(self.eid_is_position);

        let _run_span = span!(
            "gpu/spmm/run",
            "pattern={:?} d={} grid={} tpb={}",
            self.pattern,
            self.udf.out_len,
            self.grid_dim(),
            self.fds.gpu.threads_per_block
        );
        counter_add(Counter::EdgesProcessed, self.num_edges as u64);

        let report = match self.pattern {
            KernelPattern::CopySrc
            | KernelPattern::CopyEdge
            | KernelPattern::SrcOpDst(_)
            | KernelPattern::SrcOpEdge(_)
            | KernelPattern::SrcMulEdgeScalar => {
                let mut kernel = ElemwiseKernel {
                    plan: self,
                    x: inputs.vertex,
                    xd: inputs.dst_tensor(),
                    xe: inputs.edge,
                    out,
                    kind: self.pattern,
                };
                launch(&self.opts.device, &mut kernel)
            }
            KernelPattern::MlpSrcDst => {
                let mut kernel = MlpKernel {
                    plan: self,
                    x: inputs.vertex,
                    xd: inputs.dst_tensor(),
                    w: inputs.params[0],
                    out,
                };
                launch(&self.opts.device, &mut kernel)
            }
            _ => {
                let mut kernel = GenericKernel {
                    plan: self,
                    inputs,
                    out,
                };
                launch(&self.opts.device, &mut kernel)
            }
        };
        Ok(RunStats {
            gpu_time_ms: Some(report.time_ms),
            gpu_launches: vec![report],
        })
    }

    fn grid_dim(&self) -> usize {
        self.num_vertices.div_ceil(self.opts.rows_per_block).max(1)
    }

    fn block_rows(&self, block: usize) -> std::ops::Range<usize> {
        let lo = block * self.opts.rows_per_block;
        let hi = (lo + self.opts.rows_per_block).min(self.num_vertices);
        lo..hi
    }

    /// Rows of staged sources per hybrid stage, given the feature width.
    fn hybrid_rows_per_stage(&self, d: usize) -> usize {
        let h = self.opts.hybrid.expect("hybrid only");
        (h.shared_budget_bytes / (d * F32).max(1)).max(1)
    }
}

/// Account the read of one source-feature row, staging-aware. Returns true
/// if served from shared memory.
#[inline]
fn account_row_read(
    plan: &GpuSpmm,
    ctx: &mut BlockCtx<'_>,
    src: VId,
    d: usize,
    staged: Option<&[VId]>,
    coalesced: bool,
) -> bool {
    if let (Some(h), Some(staged)) = (plan.opts.hybrid, staged) {
        if plan.out_degrees[src as usize] as usize >= h.degree_threshold
            && staged.binary_search(&src).is_ok()
        {
            ctx.shared(d as u64);
            return true;
        }
    }
    if coalesced {
        // feature axis bound to thread.x: warp lanes read consecutive
        // elements of the row (Fig. 7a)
        ctx.global_contiguous(src as usize * d, d, F32);
    } else {
        // feature-dimension-blind: each thread walks a different row, so
        // concurrent lanes touch unrelated addresses
        ctx.global_scattered(d, F32);
    }
    false
}

/// Shared accounting for the start of a block: index reads.
#[inline]
fn account_index_reads(plan: &GpuSpmm, ctx: &mut BlockCtx<'_>, rows: &std::ops::Range<usize>) {
    let start = plan.csr.row_start(rows.start as VId);
    let end = plan.csr.row_start(rows.end as VId);
    // indptr entries + column indices for the whole block, coalesced.
    ctx.global_contiguous(rows.start, rows.len() + 1, std::mem::size_of::<usize>());
    ctx.global_contiguous(start, end - start, std::mem::size_of::<VId>());
}

/// Hybrid staging for a block: determine staged source set, account the
/// stage loads and merge overhead. Returns the sorted staged sources
/// (empty when hybrid is off).
fn account_hybrid_staging(
    plan: &GpuSpmm,
    ctx: &mut BlockCtx<'_>,
    rows: &std::ops::Range<usize>,
    d: usize,
) -> Vec<VId> {
    let Some(h) = plan.opts.hybrid else {
        return Vec::new();
    };
    // Distinct high-degree sources feeding this block.
    let mut high: Vec<VId> = Vec::new();
    for dst in rows.clone() {
        for &src in plan.csr.row(dst as VId) {
            if plan.out_degrees[src as usize] as usize >= h.degree_threshold {
                high.push(src);
            }
        }
    }
    high.sort_unstable();
    high.dedup();
    if high.is_empty() {
        return high;
    }
    let per_stage = plan.hybrid_rows_per_stage(d);
    let stages = high.len().div_ceil(per_stage);
    ctx.alloc_shared((per_stage.min(high.len()) * d * F32).min(h.shared_budget_bytes));
    // Stage loads: each staged row read from global once, written to shared.
    for &src in &high {
        ctx.global_contiguous(src as usize * d, d, F32);
        ctx.shared(d as u64);
    }
    ctx.barrier();
    // Merge overhead: each extra stage re-reads and re-writes the block's
    // output accumulators (the Fig. 6 merge cost, on GPU).
    if stages > 1 {
        let merge_elems = rows.len() * d;
        for _ in 1..stages {
            ctx.global_contiguous(rows.start * d, merge_elems, F32);
            ctx.global_contiguous(rows.start * d, merge_elems, F32);
            ctx.barrier();
        }
    }
    high
}

/// Fused element-wise SpMM (copy/add/mul/sub messages).
struct ElemwiseKernel<'a> {
    plan: &'a GpuSpmm,
    x: &'a Dense2<f32>,
    xd: &'a Dense2<f32>,
    xe: Option<&'a Dense2<f32>>,
    out: &'a mut Dense2<f32>,
    kind: KernelPattern,
}

impl GpuKernel for ElemwiseKernel<'_> {
    fn name(&self) -> &'static str {
        "fg-spmm-elemwise"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.fds.gpu.threads_per_block
    }
    fn shared_mem_bytes(&self) -> usize {
        match self.plan.opts.hybrid {
            Some(h) => {
                let d = self.plan.udf.out_len;
                (self.plan.hybrid_rows_per_stage(d) * d * F32).min(h.shared_budget_bytes)
            }
            None => 0,
        }
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let d = plan.udf.out_len;
        let rows = plan.block_rows(block);
        let feature_parallel = plan.fds.gpu.bind_out != GpuBind::None;

        account_index_reads(plan, ctx, &rows);
        let staged = account_hybrid_staging(plan, ctx, &rows, d);
        let staged_opt = (!staged.is_empty()).then_some(staged.as_slice());

        let mut acc = vec![0.0f32; d];
        for dst in rows {
            let dst = dst as VId;
            let srcs = plan.csr.row(dst);
            let base = plan.csr.row_start(dst);
            acc.fill(plan.agg.identity());
            for (i, &src) in srcs.iter().enumerate() {
                let eid = (base + i) as u32;
                // functional message + ALU/memory accounting
                match self.kind {
                    KernelPattern::CopySrc => {
                        account_row_read(plan, ctx, src, d, staged_opt, feature_parallel);
                        combine(plan.agg, &mut acc, self.x.row(src as usize), |v| v);
                    }
                    KernelPattern::CopyEdge => {
                        let xe = self.xe.expect("validated");
                        ctx.global_contiguous(eid as usize * d, d, F32);
                        combine(plan.agg, &mut acc, xe.row(eid as usize), |v| v);
                    }
                    KernelPattern::SrcMulEdgeScalar => {
                        let xe = self.xe.expect("validated");
                        account_row_read(plan, ctx, src, d, staged_opt, feature_parallel);
                        ctx.global_contiguous(eid as usize, 1, F32);
                        let wscalar = xe.at(eid as usize, 0);
                        combine(plan.agg, &mut acc, self.x.row(src as usize), |v| v * wscalar);
                        ctx.alu(d as u64);
                    }
                    KernelPattern::SrcOpDst(op) => {
                        account_row_read(plan, ctx, src, d, staged_opt, feature_parallel);
                        ctx.global_contiguous(dst as usize * d, d, F32);
                        let drow = self.xd.row(dst as usize);
                        combine2(plan.agg, op, &mut acc, self.x.row(src as usize), drow);
                        ctx.alu(d as u64);
                    }
                    KernelPattern::SrcOpEdge(op) => {
                        let xe = self.xe.expect("validated");
                        account_row_read(plan, ctx, src, d, staged_opt, feature_parallel);
                        ctx.global_contiguous(eid as usize * d, d, F32);
                        combine2(plan.agg, op, &mut acc, self.x.row(src as usize), xe.row(eid as usize));
                        ctx.alu(d as u64);
                    }
                    _ => unreachable!("elemwise kernel on non-elemwise pattern"),
                }
                if feature_parallel {
                    ctx.alu(d as u64); // the aggregation combine, one lane per element
                } else {
                    // feature-dimension-blind: one thread walks the row
                    ctx.warp_exec(1, d as u64);
                }
            }
            let deg = plan.degrees[dst as usize] as usize;
            let orow = self.out.row_mut(dst as usize);
            for (o, &a) in orow.iter_mut().zip(&acc) {
                *o = plan.agg.finalize(a, deg);
            }
            ctx.global_contiguous(dst as usize * d, d, F32);
        }
    }
}

/// Fused MLP-aggregation SpMM (Fig. 9 schedule: output axis on blocks/
/// threads, reduce axis in-thread).
struct MlpKernel<'a> {
    plan: &'a GpuSpmm,
    x: &'a Dense2<f32>,
    xd: &'a Dense2<f32>,
    w: &'a Dense2<f32>,
    out: &'a mut Dense2<f32>,
}

impl GpuKernel for MlpKernel<'_> {
    fn name(&self) -> &'static str {
        "fg-spmm-mlp"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.fds.gpu.threads_per_block
    }
    fn shared_mem_bytes(&self) -> usize {
        // the shared tile holding src+dst sums (d1 floats)
        self.plan.udf.red_len() * F32
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let d1 = plan.udf.red_len();
        let d2 = plan.udf.out_len;
        let rows = plan.block_rows(block);
        let feature_parallel = plan.fds.gpu.bind_out != GpuBind::None;

        account_index_reads(plan, ctx, &rows);
        ctx.alloc_shared(d1 * F32);
        // Weight matrix is re-read per block (resident in L2 on real
        // hardware; charged once per block here).
        ctx.global_contiguous(0, d1 * d2, F32);

        let mut tmp = vec![0.0f32; d1];
        let mut acc = vec![0.0f32; d2];
        for dst in rows {
            let dst = dst as VId;
            let srcs = plan.csr.row(dst);
            acc.fill(plan.agg.identity());
            let drow = self.xd.row(dst as usize);
            ctx.global_contiguous(dst as usize * d1, d1, F32);
            for &src in srcs {
                ctx.global_contiguous(src as usize * d1, d1, F32);
                let srow = self.x.row(src as usize);
                for ((t, &a), &b) in tmp.iter_mut().zip(srow).zip(drow) {
                    *t = a + b;
                }
                ctx.alu(d1 as u64);
                ctx.shared(d1 as u64); // stage tmp
                ctx.barrier();
                // dense (1×d1)·(d1×d2): every element of W used once
                for (i, a) in acc.iter_mut().enumerate() {
                    let mut s = 0.0f32;
                    for (k, &t) in tmp.iter().enumerate() {
                        s += t * self.w.at(k, i);
                    }
                    let m = s.max(0.0);
                    *a = plan.agg.combine(*a, m);
                }
                if feature_parallel {
                    ctx.alu((2 * d1 * d2 + d2) as u64);
                    ctx.shared((d1 * d2) as u64); // tmp re-reads from shared
                } else {
                    ctx.warp_exec(1, (2 * d1 * d2) as u64);
                }
            }
            let deg = plan.degrees[dst as usize] as usize;
            let orow = self.out.row_mut(dst as usize);
            for (o, &a) in orow.iter_mut().zip(&acc) {
                *o = plan.agg.finalize(a, deg);
            }
            ctx.global_contiguous(dst as usize * d2, d2, F32);
        }
    }
}

/// Interpreter fallback on GPU: per-edge UDF evaluation, serialized per
/// thread (the cost a blackbox-UDF system pays).
struct GenericKernel<'a, 'b> {
    plan: &'a GpuSpmm,
    inputs: &'a GraphTensors<'b, f32>,
    out: &'a mut Dense2<f32>,
}

impl GpuKernel for GenericKernel<'_, '_> {
    fn name(&self) -> &'static str {
        "fg-spmm-generic"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.fds.gpu.threads_per_block
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let udf = &plan.udf;
        let d = udf.out_len;
        let rows = plan.block_rows(block);
        let empty: [f32; 0] = [];
        account_index_reads(plan, ctx, &rows);

        let flops = udf.flops_per_edge() as u64;
        let mut acc = vec![0.0f32; d];
        for dst in rows {
            let dst = dst as VId;
            let srcs = plan.csr.row(dst);
            let base = plan.csr.row_start(dst);
            acc.fill(plan.agg.identity());
            for (i, &src) in srcs.iter().enumerate() {
                let eid = (base + i) as u32;
                if udf.src_len > 0 {
                    ctx.global_scattered(udf.src_len, F32);
                }
                if udf.dst_len > 0 {
                    ctx.global_scattered(udf.dst_len, F32);
                }
                if udf.edge_len > 0 {
                    ctx.global_scattered(udf.edge_len, F32);
                }
                let ectx = EdgeCtx {
                    src: if udf.src_len > 0 { self.inputs.vertex.row(src as usize) } else { &empty },
                    dst: if udf.dst_len > 0 {
                        self.inputs.dst_tensor().row(dst as usize)
                    } else {
                        &empty
                    },
                    edge: match self.inputs.edge {
                        Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                        _ => &empty,
                    },
                };
                let agg = plan.agg;
                eval_udf(udf, &ectx, self.inputs.params, &mut acc, |slot, v| {
                    *slot = agg.combine(*slot, v)
                });
                ctx.warp_exec(1, flops);
            }
            let deg = plan.degrees[dst as usize] as usize;
            let orow = self.out.row_mut(dst as usize);
            for (o, &a) in orow.iter_mut().zip(&acc) {
                *o = plan.agg.finalize(a, deg);
            }
            ctx.global_contiguous(dst as usize * d, d, F32);
        }
    }
}

#[inline(always)]
fn combine(agg: Reducer, acc: &mut [f32], msg: &[f32], f: impl Fn(f32) -> f32) {
    match agg {
        Reducer::Sum | Reducer::Mean => {
            for (a, &m) in acc.iter_mut().zip(msg) {
                *a += f(m);
            }
        }
        Reducer::Max => {
            for (a, &m) in acc.iter_mut().zip(msg) {
                let v = f(m);
                if v > *a {
                    *a = v;
                }
            }
        }
        Reducer::Min => {
            for (a, &m) in acc.iter_mut().zip(msg) {
                let v = f(m);
                if v < *a {
                    *a = v;
                }
            }
        }
    }
}

#[inline(always)]
fn combine2(agg: Reducer, op: ElemOp, acc: &mut [f32], a: &[f32], b: &[f32]) {
    let apply = |x: f32, y: f32| match op {
        ElemOp::Add => x + y,
        ElemOp::Mul => x * y,
        ElemOp::Sub => x - y,
    };
    match agg {
        Reducer::Sum | Reducer::Mean => {
            for ((s, &x), &y) in acc.iter_mut().zip(a).zip(b) {
                *s += apply(x, y);
            }
        }
        Reducer::Max => {
            for ((s, &x), &y) in acc.iter_mut().zip(a).zip(b) {
                let v = apply(x, y);
                if v > *s {
                    *s = v;
                }
            }
        }
        Reducer::Min => {
            for ((s, &x), &y) in acc.iter_mut().zip(a).zip(b) {
                let v = apply(x, y);
                if v < *s {
                    *s = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spmm_reference;
    use fg_graph::generators;

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 31 + i * 7) % 23) as f32 * 0.25 - 2.0)
    }

    fn check(
        g: &Graph,
        udf: &Udf,
        agg: Reducer,
        inputs: &GraphTensors<'_, f32>,
        fds: &Fds,
        opts: &GpuSpmmOptions,
    ) -> RunStats {
        let k = GpuSpmm::compile(g, udf, agg, fds, opts).unwrap();
        let mut out = Dense2::zeros(g.num_vertices(), udf.out_len);
        let stats = k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_vertices(), udf.out_len);
        spmm_reference(g, udf, agg, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch {} (pattern {:?})",
            out.max_abs_diff(&want),
            k.pattern()
        );
        stats
    }

    #[test]
    fn gpu_copy_src_matches_reference_and_reports_time() {
        let g = generators::uniform(300, 6, 5);
        let x = features(300, 32);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        let stats = check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &Fds::gpu_thread_x(32),
            &GpuSpmmOptions::default(),
        );
        assert!(stats.gpu_time_ms.unwrap() > 0.0);
        assert_eq!(stats.gpu_launches.len(), 1);
    }

    #[test]
    fn gpu_mean_and_max_aggregations() {
        let g = generators::uniform(100, 4, 2);
        let x = features(100, 16);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(16);
        for agg in [Reducer::Mean, Reducer::Max, Reducer::Min] {
            check(
                &g,
                &udf,
                agg,
                &inputs,
                &Fds::gpu_thread_x(32),
                &GpuSpmmOptions::default(),
            );
        }
    }

    #[test]
    fn gpu_mlp_matches_reference() {
        let g = generators::uniform(60, 4, 7);
        let x = features(60, 8);
        let w = Dense2::from_fn(8, 12, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.1 - 0.5);
        let params = [&w];
        let inputs = GraphTensors::with_params(&x, &params);
        let udf = Udf::mlp(8, 12);
        check(
            &g,
            &udf,
            Reducer::Max,
            &inputs,
            &Fds::gpu_block_tree(64),
            &GpuSpmmOptions::default(),
        );
    }

    #[test]
    fn gpu_generic_fallback() {
        use fg_ir::ScalarExpr;
        let g = generators::uniform(40, 3, 4);
        let x = features(40, 6);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf {
            out_len: 6,
            src_len: 6,
            dst_len: 6,
            edge_len: 0,
            reduce: None,
            params: vec![],
            body: ScalarExpr::Exp(Box::new(ScalarExpr::src_i().sub(ScalarExpr::dst_i()))),
            post_relu: false,
        };
        check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &Fds::gpu_thread_x(32),
            &GpuSpmmOptions::default(),
        );
    }

    #[test]
    fn hybrid_partitioning_is_functionally_transparent_and_cuts_traffic() {
        // two-tier graph: high-degree sources dominate reads
        let g = generators::two_tier(30, 100, 470, 4, 9);
        let x = features(500, 32);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        let fds = Fds::gpu_thread_x(32);

        let plain = GpuSpmmOptions {
            rows_per_block: 64,
            ..Default::default()
        };
        let hybrid = GpuSpmmOptions {
            rows_per_block: 64,
            hybrid: Some(HybridOptions {
                degree_threshold: 50,
                shared_budget_bytes: 48 * 1024,
            }),
            ..Default::default()
        };
        let sp = check(&g, &udf, Reducer::Sum, &inputs, &fds, &plain);
        let sh = check(&g, &udf, Reducer::Sum, &inputs, &fds, &hybrid);
        let tp = &sp.gpu_launches[0].tally;
        let th = &sh.gpu_launches[0].tally;
        assert!(
            th.global_transactions < tp.global_transactions,
            "hybrid {} vs plain {}",
            th.global_transactions,
            tp.global_transactions
        );
        assert!(th.shared_accesses > 0);
    }

    #[test]
    fn feature_blind_schedule_is_slower() {
        let g = generators::uniform(200, 8, 3);
        let x = features(200, 64);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(64);
        let fast = check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &Fds::gpu_thread_x(64),
            &GpuSpmmOptions::default(),
        );
        let blind = check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &Fds::default(), // GpuBind::None
            &GpuSpmmOptions::default(),
        );
        assert!(
            blind.gpu_time_ms.unwrap() > fast.gpu_time_ms.unwrap(),
            "blind {} fast {}",
            blind.gpu_time_ms.unwrap(),
            fast.gpu_time_ms.unwrap()
        );
    }

    #[test]
    fn fewer_blocks_is_slower_once_sms_starve() {
        let g = generators::uniform(4000, 8, 1);
        let x = features(4000, 32);
        let inputs = GraphTensors::vertex_only(&x);
        let udf = Udf::copy_src(32);
        let fds = Fds::gpu_thread_x(32);
        let many = check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &fds,
            &GpuSpmmOptions::with_num_blocks(&g, 4000),
        );
        let few = check(
            &g,
            &udf,
            Reducer::Sum,
            &inputs,
            &fds,
            &GpuSpmmOptions::with_num_blocks(&g, 8),
        );
        assert!(few.gpu_launches[0].sm_cycles > many.gpu_launches[0].sm_cycles);
    }

    #[test]
    fn schedule_validation() {
        let g = generators::uniform(10, 2, 1);
        let udf = Udf::copy_src(4);
        let bad = GpuSpmmOptions {
            rows_per_block: 0,
            ..Default::default()
        };
        assert!(matches!(
            GpuSpmm::compile(&g, &udf, Reducer::Sum, &Fds::default(), &bad),
            Err(KernelError::BadSchedule(_))
        ));
        let mut fds = Fds::gpu_thread_x(32);
        fds.gpu.threads_per_block = 100_000;
        assert!(matches!(
            GpuSpmm::compile(&g, &udf, Reducer::Sum, &fds, &GpuSpmmOptions::default()),
            Err(KernelError::BadSchedule(_))
        ));
    }
}
