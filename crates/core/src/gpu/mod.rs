//! GPU kernel templates, executed on the [`fg_gpusim`] V100 model.
//!
//! Template-level optimizations (§III-C2/3):
//! * **SpMM** — vertex parallelization: each block processes a chunk of
//!   destination rows; the FDS binds the feature dimension to `thread.x`
//!   (Fig. 7a), giving divergence-free, coalesced execution. Optional
//!   **hybrid partitioning** stages high-out-degree source rows in shared
//!   memory (§III-C3, Fig. 13).
//! * **SDDMM** — edge parallelization: each block processes a chunk of
//!   edges; the FDS chooses between a cooperative **tree reduction** across
//!   `thread.x` (Fig. 7b) and a register-heavy serial dot per thread
//!   (the Fig. 12 ablation).

pub mod fused;
pub mod sddmm;
pub mod spmm;
