//! GPU fused SDDMM → (softmax) → SpMM template (vertex-parallel).
//!
//! Mirrors the CPU fused kernel on the [`fg_gpusim`] cost model: the softmax
//! variant is two launches (an exp-free score-max pass, then an aggregate
//! pass that recomputes each score and keeps the per-row exp-sum in a
//! register), the plain variant one launch. Both walk destination rows
//! block-parallel like the GPU SpMM template and never allocate the
//! `|E| × d` edge tensor — the inter-launch state is one `|V|`-length
//! max vector. The destination-side GAT score operand is loop-invariant per
//! row and consecutive across a block's rows, so it is fetched as one
//! coalesced read per block instead of one scattered read per edge.

use fg_gpusim::{launch, BlockCtx, DeviceConfig, GpuKernel};
use fg_graph::{Csr, Graph, VId};
use fg_ir::interp::{eval_udf, EdgeCtx};
use fg_ir::{FusedOp, FusedPattern, KernelPattern};
use fg_tensor::Dense2;
use fg_telemetry::{counter_add, span, Counter};

use crate::error::KernelError;
use crate::inputs::FusedInputs;
use crate::RunStats;

const F32: usize = std::mem::size_of::<f32>();

/// Template-level options for the GPU fused kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuFusedOptions {
    /// Simulated device.
    pub device: DeviceConfig,
    /// Destination rows per block.
    pub rows_per_block: usize,
    /// Threads per block (the feature axis binds to `thread.x`).
    pub threads_per_block: usize,
}

impl Default for GpuFusedOptions {
    fn default() -> Self {
        Self {
            device: DeviceConfig::v100(),
            rows_per_block: 32,
            threads_per_block: 256,
        }
    }
}

/// A compiled GPU fused-attention kernel.
pub struct GpuFused {
    op: FusedOp,
    pattern: FusedPattern,
    csr: Csr,
    degrees: Vec<u32>,
    num_vertices: usize,
    num_edges: usize,
    opts: GpuFusedOptions,
}

impl GpuFused {
    /// Validate and build the plan.
    pub fn compile(graph: &Graph, op: &FusedOp, opts: &GpuFusedOptions) -> Result<Self, KernelError> {
        op.validate()?;
        if opts.rows_per_block == 0 {
            return Err(KernelError::BadSchedule("rows_per_block must be >= 1".into()));
        }
        if opts.threads_per_block == 0 || opts.threads_per_block > opts.device.max_threads_per_sm {
            return Err(KernelError::BadSchedule(format!(
                "threads_per_block {} out of range",
                opts.threads_per_block
            )));
        }
        counter_add(Counter::KernelCompiles, 1);
        Ok(Self {
            op: op.clone(),
            pattern: FusedPattern::of(op),
            csr: graph.in_csr().clone(),
            degrees: (0..graph.num_vertices() as VId)
                .map(|v| graph.in_degree(v) as u32)
                .collect(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            opts: *opts,
        })
    }

    /// The recognized fused pattern.
    pub fn pattern(&self) -> FusedPattern {
        self.pattern
    }

    /// Heap bytes held by the compiled plan (CSR copy + degree array).
    pub fn mem_bytes(&self) -> u64 {
        self.csr.mem_bytes() + (self.degrees.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Execute on the simulator; `RunStats::gpu_time_ms` sums the launches.
    pub fn run(
        &self,
        inputs: &FusedInputs<'_, f32>,
        out: &mut Dense2<f32>,
    ) -> Result<RunStats, KernelError> {
        inputs.validate(&self.op, self.num_vertices, self.num_edges, out)?;
        let _run_span = span!(
            "gpu/fused/run",
            "pattern={} d={} grid={} softmax={}",
            self.pattern.name(),
            self.op.out_len(),
            self.grid_dim(),
            self.op.softmax
        );

        let mut launches = Vec::new();
        let mut m = vec![f32::NEG_INFINITY; self.num_vertices];
        if self.op.softmax {
            counter_add(Counter::EdgesProcessed, 2 * self.num_edges as u64);
            let mut pass_a = MaxKernel { plan: self, inputs, m: &mut m };
            launches.push(launch(&self.opts.device, &mut pass_a));
        } else {
            counter_add(Counter::EdgesProcessed, self.num_edges as u64);
        }
        let mut pass_b = AggregateKernel {
            plan: self,
            inputs,
            m: &m,
            out,
        };
        launches.push(launch(&self.opts.device, &mut pass_b));

        Ok(RunStats {
            gpu_time_ms: Some(launches.iter().map(|r| r.time_ms).sum()),
            gpu_launches: launches,
        })
    }

    fn grid_dim(&self) -> usize {
        self.num_vertices.div_ceil(self.opts.rows_per_block).max(1)
    }

    fn block_rows(&self, block: usize) -> std::ops::Range<usize> {
        let lo = block * self.opts.rows_per_block;
        let hi = (lo + self.opts.rows_per_block).min(self.num_vertices);
        lo..hi
    }

    /// Charge one coalesced read for the block's destination-side GAT score
    /// operands (loop-invariant per row, consecutive across the block's
    /// rows). No-op on the interpreter path, which reads per edge.
    fn account_dst_terms(&self, ctx: &mut BlockCtx<'_>, rows: &std::ops::Range<usize>) {
        if matches!(self.pattern, FusedPattern::GatAttention { .. }) {
            ctx.global_contiguous(rows.start, rows.len(), F32);
        }
    }

    /// The hoisted destination-side score operand for one row (charged by
    /// [`Self::account_dst_terms`]; 0.0 on the interpreter path).
    #[inline]
    fn dst_term(&self, inputs: &FusedInputs<'_, f32>, dst: VId) -> f32 {
        if matches!(self.pattern, FusedPattern::GatAttention { .. }) {
            inputs.score.dst_tensor().at(dst as usize, 0)
        } else {
            0.0
        }
    }

    /// Evaluate the per-edge score (fast path or interpreter) and charge the
    /// simulator for the operand reads + ALU.
    fn score(
        &self,
        ctx: &mut BlockCtx<'_>,
        inputs: &FusedInputs<'_, f32>,
        src: VId,
        dst: VId,
        eid: u32,
        dst_term: f32,
    ) -> f32 {
        if let FusedPattern::GatAttention { slope } = self.pattern {
            // one scattered source read + add + select (dst operand hoisted)
            ctx.global_scattered(1, F32);
            ctx.alu(2);
            let v = inputs.score.vertex.at(src as usize, 0) + dst_term;
            return if v > 0.0 { v } else { slope as f32 * v };
        }
        let udf = &self.op.score;
        let empty: [f32; 0] = [];
        if udf.src_len > 0 {
            ctx.global_scattered(udf.src_len, F32);
        }
        if udf.dst_len > 0 {
            ctx.global_scattered(udf.dst_len, F32);
        }
        if udf.edge_len > 0 {
            ctx.global_scattered(udf.edge_len, F32);
        }
        let ectx = EdgeCtx {
            src: if udf.src_len > 0 { inputs.score.vertex.row(src as usize) } else { &empty },
            dst: if udf.dst_len > 0 { inputs.score.dst_tensor().row(dst as usize) } else { &empty },
            edge: match inputs.score.edge {
                Some(e) if udf.edge_len > 0 => e.row(eid as usize),
                _ => &empty,
            },
        };
        ctx.warp_exec(1, udf.flops_per_edge() as u64);
        let mut out1 = [0f32; 1];
        eval_udf(udf, &ectx, inputs.score.params, &mut out1, |slot, v| *slot = v);
        out1[0]
    }
}

/// Pass A: stream scores, keep the per-destination running max. Exp-free.
struct MaxKernel<'a, 'b> {
    plan: &'a GpuFused,
    inputs: &'a FusedInputs<'b, f32>,
    m: &'a mut [f32],
}

impl GpuKernel for MaxKernel<'_, '_> {
    fn name(&self) -> &'static str {
        "fg-fused-max"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.opts.threads_per_block
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let rows = plan.block_rows(block);
        account_index_reads(plan, ctx, &rows);
        plan.account_dst_terms(ctx, &rows);
        for dst in rows.clone() {
            let dst = dst as VId;
            let t = plan.dst_term(self.inputs, dst);
            let srcs = plan.csr.row(dst);
            let base = plan.csr.row_start(dst);
            let mut mv = f32::NEG_INFINITY;
            if let FusedPattern::GatAttention { slope } = plan.pattern {
                // leaky-relu is monotonic: the row max is
                // leaky(max sl[src] + t) — one load + compare per edge.
                let mut z = f32::NEG_INFINITY;
                for &src in srcs {
                    ctx.global_scattered(1, F32);
                    ctx.alu(1); // running-max compare
                    z = z.max(self.inputs.score.vertex.at(src as usize, 0));
                }
                if z > f32::NEG_INFINITY {
                    ctx.alu(2); // add + leaky select, once per row
                    let v = z + t;
                    mv = if v > 0.0 { v } else { slope as f32 * v };
                }
            } else {
                for (i, &src) in srcs.iter().enumerate() {
                    let v = plan.score(ctx, self.inputs, src, dst, (base + i) as u32, t);
                    if v > mv {
                        mv = v;
                    }
                    ctx.alu(1); // running-max compare
                }
            }
            self.m[dst as usize] = mv;
        }
        // write the max vector, coalesced across the block's rows
        ctx.global_contiguous(rows.start, rows.len(), F32);
    }
}

/// Pass B (or the only pass when softmax is off): recompute scores, combine
/// `exp(s - max)`-weighted messages into the destination rows while keeping
/// the exp-sum in a register, then scale the row by its reciprocal.
struct AggregateKernel<'a, 'b> {
    plan: &'a GpuFused,
    inputs: &'a FusedInputs<'b, f32>,
    m: &'a [f32],
    out: &'a mut Dense2<f32>,
}

impl GpuKernel for AggregateKernel<'_, '_> {
    fn name(&self) -> &'static str {
        "fg-fused-aggregate"
    }
    fn grid_dim(&self) -> usize {
        self.plan.grid_dim()
    }
    fn block_dim(&self) -> usize {
        self.plan.opts.threads_per_block
    }
    fn run_block(&mut self, block: usize, ctx: &mut BlockCtx<'_>) {
        let plan = self.plan;
        let op = &plan.op;
        let d = op.out_len();
        let rows = plan.block_rows(block);
        let copy_src = matches!(plan.pattern, FusedPattern::GatAttention { .. })
            || KernelPattern::of(&op.message) == KernelPattern::CopySrc;
        let empty: [f32; 0] = [];
        account_index_reads(plan, ctx, &rows);
        plan.account_dst_terms(ctx, &rows);
        if op.softmax {
            // read the max vector, coalesced across the block's rows
            ctx.global_contiguous(rows.start, rows.len(), F32);
        }

        let mut acc = vec![0f32; d];
        let mut msg = vec![0f32; d];
        for dst in rows {
            let dst = dst as VId;
            let t = plan.dst_term(self.inputs, dst);
            let srcs = plan.csr.row(dst);
            let base = plan.csr.row_start(dst);
            acc.fill(op.agg.identity());
            let mv = if op.softmax { self.m[dst as usize] } else { 0.0 };
            let mut sum = 0f32;
            for (i, &src) in srcs.iter().enumerate() {
                let eid = (base + i) as u32;
                let raw = plan.score(ctx, self.inputs, src, dst, eid, t);
                let w = if op.softmax {
                    ctx.alu(2); // exp + sum update
                    let w = (raw - mv).exp();
                    sum += w;
                    w
                } else {
                    raw
                };
                let mrow: &[f32] = if copy_src {
                    // feature axis on thread.x: coalesced row read
                    ctx.global_contiguous(src as usize * d, d, F32);
                    self.inputs.message.vertex.row(src as usize)
                } else {
                    let mudf = &op.message;
                    if mudf.src_len > 0 {
                        ctx.global_scattered(mudf.src_len, F32);
                    }
                    if mudf.dst_len > 0 {
                        ctx.global_scattered(mudf.dst_len, F32);
                    }
                    if mudf.edge_len > 0 {
                        ctx.global_scattered(mudf.edge_len, F32);
                    }
                    let ectx = EdgeCtx {
                        src: if mudf.src_len > 0 {
                            self.inputs.message.vertex.row(src as usize)
                        } else {
                            &empty
                        },
                        dst: if mudf.dst_len > 0 {
                            self.inputs.message.dst_tensor().row(dst as usize)
                        } else {
                            &empty
                        },
                        edge: match self.inputs.message.edge {
                            Some(e) if mudf.edge_len > 0 => e.row(eid as usize),
                            _ => &empty,
                        },
                    };
                    ctx.warp_exec(1, mudf.flops_per_edge() as u64);
                    eval_udf(mudf, &ectx, self.inputs.message.params, &mut msg, |slot, v| {
                        *slot = v
                    });
                    &msg
                };
                for (a, &v) in acc.iter_mut().zip(mrow) {
                    *a = op.agg.combine(*a, w * v);
                }
                ctx.alu(2 * d as u64); // scale + combine, one lane per element
            }
            if op.softmax && sum > 0.0 {
                // close the softmax in-register: one reciprocal + row scale
                ctx.alu(1 + d as u64);
                let inv = 1.0 / sum;
                for a in acc.iter_mut() {
                    *a *= inv;
                }
            }
            finalize_row(plan, ctx, self.out, dst, &acc, d);
        }
    }
}

fn finalize_row(
    plan: &GpuFused,
    ctx: &mut BlockCtx<'_>,
    out: &mut Dense2<f32>,
    dst: VId,
    acc: &[f32],
    d: usize,
) {
    // Softmax weights already sum to one; finalize still handles mean /
    // zero-degree normalization for the plain path.
    let deg = plan.degrees[dst as usize] as usize;
    let orow = out.row_mut(dst as usize);
    for (o, &a) in orow.iter_mut().zip(acc) {
        *o = plan.op.agg.finalize(a, deg);
    }
    ctx.global_contiguous(dst as usize * d, d, F32);
}

/// Index reads for a block: indptr entries + column indices, coalesced.
#[inline]
fn account_index_reads(plan: &GpuFused, ctx: &mut BlockCtx<'_>, rows: &std::ops::Range<usize>) {
    let start = plan.csr.row_start(rows.start as VId);
    let end = plan.csr.row_start(rows.end as VId);
    ctx.global_contiguous(rows.start, rows.len() + 1, std::mem::size_of::<usize>());
    ctx.global_contiguous(start, end - start, std::mem::size_of::<VId>());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::GraphTensors;
    use crate::reference::fused_reference;
    use fg_graph::generators;
    use fg_ir::{Reducer, Udf};

    fn features(n: usize, d: usize, salt: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| {
            ((v * 31 + i * 7 + salt * 13) % 23) as f32 * 0.25 - 2.0
        })
    }

    fn check(g: &Graph, op: &FusedOp, inputs: &FusedInputs<'_, f32>, opts: &GpuFusedOptions) -> RunStats {
        let k = GpuFused::compile(g, op, opts).unwrap();
        let mut out = Dense2::zeros(g.num_vertices(), op.out_len());
        let stats = k.run(inputs, &mut out).unwrap();
        let mut want = Dense2::zeros(g.num_vertices(), op.out_len());
        fused_reference(g, op, inputs, &mut want).unwrap();
        assert!(
            out.approx_eq(&want, 1e-4),
            "mismatch: max diff {} (pattern {})",
            out.max_abs_diff(&want),
            k.pattern().name()
        );
        stats
    }

    #[test]
    fn gpu_gat_attention_matches_reference_and_reports_two_launches() {
        let g = generators::uniform(150, 6, 5);
        let d = 32;
        let x = features(150, d, 0);
        let sl = features(150, 1, 1);
        let sr = features(150, 1, 2);
        let op = FusedOp::gat_attention(d, 0.2);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::vertex_only(&x),
        };
        let stats = check(&g, &op, &inputs, &GpuFusedOptions::default());
        assert_eq!(stats.gpu_launches.len(), 2, "max/sum pass + aggregate pass");
        assert!(stats.gpu_time_ms.unwrap() > 0.0);
    }

    #[test]
    fn gpu_plain_weighted_aggregation_is_one_launch() {
        let g = generators::uniform(80, 4, 9);
        let d = 16;
        let x = features(80, d, 0);
        let p = features(80, d, 5);
        let op = FusedOp {
            score: Udf::dot(d),
            softmax: false,
            message: Udf::copy_src(d),
            agg: Reducer::Mean,
        };
        let inputs = FusedInputs {
            score: GraphTensors::vertex_only(&p),
            message: GraphTensors::vertex_only(&x),
        };
        let stats = check(&g, &op, &inputs, &GpuFusedOptions::default());
        assert_eq!(stats.gpu_launches.len(), 1);
    }

    #[test]
    fn gpu_generic_message_udf() {
        let g = generators::uniform(60, 5, 3);
        let d = 8;
        let x = features(60, d, 0);
        let xe = features(g.num_edges(), d, 4);
        let sl = features(60, 1, 1);
        let sr = features(60, 1, 2);
        let mut op = FusedOp::gat_attention(d, 0.2);
        op.message = Udf::src_mul_edge(d);
        let inputs = FusedInputs {
            score: GraphTensors::src_dst(&sl, &sr),
            message: GraphTensors::with_edge(&x, &xe),
        };
        check(&g, &op, &inputs, &GpuFusedOptions::default());
    }

    #[test]
    fn gpu_schedule_validation() {
        let g = generators::uniform(10, 2, 1);
        let op = FusedOp::gat_attention(4, 0.2);
        let bad = GpuFusedOptions {
            rows_per_block: 0,
            ..Default::default()
        };
        assert!(matches!(
            GpuFused::compile(&g, &op, &bad),
            Err(KernelError::BadSchedule(_))
        ));
        let bad = GpuFusedOptions {
            threads_per_block: 1_000_000,
            ..Default::default()
        };
        assert!(matches!(
            GpuFused::compile(&g, &op, &bad),
            Err(KernelError::BadSchedule(_))
        ));
    }
}
