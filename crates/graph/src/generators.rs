//! Deterministic synthetic graph generators.
//!
//! All generators take an explicit seed and use a fixed PCG stream, so every
//! experiment in the repository is reproducible bit-for-bit. Degree targets
//! are *averages* (like the paper's dataset descriptions); duplicate edges
//! produced during sampling are removed, so realized edge counts land within
//! a few percent of the target.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

use crate::{Coo, Graph, VId};

/// RNG type used by every generator.
pub type GenRng = Pcg64Mcg;

/// Create the generator RNG for a seed.
pub fn rng(seed: u64) -> GenRng {
    Pcg64Mcg::seed_from_u64(seed)
}

/// Uniform random graph: every vertex receives `avg_in_degree` in-edges with
/// sources drawn uniformly. (Erdős–Rényi-like; degree distribution is
/// Binomial, tightly concentrated — a stand-in for `ogbn-proteins`, whose
/// association graph is dense and fairly regular.)
pub fn uniform(n: usize, avg_in_degree: usize, seed: u64) -> Graph {
    assert!(n > 0, "graph must have at least one vertex");
    let mut r = rng(seed);
    let src_dist = Uniform::new(0, n as VId);
    let mut edges = Vec::with_capacity(n * avg_in_degree);
    for dst in 0..n as VId {
        for _ in 0..avg_in_degree {
            edges.push((src_dist.sample(&mut r), dst));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Uniform random graph specified by matrix *sparsity* (fraction of zero
/// entries), as in Table V of the paper: `nnz ≈ (1 - sparsity) · n²`.
pub fn uniform_with_sparsity(n: usize, sparsity: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let avg = ((1.0 - sparsity) * n as f64).round() as usize;
    uniform(n, avg, seed)
}

/// Chung–Lu style power-law graph: vertex `i` has weight `(i+1)^(-alpha)`;
/// edge endpoints are drawn proportionally to weight. Produces the skewed
/// degree distribution of social graphs — the stand-in for `reddit`.
///
/// `alpha` around 0.5 gives the mild skew typical of post-interaction
/// graphs; larger values concentrate edges on fewer hubs.
pub fn power_law(n: usize, avg_degree: usize, alpha: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph must have at least one vertex");
    let mut r = rng(seed);
    // Cumulative weight table for inverse-CDF sampling.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(-alpha);
        cum.push(total);
    }
    let m = n * avg_degree;
    let mut edges = Vec::with_capacity(m);
    let sample_vertex = |r: &mut GenRng| -> VId {
        let x: f64 = r.gen::<f64>() * total;
        cum.partition_point(|&c| c < x) as VId
    };
    for _ in 0..m {
        let s = sample_vertex(&mut r);
        let d = sample_vertex(&mut r);
        edges.push((s, d));
    }
    Graph::from_edges(n, &edges)
}

/// The paper's `rand-100K` construction, parameterized: `n_high` vertices
/// with average out-degree `deg_high` and `n_low` vertices with average
/// out-degree `deg_low`; destinations uniform. High-degree vertices get the
/// low IDs. Used to study hybrid partitioning (§III-C3, Fig. 13).
pub fn two_tier(
    n_high: usize,
    deg_high: usize,
    n_low: usize,
    deg_low: usize,
    seed: u64,
) -> Graph {
    let n = n_high + n_low;
    assert!(n > 0, "graph must have at least one vertex");
    let mut r = rng(seed);
    let dst_dist = Uniform::new(0, n as VId);
    let mut edges = Vec::with_capacity(n_high * deg_high + n_low * deg_low);
    for src in 0..n_high as VId {
        for _ in 0..deg_high {
            edges.push((src, dst_dist.sample(&mut r)));
        }
    }
    for src in n_high as VId..n as VId {
        for _ in 0..deg_low {
            edges.push((src, dst_dist.sample(&mut r)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A stochastic block model with `blocks` equal communities. Each vertex
/// receives `avg_in_degree` in-edges; a fraction `p_in` of them come from its
/// own community. Returns the graph and the block label of every vertex.
/// Drives the end-to-end vertex-classification accuracy experiment (§V-E).
pub fn sbm(
    n: usize,
    blocks: usize,
    avg_in_degree: usize,
    p_in: f64,
    seed: u64,
) -> (Graph, Vec<u32>) {
    assert!(n > 0 && blocks > 0 && blocks <= n, "invalid SBM shape");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be in [0,1]");
    let mut r = rng(seed);
    let block_size = n.div_ceil(blocks);
    let labels: Vec<u32> = (0..n).map(|v| (v / block_size) as u32).collect();
    let mut edges = Vec::with_capacity(n * avg_in_degree);
    let any = Uniform::new(0, n as VId);
    for (dst, &label) in labels.iter().enumerate() {
        let b = label as usize;
        let lo = b * block_size;
        let hi = ((b + 1) * block_size).min(n);
        let own = Uniform::new(lo as VId, hi as VId);
        for _ in 0..avg_in_degree {
            let src = if r.gen::<f64>() < p_in {
                own.sample(&mut r)
            } else {
                any.sample(&mut r)
            };
            edges.push((src, dst as VId));
        }
    }
    (Graph::from_edges(n, &edges), labels)
}

/// A tiny deterministic graph (the 8-vertex sample of Fig. 5 is this size)
/// for documentation examples and smoke tests: a directed ring with chords.
pub fn ring_with_chords(n: usize, chord: usize) -> Graph {
    assert!(n >= 2, "ring needs at least 2 vertices");
    let mut edges = Vec::with_capacity(n * 2);
    for v in 0..n {
        edges.push((v as VId, ((v + 1) % n) as VId));
        if chord > 0 {
            edges.push((v as VId, ((v + chord) % n) as VId));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Sample `count` distinct COO edges uniformly at random (rejection-free
/// enough for sparse graphs); used by property tests.
pub fn random_edges(n: usize, count: usize, seed: u64) -> Coo {
    let mut r = rng(seed);
    let dist = Uniform::new(0, n as VId);
    let edges: Vec<(VId, VId)> = (0..count)
        .map(|_| (dist.sample(&mut r), dist.sample(&mut r)))
        .collect();
    Coo::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_hits_degree_target_approximately() {
        let g = uniform(1000, 20, 7);
        let avg = g.avg_degree();
        assert!(
            (avg - 20.0).abs() < 1.0,
            "avg degree {avg} too far from target 20"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform(500, 10, 42).edge_list();
        let b = uniform(500, 10, 42).edge_list();
        assert_eq!(a, b);
        let c = uniform(500, 10, 43).edge_list();
        assert_ne!(a, c);
    }

    #[test]
    fn sparsity_parameterization() {
        let g = uniform_with_sparsity(200, 0.95, 1);
        // expected nnz ~ 0.05 * 200^2 = 2000
        let nnz = g.num_edges() as f64;
        assert!((1700.0..=2000.0).contains(&nnz), "nnz = {nnz}");
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(2000, 20, 0.8, 3);
        let mut degs: Vec<usize> = (0..2000).map(|v| g.out_degree(v as VId)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // top 1% of vertices should hold far more than 1% of edges
        let top: usize = degs[..20].iter().sum();
        assert!(
            top as f64 > 0.05 * g.num_edges() as f64,
            "top-20 hold {top} of {}",
            g.num_edges()
        );
    }

    #[test]
    fn two_tier_degree_structure() {
        // n must be much larger than deg_high or deduplication flattens the
        // high tier (sampling with replacement into a small ID space).
        let g = two_tier(20, 200, 1980, 10, 5);
        assert_eq!(g.num_vertices(), 2000);
        let high_avg: f64 =
            (0..20).map(|v| g.out_degree(v) as f64).sum::<f64>() / 20.0;
        let low_avg: f64 =
            (20..2000).map(|v| g.out_degree(v) as f64).sum::<f64>() / 1980.0;
        assert!(high_avg > 10.0 * low_avg, "high {high_avg} low {low_avg}");
    }

    #[test]
    fn sbm_respects_community_preference() {
        let (g, labels) = sbm(400, 4, 20, 0.9, 11);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (s, d, _) in g.edges() {
            total += 1;
            if labels[s as usize] == labels[d as usize] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.8, "intra-community fraction {frac}");
        assert_eq!(labels.len(), 400);
    }

    #[test]
    fn ring_with_chords_structure() {
        let g = ring_with_chords(8, 3);
        assert_eq!(g.num_vertices(), 8);
        assert!(g.in_csr().contains(1, 0)); // 0 -> 1
        assert!(g.in_csr().contains(3, 0)); // 0 -> 3 chord
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn uniform_rejects_empty() {
        let _ = uniform(0, 5, 0);
    }

    #[test]
    #[should_panic(expected = "p_in")]
    fn sbm_rejects_bad_probability() {
        let _ = sbm(10, 2, 3, 1.5, 0);
    }
}
