//! Hilbert-curve edge ordering (§III-C1).
//!
//! Edge-wise computations (SDDMM) read both endpoint feature rows. Visiting
//! edges in the order given by the Hilbert index of their `(src, dst)`
//! coordinate keeps *both* recently-touched source rows and destination rows
//! hot across a spectrum of cache levels — the recursive structure of the
//! curve is what gives the multi-granularity locality the paper cites
//! (McSherry et al., HotOS'15).

use crate::{EId, Graph, VId};

/// Convert `(x, y)` to its distance along a Hilbert curve of order `order`
/// (a `2^order × 2^order` grid). Standard iterative rotate-and-flip walk.
pub fn xy_to_d(order: u32, mut x: u64, mut y: u64) -> u64 {
    let side = 1u64 << order;
    debug_assert!(x < side && y < side, "coordinates outside the grid");
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // rotate quadrant
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (side - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (side - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`xy_to_d`].
pub fn d_to_xy(order: u32, mut d: u64) -> (u64, u64) {
    let side = 1u64 << order;
    let (mut x, mut y) = (0u64, 0u64);
    let mut s = 1u64;
    while s < side {
        let rx = 1 & (d / 2);
        let ry = 1 & (d ^ rx);
        // rotate
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        d /= 4;
        s *= 2;
    }
    (x, y)
}

/// Smallest curve order whose grid covers `n` vertices on each axis.
pub fn order_for(n: usize) -> u32 {
    let n = n.max(2) as u64;
    64 - (n - 1).leading_zeros()
}

/// An edge-traversal order: for each visit position, the canonical edge ID
/// plus its endpoints (pre-gathered so kernels avoid an indirection).
#[derive(Debug, Clone)]
pub struct EdgeOrder {
    /// `(src, dst, eid)` triples in visit order.
    pub visits: Vec<(VId, VId, EId)>,
}

impl EdgeOrder {
    /// Canonical destination-major order (the order edge IDs are defined in).
    pub fn canonical(graph: &Graph) -> Self {
        Self {
            visits: graph.edges().collect(),
        }
    }

    /// Hilbert-curve order over the `(src, dst)` plane.
    pub fn hilbert(graph: &Graph) -> Self {
        let order = order_for(graph.num_vertices());
        let mut keyed: Vec<(u64, (VId, VId, EId))> = graph
            .edges()
            .map(|e| (xy_to_d(order, e.0 as u64, e.1 as u64), e))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        Self {
            visits: keyed.into_iter().map(|(_, e)| e).collect(),
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// Heap footprint of the visit list in bytes.
    pub fn mem_bytes(&self) -> u64 {
        (self.visits.len() * std::mem::size_of::<(VId, VId, EId)>()) as u64
    }
}

/// Measure the locality of an edge order: the mean absolute jump in source
/// and destination IDs between consecutive visits (lower = more cache
/// friendly). Used by tests and the ablation harness to demonstrate the
/// Hilbert order's benefit independent of wall-clock noise.
pub fn mean_jump(order: &EdgeOrder) -> f64 {
    if order.visits.len() < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    for w in order.visits.windows(2) {
        let (s0, d0, _) = w[0];
        let (s1, d1, _) = w[1];
        total += s0.abs_diff(s1) as u64 + d0.abs_diff(d1) as u64;
    }
    total as f64 / (order.visits.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn curve_is_a_bijection_order3() {
        let order = 3;
        let side = 1u64 << order;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = xy_to_d(order, x, y);
                assert!(!seen[d as usize], "duplicate d={d}");
                seen[d as usize] = true;
                assert_eq!(d_to_xy(order, d), (x, y));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn consecutive_curve_points_are_grid_neighbors() {
        let order = 4;
        let side = 1u64 << order;
        let mut prev = d_to_xy(order, 0);
        for d in 1..side * side {
            let cur = d_to_xy(order, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn order_for_covers() {
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(1024), 10);
        assert_eq!(order_for(1025), 11);
        // degenerate inputs clamp to a 2-point grid
        assert_eq!(order_for(0), 1);
    }

    #[test]
    fn hilbert_order_is_permutation_of_edges() {
        let g = generators::uniform(500, 6, 12);
        let h = EdgeOrder::hilbert(&g);
        assert_eq!(h.len(), g.num_edges());
        let mut eids: Vec<EId> = h.visits.iter().map(|&(_, _, e)| e).collect();
        eids.sort_unstable();
        let expect: Vec<EId> = (0..g.num_edges() as EId).collect();
        assert_eq!(eids, expect);
        // endpoints must match the canonical edge
        let canonical = g.edge_list();
        for &(s, d, e) in &h.visits {
            assert_eq!(canonical[e as usize], (s, d));
        }
    }

    #[test]
    fn hilbert_improves_locality_over_canonical_on_random_graphs() {
        let g = generators::uniform(2000, 10, 3);
        let canonical = EdgeOrder::canonical(&g);
        let hilbert = EdgeOrder::hilbert(&g);
        let jc = mean_jump(&canonical);
        let jh = mean_jump(&hilbert);
        // canonical order is sorted by dst, so dst jumps are tiny but src
        // jumps are ~uniform (n/3 on average); Hilbert bounds both.
        assert!(jh < jc, "hilbert {jh} vs canonical {jc}");
    }

    #[test]
    fn empty_graph_order() {
        let g = crate::Graph::from_edges(4, &[]);
        let h = EdgeOrder::hilbert(&g);
        assert!(h.is_empty());
        assert_eq!(mean_jump(&h), 0.0);
    }
}
