//! Seeded neighbor sampling: slice a fanout-bounded L-hop neighborhood out
//! of the destination-major CSR and reindex it into a compact subgraph.
//!
//! This is the minibatch structure DGL-style serving pipelines run models
//! on: starting from the request's seed vertices, walk `in_csr` rows layer
//! by layer, keeping at most `fanouts[l]` in-neighbors per vertex at hop
//! `l`, then relabel the visited vertices into a dense local ID space. The
//! resulting [`SampledSubgraph`] carries the local→global map and per-layer
//! frontier boundaries so callers can gather feature rows and scatter seed
//! outputs back.
//!
//! Determinism: neighbor draws use a counter-based RNG keyed on
//! `(seed, layer, vertex)`, so the sampled edge set is a pure function of
//! the config and the graph — independent of frontier iteration order,
//! thread count, or how seeds are batched.
//!
//! Bit-identity under full fanout: every vertex discovered before the last
//! hop keeps *all* of its in-edges, and local IDs are assigned in ascending
//! global order, so each subgraph row lists the same sources in the same
//! order as the full graph. CPU SpMM accumulates each destination row in
//! ascending-source order regardless of partitioning, which makes
//! full-fanout sampled inference bitwise equal to full-graph inference on
//! the same seeds (the last-hop leaves get empty rows, but nothing a seed
//! output depends on reads them).

use crate::csr::Csr;
use crate::{Graph, VId};

/// Fanout value meaning "keep every in-neighbor" at that hop.
pub const FULL_FANOUT: usize = usize::MAX;

/// What to sample: per-hop fanout caps, the draw mode, and the RNG seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleConfig {
    /// Per-hop in-neighbor caps, outermost first: `fanouts[0]` bounds the
    /// seeds' own in-edges (the model's *last* aggregation layer),
    /// `fanouts[1]` the 1-hop frontier, and so on. Length = hop count.
    pub fanouts: Vec<usize>,
    /// Draw with replacement (duplicates collapse — CSR rows are sets), or
    /// without (a uniform `k`-subset of the row).
    pub replace: bool,
    /// RNG seed; same seed + same graph + same seeds ⇒ identical subgraph.
    pub seed: u64,
}

impl SampleConfig {
    /// Cap each hop `l` at `fanouts[l]` in-neighbors, drawn without
    /// replacement.
    pub fn new(fanouts: Vec<usize>, seed: u64) -> Self {
        Self {
            fanouts,
            replace: false,
            seed,
        }
    }

    /// Keep every in-neighbor for `hops` hops (no sampling, exact
    /// neighborhood).
    pub fn full(hops: usize, seed: u64) -> Self {
        Self::new(vec![FULL_FANOUT; hops], seed)
    }

    /// Number of hops this config expands.
    pub fn hops(&self) -> usize {
        self.fanouts.len()
    }
}

/// A sampling request that cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// A seed vertex is outside the graph.
    SeedOutOfRange {
        /// The offending seed.
        seed: VId,
        /// Vertex count of the graph.
        vertices: usize,
    },
    /// No seeds were supplied.
    NoSeeds,
    /// `fanouts` is empty — a 0-hop sample has no edges to run a GNN on.
    NoHops,
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::SeedOutOfRange { seed, vertices } => {
                write!(f, "seed {seed} out of range (graph has {vertices} vertices)")
            }
            SampleError::NoSeeds => write!(f, "no seed vertices supplied"),
            SampleError::NoHops => write!(f, "fanouts must name at least one hop"),
        }
    }
}

impl std::error::Error for SampleError {}

/// A fanout-bounded neighborhood of some seed vertices, reindexed into a
/// dense local ID space.
#[derive(Debug, Clone)]
pub struct SampledSubgraph {
    graph: Graph,
    locals: Vec<VId>,
    seed_locals: Vec<VId>,
    frontier_sizes: Vec<usize>,
}

impl SampledSubgraph {
    /// The induced subgraph over local vertex IDs (both CSR orientations).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Local→global vertex map, ascending in global ID.
    pub fn locals(&self) -> &[VId] {
        &self.locals
    }

    /// Global ID of local vertex `l`.
    pub fn global_of(&self, l: VId) -> VId {
        self.locals[l as usize]
    }

    /// Local ID of global vertex `g`, if it was sampled.
    pub fn local_of(&self, g: VId) -> Option<VId> {
        self.locals.binary_search(&g).ok().map(|i| i as VId)
    }

    /// Local IDs of the request's seeds, aligned with the input seed slice
    /// (duplicate seeds map to the same local).
    pub fn seed_locals(&self) -> &[VId] {
        &self.seed_locals
    }

    /// Vertices first discovered at each hop: `frontier_sizes[0]` is the
    /// distinct seed count, `frontier_sizes[l]` the vertices newly reached
    /// at hop `l`. Sums to [`SampledSubgraph::num_vertices`].
    pub fn frontier_sizes(&self) -> &[usize] {
        &self.frontier_sizes
    }

    /// Vertex count of the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Edge count of the subgraph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Total heap footprint in bytes: subgraph topology plus the index
    /// maps. This is what serving charges to the `sampling` memory
    /// component for the lifetime of a request.
    pub fn mem_bytes(&self) -> u64 {
        self.graph.mem_bytes()
            + (self.locals.len() * std::mem::size_of::<VId>()) as u64
            + (self.seed_locals.len() * std::mem::size_of::<VId>()) as u64
            + (self.frontier_sizes.len() * std::mem::size_of::<usize>()) as u64
    }
}

/// Counter-based RNG: one independent stream per `(seed, layer, vertex)`
/// key, so draws do not depend on traversal order. splitmix64 finalization
/// is enough mixing for uniform neighbor picks.
struct KeyedRng {
    state: u64,
}

#[inline(always)]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyedRng {
    fn new(seed: u64, layer: usize, vertex: VId) -> Self {
        let key = seed
            ^ splitmix64((layer as u64).wrapping_shl(32) | vertex as u64)
                .wrapping_mul(0xA24B_AED4_963E_E407);
        Self {
            state: splitmix64(key),
        }
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw from `0..n` (Lemire multiply-shift; the tiny modulo
    /// bias at graph-row sizes is irrelevant for sampling).
    #[inline(always)]
    fn gen_range(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Sample up to `fanout` entries of `row` into `out` (global IDs,
/// unsorted, possibly duplicated when `replace`).
fn sample_row(row: &[VId], fanout: usize, replace: bool, rng: &mut KeyedRng, out: &mut Vec<VId>) {
    if fanout >= row.len() {
        out.extend_from_slice(row);
        return;
    }
    if replace {
        for _ in 0..fanout {
            out.push(row[rng.gen_range(row.len())]);
        }
    } else {
        // Partial Fisher–Yates: the first `fanout` positions of a uniform
        // shuffle are a uniform subset.
        let mut pool: Vec<VId> = row.to_vec();
        for i in 0..fanout {
            let j = i + rng.gen_range(pool.len() - i);
            pool.swap(i, j);
            out.push(pool[i]);
        }
    }
}

/// Expand a fanout-bounded neighborhood of `seeds` over the
/// destination-major adjacency of `graph` and reindex it into a
/// [`SampledSubgraph`].
///
/// Each vertex is expanded exactly once, at the hop it is first
/// discovered; vertices first reached on the final hop become leaves with
/// empty rows (their features still feed the hop above).
pub fn sample_subgraph(
    graph: &Graph,
    seeds: &[VId],
    cfg: &SampleConfig,
) -> Result<SampledSubgraph, SampleError> {
    let n = graph.num_vertices();
    if seeds.is_empty() {
        return Err(SampleError::NoSeeds);
    }
    if cfg.fanouts.is_empty() {
        return Err(SampleError::NoHops);
    }
    for &s in seeds {
        if (s as usize) >= n {
            return Err(SampleError::SeedOutOfRange { seed: s, vertices: n });
        }
    }
    let hops = cfg.fanouts.len();

    // Hop each vertex was first reached at. Keyed by global ID: the map
    // must stay proportional to the subgraph, not O(|V|) per request.
    let mut discovered: std::collections::HashMap<VId, usize> = std::collections::HashMap::new();
    let mut frontier: Vec<VId> = Vec::new();
    for &s in seeds {
        if let std::collections::hash_map::Entry::Vacant(e) = discovered.entry(s) {
            e.insert(0);
            frontier.push(s);
        }
    }
    let mut frontier_sizes = vec![frontier.len()];

    // Sampled in-edges per expanded destination, in global IDs.
    let mut rows: Vec<(VId, Vec<VId>)> = Vec::new();
    let mut scratch: Vec<VId> = Vec::new();

    for (hop, &fanout) in cfg.fanouts.iter().enumerate() {
        let mut next: Vec<VId> = Vec::new();
        for &v in &frontier {
            scratch.clear();
            let row = graph.in_csr().row(v);
            if !row.is_empty() && fanout > 0 {
                let mut rng = KeyedRng::new(cfg.seed, hop, v);
                sample_row(row, fanout, cfg.replace, &mut rng, &mut scratch);
            }
            // Dedup (with-replacement draws repeat) and fix the row order.
            scratch.sort_unstable();
            scratch.dedup();
            for &u in &scratch {
                if let std::collections::hash_map::Entry::Vacant(e) = discovered.entry(u) {
                    e.insert(hop + 1);
                    next.push(u);
                }
            }
            rows.push((v, std::mem::take(&mut scratch)));
        }
        frontier_sizes.push(next.len());
        frontier = next;
    }
    // The last frontier was recorded but never expanded: its members are
    // leaves. frontier_sizes has hops+1 entries, one per discovery depth.
    debug_assert_eq!(frontier_sizes.len(), hops + 1);

    // Assign locals in ascending global order (bit-identity depends on
    // this: per-row source order must match the full graph's).
    let mut locals: Vec<VId> = discovered.keys().copied().collect();
    locals.sort_unstable();
    let local_of = |g: VId| -> VId {
        locals.binary_search(&g).expect("sampled vertex in locals") as VId
    };

    // Build the destination-major CSR over local IDs. Rows were produced
    // per expanded vertex; leaves keep empty rows.
    let sub_n = locals.len();
    let mut local_rows: Vec<Vec<VId>> = vec![Vec::new(); sub_n];
    for (dst, srcs) in rows {
        let l = local_of(dst) as usize;
        let row: &mut Vec<VId> = &mut local_rows[l];
        debug_assert!(row.is_empty(), "vertex expanded twice");
        row.extend(srcs.iter().map(|&u| local_of(u)));
        // Globals were sorted and the local map is order-preserving, so the
        // row is already strictly increasing.
    }
    let mut indptr = Vec::with_capacity(sub_n + 1);
    indptr.push(0usize);
    let mut indices: Vec<VId> = Vec::new();
    for row in &local_rows {
        indices.extend_from_slice(row);
        indptr.push(indices.len());
    }
    // Subgraph ingest goes through the fallible constructor: the sampler
    // upholds the invariants, but a violation here must name itself rather
    // than crash a serving worker with an index panic.
    let in_csr = match Csr::try_new(sub_n, sub_n, indptr, indices) {
        Ok(c) => c,
        Err(e) => unreachable!("sampler produced invalid CSR: {e}"),
    };
    let graph = Graph::from_csr(in_csr);

    let seed_locals: Vec<VId> = seeds.iter().map(|&s| local_of(s)).collect();
    Ok(SampledSubgraph {
        graph,
        locals,
        seed_locals,
        frontier_sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn line_graph() -> Graph {
        // 0 -> 1 -> 2 -> 3 -> 4
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn full_fanout_two_hops_takes_exact_neighborhood() {
        let g = line_graph();
        let sub = sample_subgraph(&g, &[4], &SampleConfig::full(2, 7)).unwrap();
        // 4's 2-hop in-neighborhood: {4, 3, 2}
        assert_eq!(sub.locals(), &[2, 3, 4]);
        assert_eq!(sub.frontier_sizes(), &[1, 1, 1]);
        assert_eq!(sub.num_edges(), 2); // 3->4, 2->3 (2 is a leaf)
        let l4 = sub.local_of(4).unwrap();
        let l3 = sub.local_of(3).unwrap();
        let l2 = sub.local_of(2).unwrap();
        assert_eq!(sub.graph().in_csr().row(l4), &[l3]);
        assert_eq!(sub.graph().in_csr().row(l3), &[l2]);
        assert_eq!(sub.graph().in_csr().row(l2), &[] as &[VId]);
        assert_eq!(sub.seed_locals(), &[l4]);
    }

    #[test]
    fn same_seed_gives_identical_subgraph() {
        let g = generators::uniform(300, 8, 11);
        let cfg = SampleConfig::new(vec![3, 2], 42);
        let a = sample_subgraph(&g, &[5, 17, 100], &cfg).unwrap();
        let b = sample_subgraph(&g, &[5, 17, 100], &cfg).unwrap();
        assert_eq!(a.locals(), b.locals());
        assert_eq!(a.graph().in_csr(), b.graph().in_csr());
        assert_eq!(a.seed_locals(), b.seed_locals());
        let c = sample_subgraph(&g, &[5, 17, 100], &SampleConfig::new(vec![3, 2], 43)).unwrap();
        // Different seed: overwhelmingly likely to pick a different set.
        assert!(
            a.locals() != c.locals() || a.graph().in_csr() != c.graph().in_csr(),
            "seed change had no effect"
        );
    }

    #[test]
    fn draw_order_independence_across_seed_batches() {
        // The same vertex discovered at the same hop must sample the same
        // row regardless of what else is in the batch.
        let g = generators::uniform(200, 10, 3);
        let cfg = SampleConfig::new(vec![4], 9);
        let solo = sample_subgraph(&g, &[50], &cfg).unwrap();
        let batch = sample_subgraph(&g, &[50, 51, 52], &cfg).unwrap();
        let solo_row: Vec<VId> = solo
            .graph()
            .in_csr()
            .row(solo.local_of(50).unwrap())
            .iter()
            .map(|&l| solo.global_of(l))
            .collect();
        let batch_row: Vec<VId> = batch
            .graph()
            .in_csr()
            .row(batch.local_of(50).unwrap())
            .iter()
            .map(|&l| batch.global_of(l))
            .collect();
        assert_eq!(solo_row, batch_row);
    }

    #[test]
    fn fanout_cap_is_respected() {
        let g = generators::uniform(100, 20, 5);
        for replace in [false, true] {
            let cfg = SampleConfig {
                fanouts: vec![3, 2],
                replace,
                seed: 1,
            };
            let sub = sample_subgraph(&g, &[0, 7, 99], &cfg).unwrap();
            let csr = sub.graph().in_csr();
            for l in 0..sub.num_vertices() as VId {
                assert!(
                    csr.row(l).len() <= 3,
                    "row {l} exceeds outer fanout: {}",
                    csr.row(l).len()
                );
            }
        }
    }

    #[test]
    fn without_replacement_full_cap_keeps_every_edge() {
        let g = generators::uniform(80, 6, 2);
        let sub = sample_subgraph(&g, &[10], &SampleConfig::full(1, 0)).unwrap();
        let row: Vec<VId> = sub
            .graph()
            .in_csr()
            .row(sub.local_of(10).unwrap())
            .iter()
            .map(|&l| sub.global_of(l))
            .collect();
        assert_eq!(row, g.in_csr().row(10));
    }

    #[test]
    fn reindex_round_trips() {
        let g = generators::uniform(150, 7, 4);
        let sub = sample_subgraph(&g, &[3, 30, 90], &SampleConfig::new(vec![5, 5], 2)).unwrap();
        for l in 0..sub.num_vertices() as VId {
            assert_eq!(sub.local_of(sub.global_of(l)), Some(l));
        }
        // Locals ascend in global ID.
        assert!(sub.locals().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicate_seeds_share_locals() {
        let g = line_graph();
        let sub = sample_subgraph(&g, &[2, 2, 4], &SampleConfig::full(1, 0)).unwrap();
        assert_eq!(sub.seed_locals().len(), 3);
        assert_eq!(sub.seed_locals()[0], sub.seed_locals()[1]);
        assert_eq!(sub.frontier_sizes()[0], 2); // distinct seeds
    }

    #[test]
    fn zero_fanout_keeps_seeds_only() {
        let g = line_graph();
        let sub = sample_subgraph(&g, &[3], &SampleConfig::new(vec![0], 0)).unwrap();
        assert_eq!(sub.num_vertices(), 1);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn rejects_bad_requests() {
        let g = line_graph();
        assert!(matches!(
            sample_subgraph(&g, &[9], &SampleConfig::full(1, 0)),
            Err(SampleError::SeedOutOfRange { seed: 9, vertices: 5 })
        ));
        assert!(matches!(
            sample_subgraph(&g, &[], &SampleConfig::full(1, 0)),
            Err(SampleError::NoSeeds)
        ));
        assert!(matches!(
            sample_subgraph(&g, &[0], &SampleConfig::new(vec![], 0)),
            Err(SampleError::NoHops)
        ));
    }

    #[test]
    fn mem_bytes_counts_maps_and_topology() {
        let g = generators::uniform(100, 5, 8);
        let sub = sample_subgraph(&g, &[1, 2], &SampleConfig::new(vec![4, 4], 3)).unwrap();
        assert!(sub.mem_bytes() >= sub.graph().mem_bytes());
        assert!(sub.mem_bytes() > 0);
    }
}
