//! Edge-list (coordinate) format and conversion to CSR.

use crate::csr::Csr;
use crate::VId;

/// An edge list over `n` vertices. Construction sorts into destination-major
/// order and removes duplicate `(src, dst)` pairs, establishing the canonical
/// edge order used for edge IDs throughout the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    num_vertices: usize,
    /// Destination-major sorted, deduplicated `(src, dst)` pairs.
    edges: Vec<(VId, VId)>,
}

impl Coo {
    /// Build from raw edges, sorting and deduplicating.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, raw: &[(VId, VId)]) -> Self {
        for &(s, d) in raw {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "edge ({s}, {d}) out of bounds for {n} vertices"
            );
        }
        let mut edges: Vec<(VId, VId)> = raw.to_vec();
        // Destination-major: sort by (dst, src).
        edges.sort_unstable_by_key(|&(s, d)| (d, s));
        edges.dedup();
        Self {
            num_vertices: n,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of unique edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Canonical (dst-major) edge slice.
    pub fn edges(&self) -> &[(VId, VId)] {
        &self.edges
    }

    /// Convert to destination-major CSR: row `v` lists in-neighbors of `v`.
    pub fn to_csr_dst_major(&self) -> Csr {
        let n = self.num_vertices;
        let mut indptr = vec![0usize; n + 1];
        for &(_, d) in &self.edges {
            indptr[d as usize + 1] += 1;
        }
        for i in 0..n {
            indptr[i + 1] += indptr[i];
        }
        // Already sorted by (dst, src), so a straight copy of srcs is in place.
        let indices: Vec<VId> = self.edges.iter().map(|&(s, _)| s).collect();
        Csr::new(n, n, indptr, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_dst_major_and_dedups() {
        let coo = Coo::from_edges(3, &[(2, 0), (0, 1), (2, 0), (1, 0)]);
        assert_eq!(coo.edges(), &[(1, 0), (2, 0), (0, 1)]);
        assert_eq!(coo.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_vertex() {
        let _ = Coo::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn csr_conversion_matches_edges() {
        let coo = Coo::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
        let csr = coo.to_csr_dst_major();
        assert_eq!(csr.row(0), &[3]);
        assert_eq!(csr.row(1), &[0]);
        assert_eq!(csr.row(3), &[1, 2]);
        assert_eq!(csr.nnz(), 5);
    }

    #[test]
    fn self_loops_are_kept() {
        let coo = Coo::from_edges(2, &[(0, 0), (1, 1), (0, 1)]);
        assert_eq!(coo.num_edges(), 3);
        let csr = coo.to_csr_dst_major();
        assert!(csr.contains(0, 0));
        assert!(csr.contains(1, 1));
    }

    #[test]
    fn empty_edge_list() {
        let coo = Coo::from_edges(5, &[]);
        let csr = coo.to_csr_dst_major();
        assert_eq!(csr.num_rows(), 5);
        assert_eq!(csr.nnz(), 0);
    }
}
