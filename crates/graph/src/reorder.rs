//! Degree-based vertex reordering for hybrid partitioning (§III-C3).
//!
//! The GPU SpMM template stages frequently-read source rows in shared memory.
//! "Frequently read" = high out-degree: a source vertex with out-degree `k`
//! has its feature row gathered `k` times per SpMM. [`HybridSplit`] reorders
//! vertices so the high-degree sources occupy a contiguous low-ID prefix,
//! which the GPU kernel then partitions and stages; the low-degree suffix is
//! streamed from global memory.

use crate::{Graph, VId};

/// A vertex relabeling that places high-out-degree vertices first.
#[derive(Debug, Clone)]
pub struct HybridSplit {
    /// `perm[old_id] = new_id`.
    pub perm: Vec<VId>,
    /// `inverse[new_id] = old_id`.
    pub inverse: Vec<VId>,
    /// Vertices with out-degree `>= threshold` (they occupy new IDs
    /// `0..num_high`).
    pub num_high: usize,
    /// The degree threshold used.
    pub threshold: usize,
}

impl HybridSplit {
    /// Split by an explicit out-degree threshold.
    pub fn by_threshold(graph: &Graph, threshold: usize) -> Self {
        let n = graph.num_vertices();
        let mut order: Vec<VId> = (0..n as VId).collect();
        // Stable partition: high-degree first, preserving relative ID order
        // inside each class (keeps the relabeling cache-friendly).
        order.sort_by_key(|&v| usize::from(graph.out_degree(v) < threshold));
        let num_high = order
            .iter()
            .take_while(|&&v| graph.out_degree(v) >= threshold)
            .count();
        let mut perm = vec![0 as VId; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            perm[old_id as usize] = new_id as VId;
        }
        Self {
            perm,
            inverse: order,
            num_high,
            threshold,
        }
    }

    /// Split keeping the top `fraction` of vertices (by out-degree) in the
    /// high class.
    pub fn by_fraction(graph: &Graph, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let n = graph.num_vertices();
        if n == 0 {
            return Self {
                perm: vec![],
                inverse: vec![],
                num_high: 0,
                threshold: usize::MAX,
            };
        }
        let mut degs: Vec<usize> = (0..n as VId).map(|v| graph.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((n as f64 * fraction).round() as usize).min(n);
        let threshold = if k == 0 {
            degs[0] + 1
        } else {
            degs[k - 1].max(1)
        };
        Self::by_threshold(graph, threshold)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for an empty graph.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Fraction of all edge reads that hit the high-degree class — the
    /// quantity hybrid partitioning exploits (high fraction ⇒ shared-memory
    /// staging pays off).
    pub fn high_read_fraction(&self, graph: &Graph) -> f64 {
        let m = graph.num_edges();
        if m == 0 {
            return 0.0;
        }
        let high_reads: usize = self
            .inverse
            .iter()
            .take(self.num_high)
            .map(|&v| graph.out_degree(v))
            .sum();
        high_reads as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn permutation_is_valid() {
        let g = generators::two_tier(10, 50, 90, 5, 1);
        let split = HybridSplit::by_threshold(&g, 20);
        let n = g.num_vertices();
        let mut seen = vec![false; n];
        for &p in &split.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for old in 0..n {
            assert_eq!(split.inverse[split.perm[old] as usize] as usize, old);
        }
    }

    #[test]
    fn high_class_is_prefix_and_correct() {
        let g = generators::two_tier(10, 50, 90, 5, 2);
        let split = HybridSplit::by_threshold(&g, 20);
        // all 10 high-tier vertices (plus any lucky low ones) are in front
        assert!(split.num_high >= 8, "num_high = {}", split.num_high);
        for new_id in 0..split.num_high {
            let old = split.inverse[new_id];
            assert!(g.out_degree(old) >= 20);
        }
        for new_id in split.num_high..split.len() {
            let old = split.inverse[new_id];
            assert!(g.out_degree(old) < 20);
        }
    }

    #[test]
    fn by_fraction_selects_requested_share() {
        let g = generators::two_tier(20, 100, 180, 10, 3);
        let split = HybridSplit::by_fraction(&g, 0.1);
        let frac = split.num_high as f64 / split.len() as f64;
        assert!((0.05..=0.25).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn high_read_fraction_dominates_on_two_tier() {
        let g = generators::two_tier(20, 200, 180, 10, 4);
        let split = HybridSplit::by_fraction(&g, 0.1);
        // the 10% high-degree vertices produce ~69% of all reads here
        let f = split.high_read_fraction(&g);
        assert!(f > 0.5, "high read fraction = {f}");
    }

    #[test]
    fn threshold_zero_puts_everything_high() {
        let g = generators::uniform(50, 4, 5);
        let split = HybridSplit::by_threshold(&g, 0);
        assert_eq!(split.num_high, 50);
    }

    #[test]
    fn empty_graph_fraction_split() {
        let g = crate::Graph::from_edges(3, &[]);
        let split = HybridSplit::by_fraction(&g, 0.5);
        assert_eq!(split.high_read_fraction(&g), 0.0);
    }
}
