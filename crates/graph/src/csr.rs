//! Compressed sparse row storage for the adjacency matrix.

use crate::VId;

/// A violated CSR invariant, reported by [`Csr::try_new`].
///
/// Carries enough context to point at the offending row/entry; the
/// [`std::fmt::Display`] rendering is the message the panicking
/// [`Csr::new`] path raises for the same violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `indptr.len() != num_rows + 1` (this also covers an empty `indptr`,
    /// which previously panicked on the `indptr[0]` read).
    IndptrLength {
        /// Expected length (`num_rows + 1`).
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// `indptr[0] != 0`.
    IndptrStart {
        /// The first entry found.
        got: usize,
    },
    /// `indptr` decreases somewhere.
    IndptrNotMonotone {
        /// First row `r` with `indptr[r] > indptr[r + 1]`.
        row: usize,
    },
    /// `indptr[num_rows] != indices.len()`.
    NnzMismatch {
        /// Final `indptr` entry.
        indptr_end: usize,
        /// `indices.len()`.
        nnz: usize,
    },
    /// A row's column indices are not strictly increasing.
    ColumnsNotIncreasing {
        /// Offending row.
        row: usize,
    },
    /// A column index is `>= num_cols`.
    ColumnOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column value.
        col: VId,
        /// Column bound.
        num_cols: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::IndptrLength { expected, got } => write!(
                f,
                "indptr length must be num_rows+1 (expected {expected}, got {got})"
            ),
            CsrError::IndptrStart { got } => {
                write!(f, "indptr must start at 0 (got {got})")
            }
            CsrError::IndptrNotMonotone { row } => {
                write!(f, "indptr must be monotone (drops after row {row})")
            }
            CsrError::NnzMismatch { indptr_end, nnz } => write!(
                f,
                "indptr end must equal nnz (indptr end {indptr_end}, nnz {nnz})"
            ),
            CsrError::ColumnsNotIncreasing { row } => {
                write!(f, "row {row} columns must be strictly increasing")
            }
            CsrError::ColumnOutOfBounds { row, col, num_cols } => {
                write!(f, "row {row} column out of bounds ({col} >= {num_cols})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A compressed-sparse-row matrix over vertex IDs (pattern only — GNN
/// adjacency values, when needed, ride alongside as edge feature tensors).
///
/// Invariants (enforced by [`Csr::new`] and preserved by every method):
/// * `indptr.len() == num_rows + 1`, `indptr[0] == 0`, monotone non-decreasing;
/// * `indices.len() == indptr[num_rows]`;
/// * every entry of `indices` is `< num_cols`;
/// * within each row, column indices are strictly increasing (no duplicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    num_rows: usize,
    num_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<VId>,
}

impl Csr {
    /// Construct from raw parts, validating every invariant.
    ///
    /// # Panics
    /// Panics with a descriptive message if any invariant is violated — use
    /// this only when the parts come from code that upholds the invariants
    /// by construction (generators, transposes, the sampler). Anything
    /// arriving from outside the process (checkpoints, the wire, user
    /// files) must go through [`Csr::try_new`] instead, so malformed input
    /// surfaces as a typed error rather than a crash.
    pub fn new(num_rows: usize, num_cols: usize, indptr: Vec<usize>, indices: Vec<VId>) -> Self {
        match Self::try_new(num_rows, num_cols, indptr, indices) {
            Ok(csr) => csr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Construct from raw parts, returning a typed error on the first
    /// violated invariant instead of panicking.
    ///
    /// CSR construction happens once per graph, so the O(nnz) check is
    /// cheap relative to any kernel that will run on it.
    pub fn try_new(
        num_rows: usize,
        num_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<VId>,
    ) -> Result<Self, CsrError> {
        if indptr.len() != num_rows + 1 {
            return Err(CsrError::IndptrLength {
                expected: num_rows + 1,
                got: indptr.len(),
            });
        }
        if indptr[0] != 0 {
            return Err(CsrError::IndptrStart { got: indptr[0] });
        }
        if let Some(row) = indptr.windows(2).position(|w| w[0] > w[1]) {
            return Err(CsrError::IndptrNotMonotone { row });
        }
        if indptr[num_rows] != indices.len() {
            return Err(CsrError::NnzMismatch {
                indptr_end: indptr[num_rows],
                nnz: indices.len(),
            });
        }
        for r in 0..num_rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(CsrError::ColumnsNotIncreasing { row: r });
            }
            if let Some(&last) = row.last() {
                if last as usize >= num_cols {
                    return Err(CsrError::ColumnOutOfBounds {
                        row: r,
                        col: last,
                        num_cols,
                    });
                }
            }
        }
        Ok(Self {
            num_rows,
            num_cols,
            indptr,
            indices,
        })
    }

    /// An empty matrix with no stored entries.
    pub fn empty(num_rows: usize, num_cols: usize) -> Self {
        Self {
            num_rows,
            num_cols,
            indptr: vec![0; num_rows + 1],
            indices: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of stored entries.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (`num_rows + 1` entries).
    #[inline(always)]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    #[inline(always)]
    pub fn indices(&self) -> &[VId] {
        &self.indices
    }

    /// Column indices of row `r`.
    #[inline(always)]
    pub fn row(&self, r: VId) -> &[VId] {
        let r = r as usize;
        debug_assert!(r < self.num_rows);
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Offset of row `r`'s first entry in [`Csr::indices`].
    #[inline(always)]
    pub fn row_start(&self, r: VId) -> usize {
        self.indptr[r as usize]
    }

    /// Degree (number of stored entries) of row `r`.
    #[inline(always)]
    pub fn degree(&self, r: VId) -> usize {
        let r = r as usize;
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterate rows as `(row_id, columns, base_offset)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (VId, &[VId], usize)> + '_ {
        (0..self.num_rows).map(move |r| {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            (r as VId, &self.indices[start..end], start)
        })
    }

    /// True if `(row, col)` is a stored entry (binary search within the row).
    pub fn contains(&self, row: VId, col: VId) -> bool {
        self.row(row).binary_search(&col).is_ok()
    }

    /// Transpose, also returning for each position of the transposed matrix
    /// the position in `self` it came from.
    ///
    /// When `self` is the destination-major adjacency, the returned pair is
    /// the source-major adjacency plus the canonical-edge-ID map.
    pub fn transpose_with_positions(&self) -> (Csr, Vec<u32>) {
        let mut counts = vec![0usize; self.num_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.num_cols {
            counts[i + 1] += counts[i];
        }
        let indptr_t = counts.clone();
        let mut cursor = counts;
        let mut indices_t = vec![0 as VId; self.nnz()];
        let mut positions = vec![0u32; self.nnz()];
        for r in 0..self.num_rows {
            for pos in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[pos] as usize;
                let slot = cursor[c];
                cursor[c] += 1;
                indices_t[slot] = r as VId;
                positions[slot] = pos as u32;
            }
        }
        // Rows of the transpose are filled in increasing order of the original
        // row index, so each transposed row is already strictly increasing
        // (original rows have unique column entries).
        let t = Csr {
            num_rows: self.num_cols,
            num_cols: self.num_rows,
            indptr: indptr_t,
            indices: indices_t,
        };
        (t, positions)
    }

    /// Plain transpose.
    pub fn transpose(&self) -> Csr {
        self.transpose_with_positions().0
    }

    /// Restrict columns to `lo..hi`, keeping all rows. Column IDs are **not**
    /// rebased. Also returns, per kept position, its position in `self`
    /// (needed to carry edge IDs through 1D partitioning).
    pub fn slice_cols(&self, lo: VId, hi: VId) -> (Csr, Vec<u32>) {
        let mut indptr = Vec::with_capacity(self.num_rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut positions = Vec::new();
        for r in 0..self.num_rows {
            let start = self.indptr[r];
            let row = &self.indices[start..self.indptr[r + 1]];
            // Rows are sorted: binary search the window [lo, hi).
            let a = row.partition_point(|&c| c < lo);
            let b = row.partition_point(|&c| c < hi);
            indices.extend_from_slice(&row[a..b]);
            positions.extend((start + a..start + b).map(|p| p as u32));
            indptr.push(indices.len());
        }
        (
            Csr {
                num_rows: self.num_rows,
                num_cols: self.num_cols,
                indptr,
                indices,
            },
            positions,
        )
    }

    /// Relabel columns through `perm` (old ID → new ID), re-sorting each row.
    /// Returns the relabeled matrix and, per position, the original position.
    pub fn permute_cols(&self, perm: &[VId]) -> (Csr, Vec<u32>) {
        assert_eq!(perm.len(), self.num_cols, "permutation length mismatch");
        let mut indptr = self.indptr.clone();
        let mut entries: Vec<(VId, u32)> = Vec::with_capacity(self.nnz());
        for r in 0..self.num_rows {
            let start = self.indptr[r];
            let end = self.indptr[r + 1];
            let mut row: Vec<(VId, u32)> = self.indices[start..end]
                .iter()
                .enumerate()
                .map(|(i, &c)| (perm[c as usize], (start + i) as u32))
                .collect();
            row.sort_unstable();
            entries.extend(row);
        }
        indptr.copy_from_slice(&self.indptr);
        let indices = entries.iter().map(|&(c, _)| c).collect();
        let positions = entries.iter().map(|&(_, p)| p).collect();
        (
            Csr {
                num_rows: self.num_rows,
                num_cols: self.num_cols,
                indptr,
                indices,
            },
            positions,
        )
    }

    /// Memory footprint of the index structures in bytes (used by cache cost
    /// models).
    pub fn index_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<VId>()
    }

    /// Total heap footprint in bytes (currently identical to
    /// [`Csr::index_bytes`]; kept separate so footprint reporting survives
    /// future payload fields).
    pub fn mem_bytes(&self) -> u64 {
        self.index_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 3x4 matrix, rows: {1,3}, {}, {0,2}
        Csr::new(3, 4, vec![0, 2, 2, 4], vec![1, 3, 0, 2])
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 4);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), &[1, 3]);
        assert_eq!(m.row(1), &[] as &[VId]);
        assert_eq!(m.degree(2), 2);
        assert_eq!(m.row_start(2), 2);
        assert!(m.contains(0, 3));
        assert!(!m.contains(0, 2));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_non_monotone_indptr() {
        let _ = Csr::new(2, 2, vec![0, 2, 1], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicate_columns() {
        let _ = Csr::new(1, 3, vec![0, 2], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_column() {
        let _ = Csr::new(1, 2, vec![0, 1], vec![5]);
    }

    #[test]
    fn try_new_rejects_empty_indptr() {
        // Regression: this used to panic on the `indptr[0]` read instead of
        // reporting the length violation.
        assert_eq!(
            Csr::try_new(2, 2, vec![], vec![]),
            Err(CsrError::IndptrLength {
                expected: 3,
                got: 0
            })
        );
        assert_eq!(
            Csr::try_new(0, 0, vec![], vec![]),
            Err(CsrError::IndptrLength {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn try_new_rejects_non_monotone_indptr() {
        assert_eq!(
            Csr::try_new(2, 2, vec![0, 2, 1], vec![0, 1]),
            Err(CsrError::IndptrNotMonotone { row: 1 })
        );
    }

    #[test]
    fn try_new_rejects_nnz_mismatch() {
        assert_eq!(
            Csr::try_new(2, 2, vec![0, 1, 2], vec![0, 1, 0]),
            Err(CsrError::NnzMismatch {
                indptr_end: 2,
                nnz: 3
            })
        );
    }

    #[test]
    fn try_new_rejects_bad_start_and_columns() {
        assert_eq!(
            Csr::try_new(1, 2, vec![1, 1], vec![]),
            Err(CsrError::IndptrStart { got: 1 })
        );
        assert_eq!(
            Csr::try_new(1, 3, vec![0, 2], vec![1, 1]),
            Err(CsrError::ColumnsNotIncreasing { row: 0 })
        );
        assert_eq!(
            Csr::try_new(1, 2, vec![0, 1], vec![5]),
            Err(CsrError::ColumnOutOfBounds {
                row: 0,
                col: 5,
                num_cols: 2
            })
        );
    }

    #[test]
    fn try_new_accepts_valid_parts() {
        let m = Csr::try_new(3, 4, vec![0, 2, 2, 4], vec![1, 3, 0, 2]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn error_display_matches_panic_vocabulary() {
        // The should_panic tests above key on these substrings; Display is
        // the single source of both.
        let e = CsrError::IndptrNotMonotone { row: 0 };
        assert!(e.to_string().contains("monotone"));
        let e = CsrError::ColumnsNotIncreasing { row: 3 };
        assert!(e.to_string().contains("strictly increasing"));
        let e = CsrError::ColumnOutOfBounds {
            row: 1,
            col: 9,
            num_cols: 4,
        };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_positions_identify_original_entries() {
        let m = sample();
        let (t, pos) = m.transpose_with_positions();
        assert_eq!(t.num_rows(), 4);
        // entry k of transpose is (row=old col, col=old row) of original pos[k]
        let mut orig_entries = vec![];
        for (r, cols, base) in m.iter_rows() {
            for (i, &c) in cols.iter().enumerate() {
                orig_entries.push((base + i, r, c));
            }
        }
        for (tr, tcols, tbase) in t.iter_rows() {
            for (i, &tc) in tcols.iter().enumerate() {
                let p = pos[tbase + i] as usize;
                let (_, orow, ocol) = orig_entries.iter().find(|e| e.0 == p).unwrap();
                assert_eq!((*ocol, *orow), (tr, tc));
            }
        }
    }

    #[test]
    fn slice_cols_keeps_window() {
        let m = sample();
        let (s, pos) = m.slice_cols(1, 3);
        assert_eq!(s.row(0), &[1]);
        assert_eq!(s.row(1), &[] as &[VId]);
        assert_eq!(s.row(2), &[2]);
        // positions point at entries with value in window
        for &p in &pos {
            let v = m.indices()[p as usize];
            assert!((1..3).contains(&v));
        }
        assert_eq!(pos.len(), s.nnz());
    }

    #[test]
    fn slice_cols_full_window_is_identity() {
        let m = sample();
        let (s, pos) = m.slice_cols(0, 4);
        assert_eq!(s, m);
        assert_eq!(pos, vec![0, 1, 2, 3]);
    }

    #[test]
    fn permute_cols_relabels_and_sorts() {
        let m = sample();
        // reverse the column labels: 0<->3, 1<->2
        let perm: Vec<VId> = vec![3, 2, 1, 0];
        let (p, pos) = m.permute_cols(&perm);
        assert_eq!(p.row(0), &[0, 2]); // {1,3} -> {2,0} sorted
        assert_eq!(p.row(2), &[1, 3]); // {0,2} -> {3,1} sorted
        assert_eq!(pos.len(), m.nnz());
        // Each new entry must equal perm[old entry]
        for (r, cols, base) in p.iter_rows() {
            for (i, &c) in cols.iter().enumerate() {
                let old = m.indices()[pos[base + i] as usize];
                assert_eq!(perm[old as usize], c);
                let _ = r;
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::empty(2, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(1), &[] as &[VId]);
        let t = m.transpose();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn index_bytes_positive() {
        assert!(sample().index_bytes() > 0);
    }
}
