//! Graph statistics (Table II and cost-model inputs).

use crate::{Graph, VId};

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub avg: f64,
    /// Median degree.
    pub p50: usize,
    /// 99th-percentile degree.
    pub p99: usize,
}

impl DegreeStats {
    fn from_degrees(mut degs: Vec<usize>) -> Self {
        if degs.is_empty() {
            return Self {
                min: 0,
                max: 0,
                avg: 0.0,
                p50: 0,
                p99: 0,
            };
        }
        degs.sort_unstable();
        let n = degs.len();
        let sum: usize = degs.iter().sum();
        Self {
            min: degs[0],
            max: degs[n - 1],
            avg: sum as f64 / n as f64,
            p50: degs[n / 2],
            p99: degs[(n * 99) / 100],
        }
    }
}

/// In-degree statistics.
pub fn in_degree_stats(g: &Graph) -> DegreeStats {
    DegreeStats::from_degrees((0..g.num_vertices() as VId).map(|v| g.in_degree(v)).collect())
}

/// Out-degree statistics.
pub fn out_degree_stats(g: &Graph) -> DegreeStats {
    DegreeStats::from_degrees((0..g.num_vertices() as VId).map(|v| g.out_degree(v)).collect())
}

/// Adjacency-matrix sparsity: fraction of zero entries.
pub fn sparsity(g: &Graph) -> f64 {
    let n = g.num_vertices() as f64;
    if n == 0.0 {
        return 1.0;
    }
    1.0 - g.num_edges() as f64 / (n * n)
}

/// A Table II-style row for reports.
pub fn table2_row(name: &str, g: &Graph) -> String {
    format!(
        "{name:<16} |V|={:>9} |E|={:>11} avg_deg={:>7.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_graph_stats_are_tight() {
        let g = generators::uniform(1000, 16, 1);
        let s = in_degree_stats(&g);
        assert!((s.avg - 16.0).abs() < 1.0);
        assert!(s.p99 <= 2 * 16 + 4);
        assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn power_law_p99_far_exceeds_median() {
        let g = generators::power_law(3000, 20, 0.8, 2);
        let s = out_degree_stats(&g);
        assert!(s.p99 > 2 * s.p50.max(1), "p99={} p50={}", s.p99, s.p50);
    }

    #[test]
    fn sparsity_matches_definition() {
        let g = generators::uniform(100, 10, 3);
        let sp = sparsity(&g);
        let expect = 1.0 - g.num_edges() as f64 / 10_000.0;
        assert!((sp - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let g = crate::Graph::from_edges(0, &[]);
        let s = in_degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(sparsity(&g), 1.0);
    }

    #[test]
    fn table2_row_contains_counts() {
        let g = generators::uniform(50, 4, 1);
        let row = table2_row("test-graph", &g);
        assert!(row.contains("test-graph"));
        assert!(row.contains("50"));
    }
}
