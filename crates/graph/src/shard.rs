//! Destination sharding with halo index plans (fg-shard).
//!
//! A [`ShardPlan`] splits a graph's *destination* vertices across `S`
//! shards. Each shard owns a disjoint set of destinations and materializes
//! a **local graph** over its `locals` — the owned vertices plus the
//! **halo**: every in-neighbor of an owned vertex that some other shard
//! owns. Owned rows keep *all* their in-edges (relabeled to local IDs);
//! halo rows are empty — a halo vertex is only ever read as a source, its
//! value arrives from its owner through the exchange plan.
//!
//! Two invariants make shard-parallel inference **bitwise** identical to
//! single-worker inference (the contract `fgcheck --shard` enforces):
//!
//! 1. `locals` ascend in global ID, so ascending-local source order within
//!    an owned row equals ascending-global order — the exact accumulation
//!    order the CPU kernels use regardless of partition count.
//! 2. An owned row's local in-degree equals its global in-degree, so
//!    degree-normalized reducers (mean, edge softmax) see identical
//!    denominators.
//!
//! The per-shard exchange plan ([`RemoteRead`]) is computed once per
//! `(graph, shard count, strategy)`: one entry per halo vertex naming the
//! owning shard and the vertex's local index there. Every remote read is
//! covered exactly once — no duplicate gathers — which the check family
//! asserts mechanically.

use std::fmt;
use std::str::FromStr;

use crate::{Graph, VId};

/// How destinations are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardStrategy {
    /// Contiguous balanced vertex-ID ranges (the 1D partitioner's width
    /// math, without clamping — shards beyond `|V|` come out empty).
    Range,
    /// Deterministic greedy balance by in-degree: vertices sorted by
    /// descending in-degree (ties by ID) land on the least-loaded shard,
    /// measured in edges — the hybrid-partitioning idea applied to load
    /// rather than format.
    Degree,
}

impl ShardStrategy {
    /// Stable lowercase name used in descriptors, CLI flags, and metrics.
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::Range => "range",
            ShardStrategy::Degree => "degree",
        }
    }

    /// Both strategies, in display order.
    pub const ALL: [ShardStrategy; 2] = [ShardStrategy::Range, ShardStrategy::Degree];
}

impl fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ShardStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "range" => Ok(ShardStrategy::Range),
            "degree" => Ok(ShardStrategy::Degree),
            other => Err(format!("unknown shard strategy {other:?} (range|degree)")),
        }
    }
}

/// One gather in the halo-exchange plan: after every layer, this shard
/// overwrites row `local` of its activations with row `owner_local` of
/// shard `owner`'s activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteRead {
    /// Index into this shard's `locals`.
    pub local: u32,
    /// Shard that owns (computes) the vertex.
    pub owner: u32,
    /// The vertex's index in the owner's `locals`.
    pub owner_local: u32,
}

/// One shard: its owned destinations, the halo it reads, the local graph
/// it aggregates over, and its exchange plan.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Owned destination vertices, ascending global IDs.
    owned: Vec<VId>,
    /// Owned ∪ halo, ascending global IDs. Local vertex `i` is global
    /// `locals[i]`.
    locals: Vec<VId>,
    /// Halo vertices (locals owned elsewhere), ascending global IDs.
    halo: Vec<VId>,
    /// Square graph over `locals`: owned rows carry all their global
    /// in-edges (local column IDs); halo rows are empty.
    local_graph: Graph,
    /// One gather per halo vertex; sorted by `local`.
    remote: Vec<RemoteRead>,
}

impl Shard {
    /// Owned destination vertices (ascending global IDs).
    pub fn owned(&self) -> &[VId] {
        &self.owned
    }

    /// Local→global vertex map (ascending).
    pub fn locals(&self) -> &[VId] {
        &self.locals
    }

    /// Halo vertices (ascending global IDs).
    pub fn halo(&self) -> &[VId] {
        &self.halo
    }

    /// The shard-local graph (owned rows full, halo rows empty).
    pub fn graph(&self) -> &Graph {
        &self.local_graph
    }

    /// Exchange plan: one [`RemoteRead`] per halo vertex, sorted by local
    /// index.
    pub fn remote_reads(&self) -> &[RemoteRead] {
        &self.remote
    }

    /// Local index of global vertex `v`, if it is in this shard's locals.
    pub fn local_of(&self, v: VId) -> Option<u32> {
        self.locals.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Edges stored locally (equals the summed global in-degree of the
    /// owned vertices).
    pub fn num_edges(&self) -> usize {
        self.local_graph.num_edges()
    }

    /// Heap footprint of this shard's slice: index vectors, exchange plan,
    /// and the local graph topology.
    pub fn mem_bytes(&self) -> u64 {
        let ids = (self.owned.len() + self.locals.len() + self.halo.len())
            * std::mem::size_of::<VId>();
        let remote = self.remote.len() * std::mem::size_of::<RemoteRead>();
        self.local_graph.mem_bytes() + (ids + remote) as u64
    }
}

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    strategy: ShardStrategy,
    num_vertices: usize,
    /// Global vertex → owning shard.
    owner: Vec<u32>,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Shard `graph`'s destinations `shards` ways (floored to 1) under
    /// `strategy`, and compute each shard's local graph and exchange plan.
    /// Shards may own zero vertices when `shards > |V|` (Range) or the
    /// degree balance leaves one empty; empty shards have empty locals and
    /// an empty local graph, and run the layer loop uniformly.
    pub fn build(graph: &Graph, shards: usize, strategy: ShardStrategy) -> Self {
        let shards = shards.max(1);
        let n = graph.num_vertices();
        let owner = match strategy {
            ShardStrategy::Range => {
                let mut owner = vec![0u32; n];
                let base = n / shards;
                let extra = n % shards;
                let mut lo = 0usize;
                for s in 0..shards {
                    let width = base + usize::from(s < extra);
                    owner[lo..lo + width].fill(s as u32);
                    lo += width;
                }
                owner
            }
            ShardStrategy::Degree => {
                let mut order: Vec<VId> = (0..n as VId).collect();
                // Descending in-degree, ties ascending by ID: deterministic.
                order.sort_by_key(|&v| (std::cmp::Reverse(graph.in_degree(v)), v));
                let mut owner = vec![0u32; n];
                let mut load = vec![0u64; shards];
                for v in order {
                    let s = (0..shards).min_by_key(|&s| (load[s], s)).expect("shards >= 1");
                    owner[v as usize] = s as u32;
                    // An isolated vertex still costs one output row.
                    load[s] += graph.in_degree(v).max(1) as u64;
                }
                owner
            }
        };

        // Pass 1: owned and locals (owned ∪ in-neighbors owned elsewhere).
        let mut owned: Vec<Vec<VId>> = vec![Vec::new(); shards];
        for v in 0..n as VId {
            owned[owner[v as usize] as usize].push(v);
        }
        let mut locals: Vec<Vec<VId>> = Vec::with_capacity(shards);
        for (s, own) in owned.iter().enumerate() {
            let mut l = own.clone();
            for &v in own {
                for &u in graph.in_csr().row(v) {
                    if owner[u as usize] as usize != s {
                        l.push(u);
                    }
                }
            }
            l.sort_unstable();
            l.dedup();
            locals.push(l);
        }

        // Pass 2: local graphs and exchange plans (owner locals all known).
        let shard_structs = (0..shards)
            .map(|s| {
                let l = &locals[s];
                let local_of = |v: VId| l.binary_search(&v).expect("local present") as VId;
                let mut edges = Vec::new();
                for &v in &owned[s] {
                    let dst = local_of(v);
                    for &u in graph.in_csr().row(v) {
                        edges.push((local_of(u), dst));
                    }
                }
                let local_graph = Graph::from_edges(l.len(), &edges);
                let mut halo = Vec::new();
                let mut remote = Vec::new();
                for (i, &v) in l.iter().enumerate() {
                    let t = owner[v as usize];
                    if t as usize != s {
                        halo.push(v);
                        let owner_local = locals[t as usize]
                            .binary_search(&v)
                            .expect("owner holds its vertex")
                            as u32;
                        remote.push(RemoteRead {
                            local: i as u32,
                            owner: t,
                            owner_local,
                        });
                    }
                }
                Shard {
                    owned: owned[s].clone(),
                    locals: l.clone(),
                    halo,
                    local_graph,
                    remote,
                }
            })
            .collect();

        ShardPlan {
            strategy,
            num_vertices: n,
            owner,
            shards: shard_structs,
        }
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The strategy this plan was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Vertices in the full graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Owning shard of global vertex `v`.
    pub fn owner_of(&self, v: VId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Shard `s`.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// Iterate the shards.
    pub fn shards(&self) -> impl Iterator<Item = &Shard> + '_ {
        self.shards.iter()
    }

    /// Heap footprint of shard `s`'s slice (see [`Shard::mem_bytes`]).
    pub fn shard_mem_bytes(&self, s: usize) -> u64 {
        self.shards[s].mem_bytes()
    }

    /// Total heap footprint: every shard's slice plus the global owner map.
    pub fn mem_bytes(&self) -> u64 {
        let shards: u64 = self.shards.iter().map(Shard::mem_bytes).sum();
        shards + (self.owner.len() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_invariants(g: &Graph, plan: &ShardPlan) {
        let n = g.num_vertices();
        // Ownership partitions the vertex set.
        let mut seen = vec![false; n];
        for (s, shard) in plan.shards().enumerate() {
            for &v in shard.owned() {
                assert_eq!(plan.owner_of(v), s);
                assert!(!seen[v as usize], "vertex {v} owned twice");
                seen[v as usize] = true;
            }
            assert!(shard.owned().windows(2).all(|w| w[0] < w[1]));
            assert!(shard.locals().windows(2).all(|w| w[0] < w[1]));
            // locals == owned ∪ halo, disjointly.
            assert_eq!(shard.owned().len() + shard.halo().len(), shard.locals().len());
            // Every remote read covers one halo vertex exactly once, and
            // points at the owner's copy of the same vertex.
            assert_eq!(shard.remote_reads().len(), shard.halo().len());
            for (r, &h) in shard.remote_reads().iter().zip(shard.halo()) {
                assert_eq!(shard.locals()[r.local as usize], h);
                assert_eq!(plan.owner_of(h), r.owner as usize);
                assert_eq!(
                    plan.shard(r.owner as usize).locals()[r.owner_local as usize],
                    h
                );
            }
            // Owned rows keep all their global in-edges; halo rows are empty.
            let mut local_edges = 0usize;
            for (i, &v) in shard.locals().iter().enumerate() {
                let row = shard.graph().in_csr().row(i as VId);
                if plan.owner_of(v) == s {
                    let global: Vec<VId> = g.in_csr().row(v).to_vec();
                    let mapped: Vec<VId> =
                        row.iter().map(|&l| shard.locals()[l as usize]).collect();
                    assert_eq!(mapped, global, "owned row {v} edge mismatch");
                    local_edges += row.len();
                } else {
                    assert!(row.is_empty(), "halo row {v} must be empty");
                }
            }
            assert_eq!(local_edges, shard.num_edges());
        }
        assert!(seen.into_iter().all(|x| x), "ownership must cover all vertices");
        let total_edges: usize = plan.shards().map(Shard::num_edges).sum();
        assert_eq!(total_edges, g.num_edges(), "every edge stored exactly once");
    }

    #[test]
    fn range_and_degree_plans_hold_invariants() {
        for (n, deg, seed) in [(60, 4, 1), (97, 3, 2), (10, 1, 3)] {
            let g = generators::uniform(n, deg, seed);
            for shards in [1, 2, 3, 4, 8] {
                for strategy in ShardStrategy::ALL {
                    let plan = ShardPlan::build(&g, shards, strategy);
                    assert_eq!(plan.num_shards(), shards);
                    check_invariants(&g, &plan);
                }
            }
        }
    }

    #[test]
    fn more_shards_than_vertices_leaves_empty_shards() {
        let g = generators::uniform(3, 2, 7);
        for strategy in ShardStrategy::ALL {
            let plan = ShardPlan::build(&g, 8, strategy);
            assert_eq!(plan.num_shards(), 8);
            check_invariants(&g, &plan);
            let empty = plan.shards().filter(|s| s.owned().is_empty()).count();
            assert!(empty >= 5, "8 shards on 3 vertices: got {empty} empty");
            for shard in plan.shards() {
                if shard.owned().is_empty() {
                    assert!(shard.locals().is_empty(), "empty shard has no halo");
                    assert_eq!(shard.graph().num_vertices(), 0);
                }
            }
        }
    }

    #[test]
    fn isolated_vertices_are_owned_with_empty_rows() {
        // Edgeless graph: every vertex isolated; no halo anywhere.
        let g = Graph::from_edges(5, &[]);
        for strategy in ShardStrategy::ALL {
            let plan = ShardPlan::build(&g, 3, strategy);
            check_invariants(&g, &plan);
            for shard in plan.shards() {
                assert!(shard.halo().is_empty());
                assert_eq!(shard.num_edges(), 0);
            }
        }
    }

    #[test]
    fn degree_strategy_balances_edges() {
        // A heavy hub: Range puts the hub's whole row on one shard; Degree
        // must spread load so no shard exceeds ~half the edges.
        let mut edges = Vec::new();
        for u in 1..40u32 {
            edges.push((u, 0)); // vertex 0 is a 39-in-degree hub
        }
        for u in 1..39u32 {
            edges.push((u, u + 1));
        }
        let g = Graph::from_edges(40, &edges);
        let plan = ShardPlan::build(&g, 4, ShardStrategy::Degree);
        check_invariants(&g, &plan);
        let max_edges = plan.shards().map(Shard::num_edges).max().unwrap();
        let mean = g.num_edges() as f64 / 4.0;
        assert!(
            (max_edges as f64) < 2.5 * mean,
            "degree strategy imbalance: max {max_edges} vs mean {mean}"
        );
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in ShardStrategy::ALL {
            assert_eq!(s.name().parse::<ShardStrategy>().unwrap(), s);
        }
        assert!("hash".parse::<ShardStrategy>().is_err());
    }

    #[test]
    fn mem_bytes_sum_shards_plus_owner_map() {
        let g = generators::uniform(50, 4, 9);
        let plan = ShardPlan::build(&g, 4, ShardStrategy::Range);
        let per_shard: u64 = (0..4).map(|s| plan.shard_mem_bytes(s)).sum();
        assert_eq!(plan.mem_bytes(), per_shard + 50 * 4);
        assert!(per_shard > 0);
    }
}
