//! Graph I/O: whitespace edge lists and MatrixMarket pattern files.
//!
//! Downstream users bring their own graphs; these loaders cover the two
//! formats GNN datasets most commonly ship in. Both are strict about
//! structure (good error messages beat silent truncation) but tolerant of
//! comments and blank lines.

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Graph, VId};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A vertex ID at or beyond the declared vertex count.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// Offending ID.
        id: u64,
        /// Declared vertex count.
        n: usize,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::VertexOutOfRange { line, id, n } => {
                write!(f, "line {line}: vertex {id} out of range for {n} vertices")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a whitespace-separated edge list: one `src dst` pair per line,
/// `#`-prefixed comments and blank lines ignored, vertex IDs 0-based.
/// `n` is the vertex count (IDs must be `< n`).
pub fn read_edge_list<R: Read>(reader: R, n: usize) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VId, VId)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("expected `src dst`, got {trimmed:?}"),
            });
        };
        let parse = |tok: &str| -> Result<u64, IoError> {
            tok.parse().map_err(|_| IoError::Parse {
                line: lineno,
                message: format!("not an integer: {tok:?}"),
            })
        };
        let (s, d) = (parse(a)?, parse(b)?);
        for id in [s, d] {
            if id >= n as u64 {
                return Err(IoError::VertexOutOfRange { line: lineno, id, n });
            }
        }
        edges.push((s as VId, d as VId));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Write the canonical edge list, one `src dst` per line with a `#` header.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d, _) in graph.edges() {
        writeln!(writer, "{s} {d}")?;
    }
    Ok(())
}

/// Read a MatrixMarket `coordinate pattern` file as a directed graph
/// (row → column; 1-based indices, as the format specifies). The matrix
/// must be square; `general` and `symmetric` symmetry are supported
/// (symmetric entries are mirrored).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // header
    let (_, header) = lines.next().ok_or(IoError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let header = header?;
    let lower = header.to_ascii_lowercase();
    if !lower.starts_with("%%matrixmarket matrix coordinate") {
        return Err(IoError::Parse {
            line: 1,
            message: format!("not a MatrixMarket coordinate header: {header:?}"),
        });
    }
    let symmetric = lower.contains("symmetric");

    // size line (skipping comments)
    let mut size: Option<(usize, usize, usize)> = None;
    let mut size_line = 0usize;
    for (idx, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let nums: Vec<&str> = t.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(IoError::Parse {
                line: idx + 1,
                message: format!("expected `rows cols nnz`, got {t:?}"),
            });
        }
        let parse = |tok: &str| -> Result<usize, IoError> {
            tok.parse().map_err(|_| IoError::Parse {
                line: idx + 1,
                message: format!("not an integer: {tok:?}"),
            })
        };
        size = Some((parse(nums[0])?, parse(nums[1])?, parse(nums[2])?));
        size_line = idx + 1;
        break;
    }
    let Some((rows, cols, nnz)) = size else {
        return Err(IoError::Parse {
            line: 1,
            message: "missing size line".into(),
        });
    };
    if rows != cols {
        return Err(IoError::Parse {
            line: size_line,
            message: format!("adjacency must be square, got {rows}x{cols}"),
        });
    }

    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(nnz * if symmetric { 2 } else { 1 });
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse {
                line: idx + 1,
                message: format!("expected `row col`, got {t:?}"),
            });
        };
        let parse = |tok: &str| -> Result<u64, IoError> {
            tok.parse().map_err(|_| IoError::Parse {
                line: idx + 1,
                message: format!("not an integer: {tok:?}"),
            })
        };
        let (r, c) = (parse(a)?, parse(b)?);
        if r == 0 || c == 0 || r > rows as u64 || c > cols as u64 {
            return Err(IoError::VertexOutOfRange {
                line: idx + 1,
                id: r.max(c),
                n: rows,
            });
        }
        // 1-based -> 0-based; row -> col as src -> dst
        edges.push(((r - 1) as VId, (c - 1) as VId));
        if symmetric && r != c {
            edges.push(((c - 1) as VId, (r - 1) as VId));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(IoError::Parse {
            line: size_line,
            message: format!("size line declares {nnz} entries, found {seen}"),
        });
    }
    Ok(Graph::from_edges(rows, &edges))
}

/// Load an edge-list file from disk.
pub fn load_edge_list(path: &Path, n: usize) -> Result<Graph, IoError> {
    read_edge_list(fs::File::open(path)?, n)
}

/// Save an edge-list file to disk.
pub fn save_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    write_edge_list(graph, fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_round_trip() {
        let g = generators::uniform(120, 5, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), 120).unwrap();
        assert_eq!(g.edge_list(), g2.edge_list());
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# header\n\n0 1\n # another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 3).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        match read_edge_list(text.as_bytes(), 4) {
            Err(IoError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let text = "0 1\n2 9\n";
        match read_edge_list(text.as_bytes(), 4) {
            Err(IoError::VertexOutOfRange { line: 2, id: 9, n: 4 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let text = "0\n";
        assert!(matches!(
            read_edge_list(text.as_bytes(), 4),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn matrix_market_general() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % comment\n\
                    3 3 3\n\
                    1 2\n\
                    2 3\n\
                    3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_list(), vec![(2, 0), (0, 1), (1, 2)]);
    }

    #[test]
    fn matrix_market_symmetric_mirrors_edges() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        // (1,0) mirrored to (0,1); diagonal (2,2) not duplicated
        assert_eq!(g.num_edges(), 3);
        assert!(g.in_csr().contains(0, 1));
        assert!(g.in_csr().contains(1, 0));
        assert!(g.in_csr().contains(2, 2));
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(matches!(
            read_matrix_market("hello\n".as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
        let nonsquare = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n";
        assert!(read_matrix_market(nonsquare.as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(matches!(
            read_matrix_market(oob.as_bytes()),
            Err(IoError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let g = generators::uniform(40, 3, 2);
        let path = std::env::temp_dir().join("fg_graph_io_test.el");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path, 40).unwrap();
        assert_eq!(g.edge_list(), g2.edge_list());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Parse {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = IoError::VertexOutOfRange { line: 2, id: 10, n: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
    }
}
