//! Stand-ins for the paper's evaluation datasets (Table II).
//!
//! The real `ogbn-proteins` and `reddit` datasets are multi-hundred-MB
//! downloads; this repository substitutes deterministic synthetic graphs
//! matched to the published vertex count, edge count, and degree character
//! (see DESIGN.md, substitution table). A `scale` divisor shrinks the vertex
//! count while preserving average degree, so the benchmark harness can run
//! the full sweep in minutes; `scale = 1` reproduces the paper's sizes.

use crate::generators;
use crate::Graph;

/// Which evaluation dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Protein-association graph: 132.5 K vertices, 79.1 M edges, avg deg 597.
    /// Degree distribution is dense and fairly regular → uniform generator.
    OgbnProteins,
    /// Reddit post graph: 233.0 K vertices, 114.8 M edges, avg deg 493.
    /// Social-interaction skew → power-law generator.
    Reddit,
    /// The paper's synthetic `rand-100K`: 20 K vertices with avg degree 2000
    /// plus 80 K vertices with avg degree 100 (48 M edges total).
    Rand100K,
}

impl Dataset {
    /// All three evaluation datasets in Table II order.
    pub const ALL: [Dataset; 3] = [Dataset::OgbnProteins, Dataset::Reddit, Dataset::Rand100K];

    /// The dataset's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::OgbnProteins => "ogbn-proteins",
            Dataset::Reddit => "reddit",
            Dataset::Rand100K => "rand-100K",
        }
    }

    /// Full-size specification from Table II.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::OgbnProteins => DatasetSpec {
                dataset: self,
                vertices: 132_500,
                avg_degree: 597,
            },
            Dataset::Reddit => DatasetSpec {
                dataset: self,
                vertices: 233_000,
                avg_degree: 493,
            },
            Dataset::Rand100K => DatasetSpec {
                dataset: self,
                vertices: 100_000,
                avg_degree: 480,
            },
        }
    }

    /// Generate the stand-in graph at `1/scale` of the paper's vertex count
    /// (average degree preserved). `scale = 1` is full size.
    pub fn generate(self, scale: usize) -> Graph {
        assert!(scale >= 1, "scale must be >= 1");
        let seed = 0x_FEA7_0000 + self as u64;
        match self {
            Dataset::OgbnProteins => {
                let n = 132_500 / scale;
                generators::uniform(n.max(16), 597, seed)
            }
            Dataset::Reddit => {
                let n = 233_000 / scale;
                generators::power_law(n.max(16), 493, 0.6, seed)
            }
            Dataset::Rand100K => {
                let n_high = (20_000 / scale).max(4);
                let n_low = (80_000 / scale).max(12);
                generators::two_tier(n_high, 2000, n_low, 100, seed)
            }
        }
    }
}

/// Published statistics for a dataset (Table II row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which dataset.
    pub dataset: Dataset,
    /// Paper vertex count.
    pub vertices: usize,
    /// Paper average degree.
    pub avg_degree: usize,
}

impl DatasetSpec {
    /// Paper edge count implied by the published |V| and average degree.
    pub fn edges(&self) -> usize {
        self.vertices * self.avg_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::OgbnProteins.name(), "ogbn-proteins");
        assert_eq!(Dataset::Reddit.name(), "reddit");
        assert_eq!(Dataset::Rand100K.name(), "rand-100K");
    }

    #[test]
    fn scaled_generation_preserves_degree_character() {
        // scale 64 keeps tests quick: ~2K-3.6K vertices
        for ds in Dataset::ALL {
            let g = ds.generate(64);
            let spec = ds.spec();
            let avg = g.avg_degree();
            let target = spec.avg_degree as f64;
            assert!(
                avg > 0.5 * target && avg < 1.2 * target,
                "{}: avg degree {avg} vs target {target}",
                ds.name()
            );
        }
    }

    #[test]
    fn rand100k_is_two_tier() {
        let g = Dataset::Rand100K.generate(100);
        // first 200 vertices are the high-degree tier
        let high_avg: f64 = (0..200).map(|v| g.out_degree(v) as f64).sum::<f64>() / 200.0;
        let low_avg: f64 =
            (200..g.num_vertices() as u32).map(|v| g.out_degree(v) as f64).sum::<f64>()
                / (g.num_vertices() - 200) as f64;
        assert!(high_avg > 5.0 * low_avg, "high {high_avg} low {low_avg}");
    }

    #[test]
    fn spec_edge_counts_match_table2_order_of_magnitude() {
        assert_eq!(Dataset::OgbnProteins.spec().edges(), 79_102_500);
        assert_eq!(Dataset::Reddit.spec().edges(), 114_869_000);
        assert_eq!(Dataset::Rand100K.spec().edges(), 48_000_000);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = Dataset::Reddit.generate(0);
    }
}
