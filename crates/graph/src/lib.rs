//! # fg-graph
//!
//! Graph substrate for the FeatGraph reproduction.
//!
//! The paper's kernels consume a sparse adjacency matrix; everything those
//! kernels need from the graph side lives here:
//!
//! * [`coo::Coo`] / [`csr::Csr`] — edge-list and compressed-row formats with
//!   checked construction and conversions. By convention a [`Graph`] stores
//!   the adjacency in *destination-major* CSR (row `v` lists the sources
//!   `u ∈ N_in(v)`), which is the orientation generalized SpMM aggregates
//!   over, plus the transposed (source-major) view for push-style traversal.
//! * [`generators`] — deterministic synthetic graphs: uniform, power-law
//!   (Chung–Lu style), stochastic block model, the paper's `rand-100K`
//!   two-tier-degree graph, and scaled stand-ins for `ogbn-proteins` and
//!   `reddit` (Table II).
//! * [`partition`] — 1D source-vertex partitioning (§III-C1, Fig. 6) used by
//!   the CPU SpMM template for cache optimization.
//! * [`hilbert`] — Hilbert-curve edge ordering (§III-C1) used by the CPU
//!   SDDMM template for locality over both source and destination features.
//! * [`reorder`] — degree-based vertex split for GPU hybrid partitioning
//!   (§III-C3).
//! * [`shard`] — destination sharding with halo index plans: per-shard
//!   local graphs plus a once-per-graph exchange plan, the substrate of
//!   multi-worker sharded inference (`fg_gnn::infer_sharded`).
//! * [`stats`] — degree/sparsity statistics (drives Table II and the cost
//!   models).
//! * [`io`] — edge-list and MatrixMarket loaders for user-supplied graphs.

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod io;
pub mod generators;
pub mod hilbert;
pub mod partition;
pub mod reorder;
pub mod sampling;
pub mod shard;
pub mod stats;

pub use coo::Coo;
pub use csr::{Csr, CsrError};
pub use datasets::{Dataset, DatasetSpec};
pub use partition::PartitionedCsr;
pub use sampling::{sample_subgraph, SampleConfig, SampleError, SampledSubgraph, FULL_FANOUT};
pub use shard::{RemoteRead, Shard, ShardPlan, ShardStrategy};

/// Vertex identifier. `u32` keeps the index arrays compact — the paper's
/// largest graph (reddit, 233 K vertices / 114.8 M edges) fits comfortably.
pub type VId = u32;

/// Edge identifier (position in the canonical destination-major CSR order).
pub type EId = u32;

/// A directed graph with both adjacency orientations materialized.
///
/// * `in_csr`: destination-major — row `v` holds in-neighbors of `v`. This is
///   the adjacency-matrix orientation of Eq. (3); edge IDs are defined as
///   positions in this CSR.
/// * `out_csr`: source-major — row `u` holds out-neighbors of `u`, and the
///   parallel `out_eids` array maps each position to its canonical edge ID.
#[derive(Debug, Clone)]
pub struct Graph {
    in_csr: Csr,
    out_csr: Csr,
    out_eids: Vec<EId>,
}

impl Graph {
    /// Build from an edge list. Edges are deduplicated and sorted into the
    /// canonical order; self-loops are allowed.
    pub fn from_coo(coo: Coo) -> Self {
        let in_csr = coo.to_csr_dst_major();
        let (out_csr, out_eids) = in_csr.transpose_with_positions();
        Self {
            in_csr,
            out_csr,
            out_eids,
        }
    }

    /// Build directly from edges `(src, dst)` over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(VId, VId)]) -> Self {
        Self::from_coo(Coo::from_edges(n, edges))
    }

    /// Build from an already-validated destination-major CSR (must be
    /// square); derives the source-major view. This is how the sampler
    /// turns an induced sub-CSR into a full [`Graph`] without a round trip
    /// through an edge list.
    pub fn from_csr(in_csr: Csr) -> Self {
        assert_eq!(
            in_csr.num_rows(),
            in_csr.num_cols(),
            "adjacency CSR must be square"
        );
        let (out_csr, out_eids) = in_csr.transpose_with_positions();
        Self {
            in_csr,
            out_csr,
            out_eids,
        }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> usize {
        self.in_csr.num_rows()
    }

    /// Number of (directed) edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.in_csr.nnz()
    }

    /// Destination-major CSR (aggregation orientation).
    #[inline(always)]
    pub fn in_csr(&self) -> &Csr {
        &self.in_csr
    }

    /// Source-major CSR (push orientation).
    #[inline(always)]
    pub fn out_csr(&self) -> &Csr {
        &self.out_csr
    }

    /// For each position in [`Graph::out_csr`], the canonical edge ID.
    #[inline(always)]
    pub fn out_eids(&self) -> &[EId] {
        &self.out_eids
    }

    /// In-degree of vertex `v`.
    #[inline(always)]
    pub fn in_degree(&self, v: VId) -> usize {
        self.in_csr.row(v).len()
    }

    /// Out-degree of vertex `u`.
    #[inline(always)]
    pub fn out_degree(&self, u: VId) -> usize {
        self.out_csr.row(u).len()
    }

    /// Iterate all edges in canonical (dst-major) order as `(src, dst, eid)`.
    pub fn edges(&self) -> impl Iterator<Item = (VId, VId, EId)> + '_ {
        self.in_csr.iter_rows().flat_map(move |(dst, srcs, base)| {
            srcs.iter()
                .enumerate()
                .map(move |(i, &src)| (src, dst, (base + i) as EId))
        })
    }

    /// The edge list in canonical order (allocates).
    pub fn edge_list(&self) -> Vec<(VId, VId)> {
        self.edges().map(|(s, d, _)| (s, d)).collect()
    }

    /// Total heap footprint of the topology in bytes: both CSR orientations
    /// plus the edge-ID map.
    pub fn mem_bytes(&self) -> u64 {
        self.in_csr.mem_bytes()
            + self.out_csr.mem_bytes()
            + (self.out_eids.len() * std::mem::size_of::<EId>()) as u64
    }

    /// Average degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!((g.avg_degree() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn edge_iteration_is_dst_major_sorted() {
        let g = diamond();
        let edges: Vec<_> = g.edges().map(|(s, d, _)| (s, d)).collect();
        assert_eq!(edges, vec![(3, 0), (0, 1), (0, 2), (1, 3), (2, 3)]);
        let eids: Vec<_> = g.edges().map(|(_, _, e)| e).collect();
        assert_eq!(eids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn out_eids_map_back_to_canonical_positions() {
        let g = diamond();
        // For every out-csr position, the canonical edge (by eid) must be the
        // same (src, dst) pair.
        let canonical = g.edge_list();
        for src in 0..g.num_vertices() as VId {
            let row = g.out_csr.row(src);
            let base = g.out_csr.row_start(src);
            for (i, &dst) in row.iter().enumerate() {
                let eid = g.out_eids[base + i] as usize;
                assert_eq!(canonical[eid], (src, dst));
            }
        }
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(3, &[]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
