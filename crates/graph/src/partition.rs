//! 1D graph partitioning (§III-C1, Fig. 6).
//!
//! The CPU SpMM template partitions *source* vertices into contiguous ID
//! ranges so that each range's feature rows fit in cache; the template then
//! processes one partition at a time, keeping reads hot, and pays a merge
//! into the output between partitions. [`PartitionedCsr`] materializes the
//! per-partition sub-matrices once per `(graph, num_partitions)` pair so the
//! partitioning cost amortizes over training epochs, exactly as the paper
//! amortizes its compilation/tuning cost.

use crate::csr::Csr;
use crate::{EId, Graph, VId};

/// A destination-major CSR split into column (source-vertex) ranges.
#[derive(Debug, Clone)]
pub struct PartitionedCsr {
    /// Per-partition sub-CSR. Column IDs keep their global values.
    segments: Vec<Csr>,
    /// Per-partition, per-position canonical edge IDs (parallel to each
    /// segment's `indices`).
    segment_eids: Vec<Vec<EId>>,
    /// Source-ID range `[bounds[p], bounds[p+1])` of each partition.
    bounds: Vec<VId>,
    /// Per-partition sorted destination IDs with ≥1 stored edge. High
    /// partition counts leave most destination rows empty in each segment;
    /// kernels iterate these lists instead of scanning all `|V|` rows.
    nonempty: Vec<Vec<VId>>,
}

impl PartitionedCsr {
    /// Split the graph's in-CSR into `parts` contiguous source ranges.
    ///
    /// `parts` is clamped to `[1, |V|]`.
    pub fn build(graph: &Graph, parts: usize) -> Self {
        let n = graph.num_vertices();
        Self::build_inner(graph, parts.clamp(1, n.max(1)))
    }

    /// Like [`build`](Self::build), but without clamping `parts` to `|V|`
    /// (only floored to 1): when `parts > |V|` the trailing partitions are
    /// empty — zero-width source ranges with zero-edge segments — instead
    /// of silently collapsing to `|V|` partitions. Shard workers index
    /// partitions positionally, so the partition count must match the
    /// requested worker count exactly even on graphs smaller than the
    /// worker pool; the clamped `build` made that a panic waiting in the
    /// worker loop.
    pub fn build_exact(graph: &Graph, parts: usize) -> Self {
        Self::build_inner(graph, parts.max(1))
    }

    fn build_inner(graph: &Graph, parts: usize) -> Self {
        let n = graph.num_vertices();
        let csr = graph.in_csr();
        let mut segments = Vec::with_capacity(parts);
        let mut segment_eids = Vec::with_capacity(parts);
        let mut bounds = Vec::with_capacity(parts + 1);
        let mut nonempty = Vec::with_capacity(parts);
        let base = n / parts;
        let extra = n % parts;
        let mut lo = 0 as VId;
        bounds.push(0);
        for p in 0..parts {
            let width = base + usize::from(p < extra);
            let hi = lo + width as VId;
            let (seg, positions) = csr.slice_cols(lo, hi);
            // Positions in the dst-major CSR *are* canonical edge IDs.
            segment_eids.push(positions);
            nonempty.push(
                seg.iter_rows()
                    .filter(|(_, cols, _)| !cols.is_empty())
                    .map(|(dst, _, _)| dst)
                    .collect(),
            );
            segments.push(seg);
            bounds.push(hi);
            lo = hi;
        }
        Self {
            segments,
            segment_eids,
            bounds,
            nonempty,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.segments.len()
    }

    /// The `p`-th partition's sub-CSR.
    pub fn segment(&self, p: usize) -> &Csr {
        &self.segments[p]
    }

    /// Canonical edge IDs parallel to `segment(p).indices()`.
    pub fn segment_eids(&self, p: usize) -> &[EId] {
        &self.segment_eids[p]
    }

    /// Source-ID range of partition `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<VId> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// Sorted destination IDs with at least one edge in partition `p`.
    /// Kernels restrict their per-partition destination loop to this list —
    /// scanning all `|V|` rows per partition×tile is `O(parts × tiles × |V|)`
    /// pure overhead on high-partition-count runs.
    pub fn nonempty(&self, p: usize) -> &[VId] {
        &self.nonempty[p]
    }

    /// Total stored entries across all partitions (equals the graph's nnz).
    pub fn nnz(&self) -> usize {
        self.segments.iter().map(Csr::nnz).sum()
    }

    /// Total heap footprint in bytes: every segment CSR, its parallel edge-ID
    /// array, the bounds, and the nonempty-destination lists. This is the
    /// per-plan cost figure used by the serve engine's byte-bounded plan
    /// cache.
    pub fn mem_bytes(&self) -> u64 {
        let segs: u64 = self.segments.iter().map(Csr::mem_bytes).sum();
        let eids: u64 = self
            .segment_eids
            .iter()
            .map(|v| (v.len() * std::mem::size_of::<EId>()) as u64)
            .sum();
        let nonempty: u64 = self
            .nonempty
            .iter()
            .map(|v| (v.len() * std::mem::size_of::<VId>()) as u64)
            .sum();
        segs + eids + nonempty + (self.bounds.len() * std::mem::size_of::<VId>()) as u64
    }

    /// Iterate `(partition_index, segment, eids, src_range)`.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = (usize, &Csr, &[EId], std::ops::Range<VId>)> + '_ {
        (0..self.num_partitions())
            .map(move |p| (p, &self.segments[p], self.segment_eids[p].as_slice(), self.range(p)))
    }
}

/// Pick the number of source partitions so one partition's feature tile fits
/// in a cache of `cache_bytes`, following the paper's heuristic: the working
/// set per partition is `(partition width) × (feature tile width) × 4 bytes`
/// plus the output row tile, and should not exceed the cache.
///
/// `n` is the vertex count, `tile_cols` the feature-tile width in elements,
/// `elem_bytes` the scalar size.
pub fn partitions_for_cache(
    n: usize,
    tile_cols: usize,
    elem_bytes: usize,
    cache_bytes: usize,
) -> usize {
    if n == 0 {
        return 1;
    }
    let row_bytes = tile_cols.max(1) * elem_bytes;
    // Keep the partition's source rows within half the cache (the other half
    // holds output rows and index data).
    let budget = (cache_bytes / 2).max(row_bytes);
    let rows_per_part = (budget / row_bytes).max(1);
    n.div_ceil(rows_per_part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn partitions_cover_all_edges_exactly_once() {
        let g = generators::uniform(300, 8, 9);
        for parts in [1, 2, 3, 7, 16] {
            let pc = PartitionedCsr::build(&g, parts);
            assert_eq!(pc.nnz(), g.num_edges(), "parts={parts}");
            // Union of (dst, src) across segments == original edge set.
            let mut seen: Vec<(VId, VId)> = Vec::new();
            for (_, seg, _, range) in pc.iter() {
                for (dst, cols, _) in seg.iter_rows() {
                    for &src in cols {
                        assert!(range.contains(&src), "src outside its partition range");
                        seen.push((src, dst));
                    }
                }
            }
            seen.sort_unstable_by_key(|&(s, d)| (d, s));
            assert_eq!(seen, g.edge_list(), "parts={parts}");
        }
    }

    #[test]
    fn edge_ids_survive_partitioning() {
        let g = generators::uniform(100, 5, 4);
        let canonical = g.edge_list();
        let pc = PartitionedCsr::build(&g, 4);
        for (_, seg, eids, _) in pc.iter() {
            for (dst, cols, base) in seg.iter_rows() {
                for (i, &src) in cols.iter().enumerate() {
                    let eid = eids[base + i] as usize;
                    assert_eq!(canonical[eid], (src, dst));
                }
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_cover_vertices() {
        let g = generators::uniform(101, 3, 2);
        let pc = PartitionedCsr::build(&g, 7);
        let mut cursor = 0 as VId;
        for p in 0..pc.num_partitions() {
            let r = pc.range(p);
            assert_eq!(r.start, cursor);
            cursor = r.end;
        }
        assert_eq!(cursor as usize, g.num_vertices());
    }

    #[test]
    fn nonempty_lists_match_segment_rows() {
        let g = generators::uniform(120, 4, 7);
        for parts in [1, 3, 8] {
            let pc = PartitionedCsr::build(&g, parts);
            for (p, seg, _, _) in pc.iter() {
                let ne = pc.nonempty(p);
                assert!(ne.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
                let want: Vec<VId> = seg
                    .iter_rows()
                    .filter(|(_, cols, _)| !cols.is_empty())
                    .map(|(dst, _, _)| dst)
                    .collect();
                assert_eq!(ne, want.as_slice(), "parts={parts} p={p}");
            }
        }
    }

    #[test]
    fn parts_clamped() {
        let g = generators::uniform(5, 2, 0);
        let pc = PartitionedCsr::build(&g, 1000);
        assert_eq!(pc.num_partitions(), 5);
        let pc = PartitionedCsr::build(&g, 0);
        assert_eq!(pc.num_partitions(), 1);
    }

    #[test]
    fn build_exact_keeps_empty_partitions_on_small_graphs() {
        // Regression: |V| < partition count. Positional consumers (one
        // shard worker per partition) need exactly `parts` partitions;
        // the empty tail must be zero-width ranges with zero-edge
        // segments, safe to iterate, not a clamp or a panic.
        let g = generators::uniform(3, 2, 11);
        let pc = PartitionedCsr::build_exact(&g, 8);
        assert_eq!(pc.num_partitions(), 8);
        assert_eq!(pc.nnz(), g.num_edges(), "edges survive empty partitions");
        let mut cursor = 0 as VId;
        let mut empty = 0;
        for (p, seg, eids, range) in pc.iter() {
            assert_eq!(range.start, cursor, "ranges stay contiguous");
            cursor = range.end;
            if range.is_empty() {
                empty += 1;
                assert_eq!(seg.nnz(), 0, "partition {p} has a zero-width range");
                assert!(eids.is_empty());
                assert!(pc.nonempty(p).is_empty());
            }
        }
        assert_eq!(cursor as usize, g.num_vertices());
        assert_eq!(empty, 5, "8 partitions on 3 vertices leave 5 empty");
        // And a zero-vertex graph still yields the requested count.
        let g0 = crate::Graph::from_edges(0, &[]);
        let pc0 = PartitionedCsr::build_exact(&g0, 4);
        assert_eq!(pc0.num_partitions(), 4);
        assert_eq!(pc0.nnz(), 0);
    }

    #[test]
    fn cache_heuristic_scales_inversely_with_tile() {
        // 10_000 rows of 128 floats: 5.1 MB; with a 1 MB cache budget we need
        // several partitions, with a huge cache just one.
        let many = partitions_for_cache(10_000, 128, 4, 1 << 20);
        let one = partitions_for_cache(10_000, 128, 4, 1 << 30);
        assert!(many > 4, "got {many}");
        assert_eq!(one, 1);
        // Narrower tiles need fewer partitions.
        let narrow = partitions_for_cache(10_000, 16, 4, 1 << 20);
        assert!(narrow < many);
        assert_eq!(partitions_for_cache(0, 128, 4, 1 << 20), 1);
    }
}
