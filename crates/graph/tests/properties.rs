//! Property-based tests for the graph substrate: format round-trips,
//! partitioning/ordering invariants, reorder permutation validity.

use fg_graph::hilbert::{self, EdgeOrder};
use fg_graph::reorder::HybridSplit;
use fg_graph::{Coo, Graph, PartitionedCsr};
use proptest::prelude::*;

fn edge_lists() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #[test]
    fn coo_csr_round_trip((n, edges) in edge_lists()) {
        let coo = Coo::from_edges(n, &edges);
        let g = Graph::from_coo(coo.clone());
        // the graph's canonical edge list equals the deduplicated input
        let mut want: Vec<(u32, u32)> = edges.clone();
        want.sort_unstable_by_key(|&(s, d)| (d, s));
        want.dedup();
        prop_assert_eq!(g.edge_list(), want);
        prop_assert_eq!(g.num_edges(), coo.num_edges());
    }

    #[test]
    fn transpose_degree_conservation((n, edges) in edge_lists()) {
        let g = Graph::from_edges(n, &edges);
        let in_total: usize = (0..n as u32).map(|v| g.in_degree(v)).sum();
        let out_total: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(in_total, g.num_edges());
        prop_assert_eq!(out_total, g.num_edges());
        // double transpose is identity
        let tt = g.in_csr().transpose().transpose();
        prop_assert_eq!(&tt, g.in_csr());
    }

    #[test]
    fn partitioning_preserves_the_edge_multiset((n, edges) in edge_lists(), parts in 1usize..12) {
        let g = Graph::from_edges(n, &edges);
        let pc = PartitionedCsr::build(&g, parts);
        prop_assert_eq!(pc.nnz(), g.num_edges());
        // every edge id appears exactly once across segments
        let mut seen = vec![false; g.num_edges()];
        for (_, _, eids, _) in pc.iter() {
            for &e in eids {
                prop_assert!(!seen[e as usize], "edge {e} duplicated");
                seen[e as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_order_is_a_permutation((n, edges) in edge_lists()) {
        let g = Graph::from_edges(n, &edges);
        let order = EdgeOrder::hilbert(&g);
        let mut eids: Vec<u32> = order.visits.iter().map(|&(_, _, e)| e).collect();
        eids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(eids, expect);
    }

    #[test]
    fn hilbert_curve_round_trips(order in 1u32..12, d in 0u64..4096) {
        let side = 1u64 << order;
        let d = d % (side * side);
        let (x, y) = hilbert::d_to_xy(order, d);
        prop_assert!(x < side && y < side);
        prop_assert_eq!(hilbert::xy_to_d(order, x, y), d);
    }

    #[test]
    fn hybrid_split_is_a_valid_permutation((n, edges) in edge_lists(), threshold in 0usize..20) {
        let g = Graph::from_edges(n, &edges);
        let split = HybridSplit::by_threshold(&g, threshold);
        let mut seen = vec![false; n];
        for &p in &split.perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // high prefix is exactly the >= threshold set
        for new_id in 0..n {
            let old = split.inverse[new_id];
            let is_high = g.out_degree(old) >= threshold;
            prop_assert_eq!(is_high, new_id < split.num_high, "new_id {}", new_id);
        }
        // read fraction is a fraction
        let f = split.high_read_fraction(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
    }

    #[test]
    fn out_eids_are_consistent((n, edges) in edge_lists()) {
        let g = Graph::from_edges(n, &edges);
        let canonical = g.edge_list();
        let mut covered = vec![false; g.num_edges()];
        for src in 0..n as u32 {
            let base = g.out_csr().row_start(src);
            for (i, &dst) in g.out_csr().row(src).iter().enumerate() {
                let eid = g.out_eids()[base + i] as usize;
                prop_assert_eq!(canonical[eid], (src, dst));
                covered[eid] = true;
            }
        }
        prop_assert!(covered.iter().all(|&b| b));
    }
}
