//! # fg-ligra
//!
//! A Ligra-style shared-memory graph processing engine (Shun & Blelloch,
//! PPoPP'13), reproduced as the paper's CPU baseline.
//!
//! Ligra's model: a [`VertexSubset`] frontier plus [`edge_map`] /
//! [`vertex_map`] operators. `edge_map` switches between a *sparse* (push,
//! frontier-driven) and a *dense* (pull, all-destination) traversal based on
//! frontier size — the optimization that makes Ligra fast on traversal
//! algorithms like BFS.
//!
//! Crucially — and this is what the FeatGraph paper exploits — the per-edge
//! computation is a **blackbox** to the engine: a `dyn Fn` invoked per edge.
//! The engine cannot tile the feature dimension, cannot partition for cache,
//! and cannot vectorize across the UDF boundary. [`kernels`] implements the
//! three evaluation kernels (GCN aggregation, MLP aggregation, dot-product
//! attention) in exactly this style, and [`algorithms`] implements BFS and
//! PageRank to demonstrate the engine is a *bona fide* graph framework, not
//! a strawman.

pub mod algorithms;
pub mod engine;
pub mod kernels;
pub mod subset;

pub use engine::{edge_map, vertex_map, EdgeMapOptions};
pub use subset::VertexSubset;
