//! GNN kernels written the way a Ligra application would write them.
//!
//! Each kernel drives [`crate::engine::edge_map`] with a per-edge blackbox
//! closure that loops over the feature dimension scalar-by-scalar. The
//! engine schedules edges; it knows nothing about the feature dimension —
//! no tiling, no cache partitioning, no vectorization across the UDF
//! boundary. This is the honest rendition of the paper's CPU baseline.

use fg_graph::Graph;
use fg_tensor::Dense2;
use std::cell::RefCell;

use crate::engine::{edge_map, EdgeMapOptions};
use crate::subset::VertexSubset;

/// Shared mutable feature buffer handed to per-edge closures.
///
/// Safety relies on the traversal discipline: in the dense (pull) direction
/// a destination row is touched by exactly one worker, and per-edge rows
/// (`eid`-indexed) are unique per edge. The full-frontier GNN kernels below
/// always take the dense direction (frontier out-edges ≫ |E|/20).
struct RawRows {
    ptr: *mut f32,
    len: usize,
    cols: usize,
}

unsafe impl Sync for RawRows {}

impl RawRows {
    fn new(m: &mut Dense2<f32>) -> Self {
        Self {
            ptr: m.as_mut_slice().as_mut_ptr(),
            len: m.as_slice().len(),
            cols: m.cols(),
        }
    }

    /// # Safety
    /// Caller must guarantee exclusive access to row `r` for the duration.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, r: usize) -> &mut [f32] {
        debug_assert!((r + 1) * self.cols <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.cols), self.cols)
    }
}

/// GCN aggregation: `out[v] = Σ_{u→v} x[u]`, per-edge scalar loop.
pub fn gcn_aggregation(
    graph: &Graph,
    x: &Dense2<f32>,
    out: &mut Dense2<f32>,
    opts: &EdgeMapOptions,
) {
    assert_eq!(x.shape(), out.shape(), "shape mismatch");
    let d = x.cols();
    out.fill_zero();
    let raw = RawRows::new(out);
    let frontier = VertexSubset::all(graph.num_vertices());
    edge_map(
        graph,
        &frontier,
        &|src, dst, _eid| {
            // Safety: dense pull direction — one worker owns this dst row.
            let orow = unsafe { raw.row(dst as usize) };
            let srow = x.row(src as usize);
            let mut k = 0usize;
            while k < d {
                orow[k] += srow[k];
                k += 1;
            }
            false
        },
        &|_| true,
        opts,
    );
}

/// MLP aggregation: `out[v] = max_{u→v} relu((x[u] + x[v]) × W)`, computed
/// per edge with thread-local scratch (no fusion, no W tiling).
pub fn mlp_aggregation(
    graph: &Graph,
    x: &Dense2<f32>,
    w: &Dense2<f32>,
    out: &mut Dense2<f32>,
    opts: &EdgeMapOptions,
) {
    let d1 = x.cols();
    let d2 = w.cols();
    assert_eq!(w.rows(), d1, "weight shape mismatch");
    assert_eq!(out.shape(), (graph.num_vertices(), d2), "out shape mismatch");
    out.fill(f32::MIN);
    let raw = RawRows::new(out);
    let frontier = VertexSubset::all(graph.num_vertices());

    thread_local! {
        static SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    edge_map(
        graph,
        &frontier,
        &|src, dst, _eid| {
            SCRATCH.with(|cell| {
                let mut tmp = cell.borrow_mut();
                tmp.clear();
                tmp.resize(d1, 0.0);
                let srow = x.row(src as usize);
                let drow = x.row(dst as usize);
                let mut k = 0usize;
                while k < d1 {
                    tmp[k] = srow[k] + drow[k];
                    k += 1;
                }
                // Safety: dense pull — exclusive dst row.
                let orow = unsafe { raw.row(dst as usize) };
                let mut i = 0usize;
                while i < d2 {
                    let mut acc = 0.0f32;
                    let mut k = 0usize;
                    while k < d1 {
                        acc += tmp[k] * w.at(k, i);
                        k += 1;
                    }
                    let msg = acc.max(0.0);
                    if msg > orow[i] {
                        orow[i] = msg;
                    }
                    i += 1;
                }
            });
            false
        },
        &|_| true,
        opts,
    );
    // zero-degree rows hold the fill sentinel; normalize like DGL
    for v in 0..graph.num_vertices() {
        if graph.in_degree(v as u32) == 0 {
            out.row_mut(v).fill(0.0);
        }
    }
}

/// Dot-product attention: `out[eid] = x[src] · x[dst]`.
pub fn dot_attention(
    graph: &Graph,
    x: &Dense2<f32>,
    out: &mut Dense2<f32>,
    opts: &EdgeMapOptions,
) {
    let d = x.cols();
    assert_eq!(out.shape(), (graph.num_edges(), 1), "out shape mismatch");
    let raw = RawRows::new(out);
    let frontier = VertexSubset::all(graph.num_vertices());
    edge_map(
        graph,
        &frontier,
        &|src, dst, eid| {
            let srow = x.row(src as usize);
            let drow = x.row(dst as usize);
            let mut acc = 0.0f32;
            let mut k = 0usize;
            while k < d {
                acc += srow[k] * drow[k];
                k += 1;
            }
            // Safety: eid rows are unique per edge.
            unsafe { raw.row(eid as usize)[0] = acc };
            false
        },
        &|_| true,
        opts,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    fn features(n: usize, d: usize) -> Dense2<f32> {
        Dense2::from_fn(n, d, |v, i| ((v * 31 + i * 7) % 23) as f32 * 0.25 - 2.0)
    }

    #[test]
    fn gcn_aggregation_matches_manual_sum() {
        let g = generators::uniform(100, 5, 3);
        let x = features(100, 16);
        let mut out = Dense2::zeros(100, 16);
        gcn_aggregation(&g, &x, &mut out, &EdgeMapOptions { threads: 2, ..Default::default() });
        // manual reference
        let mut want = Dense2::zeros(100, 16);
        for (src, dst, _) in g.edges() {
            for k in 0..16 {
                let v = want.at(dst as usize, k) + x.at(src as usize, k);
                want.set(dst as usize, k, v);
            }
        }
        assert!(out.approx_eq(&want, 1e-4), "diff {}", out.max_abs_diff(&want));
    }

    #[test]
    fn mlp_aggregation_matches_manual() {
        let g = generators::uniform(50, 4, 7);
        let x = features(50, 8);
        let w = Dense2::from_fn(8, 6, |r, c| ((r + 2 * c) % 5) as f32 * 0.2 - 0.4);
        let mut out = Dense2::zeros(50, 6);
        mlp_aggregation(&g, &x, &w, &mut out, &EdgeMapOptions::default());
        for v in 0..50u32 {
            let mut want = [f32::MIN; 6];
            let srcs = g.in_csr().row(v);
            for &src in srcs {
                for (i, wv) in want.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for k in 0..8 {
                        acc += (x.at(src as usize, k) + x.at(v as usize, k)) * w.at(k, i);
                    }
                    let msg = acc.max(0.0);
                    if msg > *wv {
                        *wv = msg;
                    }
                }
            }
            if srcs.is_empty() {
                want.fill(0.0);
            }
            for (i, &wv) in want.iter().enumerate() {
                assert!(
                    (out.at(v as usize, i) - wv).abs() < 1e-3,
                    "v={v} i={i}: {} vs {wv}",
                    out.at(v as usize, i)
                );
            }
        }
    }

    #[test]
    fn dot_attention_matches_manual() {
        let g = generators::uniform(80, 3, 5);
        let x = features(80, 12);
        let mut out = Dense2::zeros(g.num_edges(), 1);
        dot_attention(&g, &x, &mut out, &EdgeMapOptions { threads: 2, ..Default::default() });
        for (src, dst, eid) in g.edges() {
            let want: f32 = (0..12)
                .map(|k| x.at(src as usize, k) * x.at(dst as usize, k))
                .sum();
            assert!((out.at(eid as usize, 0) - want).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn gcn_rejects_bad_shapes() {
        let g = generators::uniform(10, 2, 1);
        let x = features(10, 4);
        let mut out = Dense2::zeros(10, 8);
        gcn_aggregation(&g, &x, &mut out, &EdgeMapOptions::default());
    }
}
