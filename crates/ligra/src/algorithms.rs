//! Classic traversal algorithms, validating the engine on the workloads
//! Ligra was designed for.

use fg_graph::Graph;
use std::sync::atomic::{AtomicI64, Ordering};

use crate::engine::{edge_map, EdgeMapOptions};
use crate::subset::VertexSubset;

/// BFS levels from `root` (`-1` = unreachable), via frontier iteration with
/// Ligra's push/pull switching.
pub fn bfs(graph: &Graph, root: u32, opts: &EdgeMapOptions) -> Vec<i64> {
    let n = graph.num_vertices();
    let levels: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    levels[root as usize].store(0, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(n, root);
    let mut level = 0i64;
    while !frontier.is_empty() {
        level += 1;
        let lv = level;
        frontier = edge_map(
            graph,
            &frontier,
            &|_src, dst, _eid| {
                // claim unvisited destinations exactly once
                levels[dst as usize]
                    .compare_exchange(-1, lv, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            &|dst| levels[dst as usize].load(Ordering::Relaxed) == -1,
            opts,
        );
    }
    levels.into_iter().map(|a| a.into_inner()).collect()
}

/// PageRank with uniform damping, `iters` rounds over the full vertex set
/// (the traditional scalar-per-vertex workload).
pub fn pagerank(graph: &Graph, iters: usize, damping: f64, opts: &EdgeMapOptions) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let all = VertexSubset::all(n);
    for _ in 0..iters {
        // dangling vertices redistribute their mass uniformly
        let dangling: f64 = rank
            .iter()
            .enumerate()
            .filter(|&(v, _)| graph.out_degree(v as u32) == 0)
            .map(|(_, &r)| r)
            .sum();
        let contrib: Vec<f64> = rank
            .iter()
            .enumerate()
            .map(|(v, &r)| {
                let deg = graph.out_degree(v as u32);
                if deg == 0 {
                    0.0
                } else {
                    r / deg as f64
                }
            })
            .collect();
        let next: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
        // accumulate in fixed-point through the blackbox edge function
        const SCALE: f64 = 1e12;
        edge_map(
            graph,
            &all,
            &|src, dst, _eid| {
                let add = (contrib[src as usize] * SCALE) as i64;
                next[dst as usize].fetch_add(add, Ordering::Relaxed);
                false
            },
            &|_| true,
            opts,
        );
        for (v, r) in rank.iter_mut().enumerate() {
            let acc = next[v].load(Ordering::Relaxed) as f64 / SCALE;
            *r = (1.0 - damping) / n as f64 + damping * (acc + dangling / n as f64);
        }
    }
    rank
}

/// Connected components by label propagation over the *symmetrized* edge
/// relation (each vertex adopts the smallest label among its neighbors until
/// a fixed point), the third classic Ligra workload.
pub fn connected_components(graph: &Graph, opts: &EdgeMapOptions) -> Vec<u32> {
    use std::sync::atomic::AtomicBool;
    let n = graph.num_vertices();
    let labels: Vec<AtomicI64> = (0..n).map(|v| AtomicI64::new(v as i64)).collect();
    let all = VertexSubset::all(n);
    loop {
        let changed = AtomicBool::new(false);
        edge_map(
            graph,
            &all,
            &|src, dst, _eid| {
                // propagate the smaller label in both directions
                let ls = labels[src as usize].load(Ordering::Relaxed);
                let ld = labels[dst as usize].load(Ordering::Relaxed);
                if ls < ld {
                    if labels[dst as usize].fetch_min(ls, Ordering::Relaxed) > ls {
                        changed.store(true, Ordering::Relaxed);
                    }
                } else if ld < ls && labels[src as usize].fetch_min(ld, Ordering::Relaxed) > ld {
                    changed.store(true, Ordering::Relaxed);
                }
                false
            },
            &|_| true,
            opts,
        );
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    labels.into_iter().map(|a| a.into_inner() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    #[test]
    fn bfs_levels_on_a_chain() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let levels = bfs(&g, 0, &EdgeMapOptions::default());
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_vertices_stay_minus_one() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let levels = bfs(&g, 0, &EdgeMapOptions::default());
        assert_eq!(levels, vec![0, 1, -1, -1]);
    }

    #[test]
    fn bfs_matches_reference_on_random_graph() {
        let g = generators::uniform(300, 4, 17);
        let got = bfs(&g, 0, &EdgeMapOptions { threads: 2, ..Default::default() });
        // reference BFS
        let mut want = vec![-1i64; 300];
        want[0] = 0;
        let mut frontier = vec![0u32];
        let mut level = 0;
        while !frontier.is_empty() {
            level += 1;
            let mut next = vec![];
            for &u in &frontier {
                for &v in g.out_csr().row(u) {
                    if want[v as usize] == -1 {
                        want[v as usize] = level;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn connected_components_find_the_components() {
        // two disjoint cliques-ish chains plus an isolated vertex
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)];
        let g = Graph::from_edges(7, &edges);
        let cc = connected_components(&g, &EdgeMapOptions::default());
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[3], cc[4]);
        assert_eq!(cc[4], cc[5]);
        assert_ne!(cc[0], cc[3]);
        assert_eq!(cc[6], 6); // isolated keeps its own label
    }

    #[test]
    fn connected_components_on_random_graph_match_union_find() {
        let g = generators::uniform(200, 2, 29);
        let got = connected_components(&g, &EdgeMapOptions { threads: 2, ..Default::default() });
        // reference union-find over the undirected closure
        let mut parent: Vec<usize> = (0..200).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (s, d, _) in g.edges() {
            let (rs, rd) = (find(&mut parent, s as usize), find(&mut parent, d as usize));
            if rs != rd {
                parent[rs.max(rd)] = rs.min(rd);
            }
        }
        for v in 0..200 {
            for u in 0..200 {
                let same_ref = find(&mut parent, v) == find(&mut parent, u);
                let same_got = got[v] == got[u];
                assert_eq!(same_ref, same_got, "vertices {v},{u}");
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs_higher() {
        // star: everything points at vertex 0
        let edges: Vec<(u32, u32)> = (1..20u32).map(|v| (v, 0)).collect();
        let g = Graph::from_edges(20, &edges);
        let pr = pagerank(&g, 20, 0.85, &EdgeMapOptions::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(pr[0] > 10.0 * pr[1]);
    }
}
