//! Vertex subsets (frontiers).

/// A set of active vertices, stored sparse (ID list) or dense (bitmap), as
/// in Ligra. Conversions happen lazily when an operator needs the other
/// representation.
#[derive(Debug, Clone)]
pub enum VertexSubset {
    /// Sorted list of active vertex IDs.
    Sparse {
        /// Total vertices in the graph.
        n: usize,
        /// Active IDs (sorted, unique).
        ids: Vec<u32>,
    },
    /// Bitmap over all vertices.
    Dense {
        /// Membership flags.
        flags: Vec<bool>,
    },
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty(n: usize) -> Self {
        VertexSubset::Sparse { n, ids: Vec::new() }
    }

    /// The full vertex set (what every GNN layer uses).
    pub fn all(n: usize) -> Self {
        VertexSubset::Dense {
            flags: vec![true; n],
        }
    }

    /// A single-vertex subset (BFS roots).
    pub fn single(n: usize, v: u32) -> Self {
        assert!((v as usize) < n, "vertex out of range");
        VertexSubset::Sparse { n, ids: vec![v] }
    }

    /// From an unsorted ID list.
    pub fn from_ids(n: usize, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.last().is_none_or(|&v| (v as usize) < n));
        VertexSubset::Sparse { n, ids }
    }

    /// Total vertices in the graph.
    pub fn universe(&self) -> usize {
        match self {
            VertexSubset::Sparse { n, .. } => *n,
            VertexSubset::Dense { flags } => flags.len(),
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.len(),
            VertexSubset::Dense { flags } => flags.iter().filter(|&&b| b).count(),
        }
    }

    /// True when no vertex is active.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.is_empty(),
            VertexSubset::Dense { flags } => !flags.iter().any(|&b| b),
        }
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.binary_search(&v).is_ok(),
            VertexSubset::Dense { flags } => flags[v as usize],
        }
    }

    /// Materialize the sparse representation.
    pub fn to_ids(&self) -> Vec<u32> {
        match self {
            VertexSubset::Sparse { ids, .. } => ids.clone(),
            VertexSubset::Dense { flags } => flags
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| b.then_some(v as u32))
                .collect(),
        }
    }

    /// Materialize the dense representation.
    pub fn to_flags(&self) -> Vec<bool> {
        match self {
            VertexSubset::Dense { flags } => flags.clone(),
            VertexSubset::Sparse { n, ids } => {
                let mut flags = vec![false; *n];
                for &v in ids {
                    flags[v as usize] = true;
                }
                flags
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_membership() {
        let s = VertexSubset::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));

        let a = VertexSubset::all(5);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());

        let e = VertexSubset::empty(5);
        assert!(e.is_empty());
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = VertexSubset::from_ids(10, vec![5, 1, 5, 3]);
        assert_eq!(s.to_ids(), vec![1, 3, 5]);
    }

    #[test]
    fn representation_round_trip() {
        let s = VertexSubset::from_ids(6, vec![0, 2, 5]);
        let flags = s.to_flags();
        assert_eq!(flags, vec![true, false, true, false, false, true]);
        let d = VertexSubset::Dense { flags };
        assert_eq!(d.to_ids(), vec![0, 2, 5]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_bounds_checked() {
        let _ = VertexSubset::single(3, 7);
    }
}
