//! The edgeMap / vertexMap operators.

use fg_graph::Graph;
use rayon::prelude::*;

use crate::subset::VertexSubset;

/// Per-edge user function. Returns `true` if the destination should join the
/// next frontier. The engine treats this as a blackbox: it schedules edges,
/// nothing more.
///
/// `Sync` because the dense direction applies it from parallel workers; all
/// mutation must go through interior-mutable state owned by the caller
/// (atomics for push mode, per-destination exclusive state for pull mode).
pub type EdgeFn<'a> = dyn Fn(u32, u32, u32) -> bool + Sync + 'a;

/// Per-vertex condition: pull-mode destinations are skipped once it returns
/// `false` (Ligra's `cond` for early exit).
pub type CondFn<'a> = dyn Fn(u32) -> bool + Sync + 'a;

/// Options for [`edge_map`].
#[derive(Clone, Copy)]
pub struct EdgeMapOptions {
    /// Dense/sparse switch threshold as a fraction of total edges: if the
    /// frontier's out-edge count exceeds `|E| / threshold_den`, use the
    /// dense (pull) direction. Ligra's default is 20.
    pub threshold_den: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        Self {
            threshold_den: 20,
            threads: 1,
        }
    }
}

/// Ligra's edgeMap: apply `f` to every edge whose source is in `frontier`,
/// returning the subset of destinations for which `f` returned `true`.
///
/// Direction is chosen per invocation: *sparse/push* iterates the frontier's
/// out-edges; *dense/pull* iterates every destination's in-edges, skipping
/// sources outside the frontier and stopping early when `cond(dst)` turns
/// false.
pub fn edge_map(
    graph: &Graph,
    frontier: &VertexSubset,
    f: &EdgeFn<'_>,
    cond: &CondFn<'_>,
    opts: &EdgeMapOptions,
) -> VertexSubset {
    let n = graph.num_vertices();
    let m = graph.num_edges().max(1);
    let frontier_out_edges: usize = frontier
        .to_ids()
        .iter()
        .map(|&v| graph.out_degree(v))
        .sum::<usize>()
        + frontier.len();
    let dense = frontier_out_edges > m / opts.threshold_den.max(1);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.max(1))
        .build()
        .expect("thread pool");

    if dense {
        // pull: each destination scans its in-neighbors
        let flags = frontier.to_flags();
        let next: Vec<bool> = pool.install(|| {
            (0..n as u32)
                .into_par_iter()
                .map(|dst| {
                    if !cond(dst) {
                        return false;
                    }
                    let mut added = false;
                    let base = graph.in_csr().row_start(dst);
                    for (i, &src) in graph.in_csr().row(dst).iter().enumerate() {
                        if flags[src as usize] {
                            let eid = (base + i) as u32;
                            if f(src, dst, eid) {
                                added = true;
                            }
                            if !cond(dst) {
                                break;
                            }
                        }
                    }
                    added
                })
                .collect()
        });
        VertexSubset::Dense { flags: next }
    } else {
        // push: scan the frontier's out-edges
        let ids = frontier.to_ids();
        let next: Vec<u32> = pool.install(|| {
            ids.par_iter()
                .flat_map_iter(|&src| {
                    let row = graph.out_csr().row(src);
                    let base = graph.out_csr().row_start(src);
                    let eids = graph.out_eids();
                    row.iter().enumerate().filter_map(move |(i, &dst)| {
                        if cond(dst) && f(src, dst, eids[base + i]) {
                            Some(dst)
                        } else {
                            None
                        }
                    })
                })
                .collect()
        });
        VertexSubset::from_ids(n, next)
    }
}

/// Ligra's vertexMap: apply `f` to every vertex of the subset, keeping those
/// for which it returns `true`.
pub fn vertex_map(subset: &VertexSubset, f: impl Fn(u32) -> bool + Sync) -> VertexSubset {
    let ids: Vec<u32> = subset.to_ids().into_iter().filter(|&v| f(v)).collect();
    VertexSubset::from_ids(subset.universe(), ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn chain() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn edge_map_push_from_small_frontier() {
        let g = chain();
        let frontier = VertexSubset::single(5, 0);
        let visited = AtomicUsize::new(0);
        let next = edge_map(
            &g,
            &frontier,
            &|_, _, _| {
                visited.fetch_add(1, Ordering::Relaxed);
                true
            },
            &|_| true,
            &EdgeMapOptions::default(),
        );
        assert_eq!(visited.load(Ordering::Relaxed), 1);
        assert_eq!(next.to_ids(), vec![1]);
    }

    #[test]
    fn edge_map_dense_from_full_frontier() {
        let g = chain();
        let frontier = VertexSubset::all(5);
        let count = AtomicUsize::new(0);
        let next = edge_map(
            &g,
            &frontier,
            &|_, _, _| {
                count.fetch_add(1, Ordering::Relaxed);
                true
            },
            &|_| true,
            &EdgeMapOptions::default(),
        );
        // all 4 edges visited, destinations 1..4 activated
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(next.to_ids(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cond_prunes_destinations() {
        let g = chain();
        let frontier = VertexSubset::all(5);
        let next = edge_map(
            &g,
            &frontier,
            &|_, _, _| true,
            &|dst| dst != 2, // refuse vertex 2
            &EdgeMapOptions::default(),
        );
        assert!(!next.contains(2));
        assert!(next.contains(1));
    }

    #[test]
    fn vertex_map_filters() {
        let s = VertexSubset::all(6);
        let evens = vertex_map(&s, |v| v % 2 == 0);
        assert_eq!(evens.to_ids(), vec![0, 2, 4]);
    }

    #[test]
    fn eids_are_canonical_in_both_directions() {
        let g = chain();
        let canonical = g.edge_list();
        for frontier in [VertexSubset::single(5, 1), VertexSubset::all(5)] {
            let ok = std::sync::atomic::AtomicBool::new(true);
            edge_map(
                &g,
                &frontier,
                &|src, dst, eid| {
                    if canonical[eid as usize] != (src, dst) {
                        ok.store(false, Ordering::Relaxed);
                    }
                    false
                },
                &|_| true,
                &EdgeMapOptions::default(),
            );
            assert!(ok.load(Ordering::Relaxed));
        }
    }
}
