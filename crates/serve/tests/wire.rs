//! Wire-level tests for the serve front-end: binary frame round-trips
//! (property-based), malformed-input robustness over live TCP (truncated
//! frames, oversized lengths, bad magic, NaN/inf features), typed-ERR
//! recovery on the text protocol, and mixed text+binary clients against
//! one server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fg_gnn::data::SbmTask;
use fg_gnn::models::build_model;
use fg_serve::frame::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, reply_type, req_type,
    write_frame, Frame, FrameError, WireReply, HEADER_LEN, MAGIC, MAX_PAYLOAD,
};
use fg_serve::{protocol, serve, Engine, ServeConfig, ServerHandle};
use fg_tensor::Dense2;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Live-server harness
// ---------------------------------------------------------------------------

fn spawn_server(cfg: ServeConfig) -> ServerHandle {
    let task = SbmTask::generate(200, 3, 6, 2, 7);
    let engine = Arc::new(Engine::new(cfg));
    let model = build_model("gcn", task.in_dim(), 8, task.num_classes, 2);
    engine.register_model("gcn", model, task.graph.clone(), task.features.clone());
    serve(engine, "127.0.0.1:0").expect("bind loopback")
}

fn connect(h: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(h.addr()).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Send one already-encoded binary frame, read one reply frame.
fn binary_call(stream: &mut TcpStream, frame_bytes: &[u8]) -> Result<WireReply, FrameError> {
    write_frame(stream, frame_bytes).expect("write frame");
    let f = read_frame(stream, false)?;
    decode_reply(&f)
}

/// Hand-roll a complete frame (header + payload) around arbitrary bytes.
fn raw_frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(ty);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Property-based frame round-trips
// ---------------------------------------------------------------------------

fn arb_request() -> impl Strategy<Value = protocol::Request> {
    let infer = (
        0usize..4,
        0usize..10_000,
        0usize..3,
        (0usize..2, 0u64..100_000),
    )
        .prop_map(|(m, node, id_kind, (has_dl, dl))| protocol::Request::Infer {
            model: model_name(m),
            node,
            id: request_id(id_kind),
            deadline_ms: (has_dl == 1).then_some(dl),
        });
    let infer_seeds = (
        0usize..4,
        proptest::collection::vec(0usize..10_000, 1..20),
        (0usize..2, proptest::collection::vec(0usize..64, 1..4)),
        0u64..u64::MAX,
        0usize..3,
        0usize..4, // feature columns; 0 = no feats
    )
        .prop_map(
            |(m, seeds, (has_fanout, fanout), sample_seed, id_kind, feat_cols)| {
                let fanouts = (has_fanout == 1).then_some(fanout);
                let feats = (feat_cols > 0).then(|| {
                    Dense2::from_fn(seeds.len(), feat_cols, |r, c| {
                        (r as f32 - 1.5) * 0.25 + c as f32 * 7.5 - seeds[r] as f32
                    })
                });
                protocol::Request::InferSeeds {
                    model: model_name(m),
                    seeds,
                    fanouts,
                    sample_seed,
                    feats,
                    id: request_id(id_kind),
                    deadline_ms: None,
                }
            },
        );
    let plain = (0usize..5).prop_map(|k| match k {
        0 => protocol::Request::Stats,
        1 => protocol::Request::Metrics,
        2 => protocol::Request::Memory,
        3 => protocol::Request::Ping,
        _ => protocol::Request::Shutdown,
    });
    prop_oneof![infer, infer_seeds, plain]
}

fn model_name(k: usize) -> String {
    ["gcn", "graphsage", "gat", "m"][k % 4].to_string()
}

fn request_id(kind: usize) -> Option<String> {
    match kind {
        0 => None,
        1 => Some("c0-r17".to_string()),
        // Worst-case id content: spaces would break a text protocol; the
        // binary one must carry them verbatim.
        _ => Some("id with spaces \u{00e9}".to_string()),
    }
}

fn arb_reply() -> impl Strategy<Value = WireReply> {
    let logits = proptest::collection::vec(-100.0f32..100.0, 0..8);
    let ok = (0usize..8, logits).prop_map(|(class, logits)| WireReply::Ok {
        id: "c1-r2".to_string(),
        resp: fg_serve::InferResponse { class, logits },
    });
    let err = (0usize..3).prop_map(|k| WireReply::Err {
        id: "x".to_string(),
        code: ["overloaded", "timeout", "bad-request"][k].to_string(),
        detail: if k == 2 { "nope".to_string() } else { String::new() },
    });
    let seeds = (
        proptest::collection::vec(0usize..10_000, 0..6),
        0usize..500,
        0usize..5_000,
    )
        .prop_map(|(seeds, sub_vertices, sub_edges)| {
            let results = seeds
                .iter()
                .map(|&s| fg_serve::InferResponse {
                    class: s % 3,
                    logits: vec![s as f32, -(s as f32), 0.0],
                })
                .collect();
            WireReply::Seeds {
                id: "s".to_string(),
                seeds,
                resp: fg_serve::SeedsResponse {
                    results,
                    sub_vertices,
                    sub_edges,
                },
            }
        });
    let text = proptest::collection::vec(0u32..128, 0..200).prop_map(|codes| {
        WireReply::Text(codes.into_iter().filter_map(char::from_u32).collect())
    });
    prop_oneof![
        ok,
        err,
        seeds,
        text,
        Just(WireReply::Pong),
        Just(WireReply::Bye)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips_through_binary_frames(req in arb_request()) {
        let bytes = encode_request(&req);
        // Re-read through the streaming path, magic included.
        let mut cursor: &[u8] = &bytes;
        let f = read_frame(&mut cursor, false).expect("read back");
        prop_assert!(cursor.is_empty(), "no trailing bytes");
        let decoded = decode_request(&f).expect("decode");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn reply_roundtrips_through_binary_frames(reply in arb_reply()) {
        let bytes = encode_reply(&reply);
        let mut cursor: &[u8] = &bytes;
        let f = read_frame(&mut cursor, false).expect("read back");
        prop_assert!(cursor.is_empty());
        let decoded = decode_reply(&f).expect("decode");
        prop_assert_eq!(decoded, reply);
    }

    #[test]
    fn truncated_frames_never_panic(req in arb_request(), cut in 0usize..64) {
        let bytes = encode_request(&req);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let mut cursor = &bytes[..cut];
        // Any prefix must surface as an error (Io/unexpected-eof or a
        // malformed header), never a panic or a bogus success.
        prop_assert!(read_frame(&mut cursor, false).is_err());
    }

    #[test]
    fn corrupted_payloads_never_panic(req in arb_request(), flip in 0usize..1024, val in 0u32..256) {
        let mut bytes = encode_request(&req);
        if bytes.len() > HEADER_LEN {
            let idx = HEADER_LEN + flip % (bytes.len() - HEADER_LEN);
            bytes[idx] = val as u8;
            let mut cursor: &[u8] = &bytes;
            // Either it still parses (the flip hit a don't-care byte or made
            // another valid value) or it errors cleanly; both are fine, only
            // a panic would fail this test.
            if let Ok(f) = read_frame(&mut cursor, false) {
                let _ = decode_request(&f);
            }
        }
    }
}

/// Zero-dim feature tensors: a seeds request whose feats block has 0 columns.
#[test]
fn zero_dim_feature_tensor_roundtrips() {
    let req = protocol::Request::InferSeeds {
        model: "gcn".into(),
        seeds: vec![1, 2, 3],
        fanouts: None,
        sample_seed: 0,
        feats: Some(Dense2::from_fn(3, 0, |_, _| 0.0)),
        id: None,
        deadline_ms: None,
    };
    let bytes = encode_request(&req);
    let mut cursor: &[u8] = &bytes;
    let f = read_frame(&mut cursor, false).unwrap();
    assert_eq!(decode_request(&f).unwrap(), req);
}

/// An empty seeds reply (no per-seed rows) survives the round-trip.
#[test]
fn empty_seed_reply_roundtrips() {
    let reply = WireReply::Seeds {
        id: "e".into(),
        seeds: vec![],
        resp: fg_serve::SeedsResponse {
            results: vec![],
            sub_vertices: 0,
            sub_edges: 0,
        },
    };
    let bytes = encode_reply(&reply);
    let mut cursor: &[u8] = &bytes;
    let f = read_frame(&mut cursor, false).unwrap();
    assert_eq!(decode_reply(&f).unwrap(), reply);
}

/// Payload length exactly at the cap parses; one past it is rejected before
/// any allocation happens.
#[test]
fn payload_length_boundaries() {
    // A header claiming MAX_PAYLOAD bytes is structurally valid; reading it
    // from a short stream must fail with Io (eof), NOT Oversized.
    let mut hdr = Vec::with_capacity(HEADER_LEN);
    hdr.extend_from_slice(&MAGIC);
    hdr.push(req_type::PING);
    hdr.push(0);
    hdr.extend_from_slice(&0u16.to_le_bytes());
    hdr.extend_from_slice(&MAX_PAYLOAD.to_le_bytes());
    let mut cursor: &[u8] = &hdr;
    match read_frame(&mut cursor, false) {
        Err(FrameError::Io(_)) => {}
        other => panic!("at-cap length must pass the size check, got {other:?}"),
    }

    // One past the cap must be rejected from the header alone.
    let mut hdr = Vec::with_capacity(HEADER_LEN);
    hdr.extend_from_slice(&MAGIC);
    hdr.push(req_type::PING);
    hdr.push(0);
    hdr.extend_from_slice(&0u16.to_le_bytes());
    hdr.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    let mut cursor: &[u8] = &hdr;
    match read_frame(&mut cursor, false) {
        Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_PAYLOAD + 1),
        other => panic!("past-cap length must be Oversized, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Live-server malformed-input sweep
// ---------------------------------------------------------------------------

/// Malformed text lines get a typed ERR and the connection stays usable.
#[test]
fn text_malformed_lines_keep_connection_alive() {
    let h = spawn_server(ServeConfig::default());
    let mut s = connect(&h);
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();

    for bad in [
        "INFER",                          // missing args
        "INFER gcn notanumber",           // bad node
        "INFER gcn 5 deadline_ms=abc",    // bad option value
        "INFER_SEEDS gcn",                // missing seeds
        "INFER_SEEDS gcn 1,2 fanout=x",   // bad fanout
        "INFER_SEEDS gcn 1,2 feats=a,b",  // non-numeric feats
        "INFER_SEEDS gcn 1 feats=NaN",    // non-finite feats
        "INFER_SEEDS gcn 1 feats=inf",    // non-finite feats
        "INFER_SEEDS gcn 1,2 feats=0.5",  // feats rows != seeds
        "BOGUS_VERB 1 2 3",               // unknown verb
    ] {
        writeln!(s, "{bad}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("ERR"),
            "{bad:?} must get a typed ERR, got {line:?}"
        );
    }

    // The same connection still serves a well-formed request.
    writeln!(s, "INFER gcn 5 id=alive").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("OK alive"),
        "connection must survive malformed lines, got {line:?}"
    );
    h.shutdown();
}

/// Malformed binary payloads inside intact frames get a typed ERR and the
/// connection stays usable; broken framing closes it.
#[test]
fn binary_malformed_payloads_keep_connection_alive() {
    let h = spawn_server(ServeConfig::default());
    let mut s = connect(&h);

    // Unknown request type: intact frame, bogus type byte.
    let reply =
        binary_call(&mut s, &raw_frame(0x7F, &[])).expect("reply to unknown type");
    match reply {
        WireReply::Err { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("expected ERR, got {other:?}"),
    }

    // Truncated INFER payload (empty body, no fields).
    let reply = binary_call(&mut s, &raw_frame(req_type::INFER, &[]))
        .expect("reply to truncated payload");
    assert!(matches!(reply, WireReply::Err { .. }));

    // NaN client feats: intact frame, rejected at decode with a typed ERR.
    let mut feats = Dense2::from_fn(1, 2, |_, _| 1.0);
    feats.row_mut(0)[1] = f32::NAN;
    let req = protocol::Request::InferSeeds {
        model: "gcn".into(),
        seeds: vec![3],
        fanouts: None,
        sample_seed: 0,
        feats: Some(feats),
        id: Some("nan".into()),
        deadline_ms: None,
    };
    let frame_bytes = encode_request(&req);
    s.write_all(&frame_bytes).unwrap();
    let f = read_frame(&mut s, false).expect("reply frame");
    match decode_reply(&f).unwrap() {
        WireReply::Err { code, .. } => assert_eq!(code, "bad-request"),
        other => panic!("NaN feats must be rejected, got {other:?}"),
    }

    // Infinite feats likewise.
    let mut feats = Dense2::from_fn(1, 2, |_, _| 1.0);
    feats.row_mut(0)[0] = f32::INFINITY;
    let req = protocol::Request::InferSeeds {
        model: "gcn".into(),
        seeds: vec![3],
        fanouts: None,
        sample_seed: 0,
        feats: Some(feats),
        id: Some("inf".into()),
        deadline_ms: None,
    };
    s.write_all(&encode_request(&req)).unwrap();
    let f = read_frame(&mut s, false).expect("reply frame");
    assert!(matches!(decode_reply(&f).unwrap(), WireReply::Err { .. }));

    // The same connection still answers a good request.
    let req = protocol::Request::Infer {
        model: "gcn".into(),
        node: 7,
        id: Some("alive".into()),
        deadline_ms: None,
    };
    s.write_all(&encode_request(&req)).unwrap();
    let f = read_frame(&mut s, false).expect("reply frame");
    match decode_reply(&f).unwrap() {
        WireReply::Ok { id, .. } => assert_eq!(id, "alive"),
        other => panic!("connection must survive bad payloads, got {other:?}"),
    }
    h.shutdown();
}

/// Oversized length prefixes and bad magic mid-stream are framing breaks:
/// the server replies ERR (best effort) and closes the connection.
#[test]
fn binary_framing_breaks_close_connection() {
    let h = spawn_server(ServeConfig::default());

    // Oversized declared length.
    {
        let mut s = connect(&h);
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC);
        hdr.push(req_type::PING);
        hdr.push(0);
        hdr.extend_from_slice(&0u16.to_le_bytes());
        hdr.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        s.write_all(&hdr).unwrap();
        // The server must close; reads drain any best-effort ERR then EOF.
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("server closes cleanly");
    }

    // Bad magic mid-stream (first frame good, second frame garbage).
    {
        let mut s = connect(&h);
        let ping = encode_request(&protocol::Request::Ping);
        s.write_all(&ping).unwrap();
        let f = read_frame(&mut s, false).unwrap();
        assert!(matches!(decode_reply(&f).unwrap(), WireReply::Pong));
        s.write_all(b"XXXXGARBAGEGARBAGE").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("server closes on bad magic");
    }

    // Nonzero reserved bytes are a framing break too.
    {
        let mut s = connect(&h);
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC);
        hdr.push(req_type::PING);
        hdr.push(0);
        hdr.extend_from_slice(&0xBEEFu16.to_le_bytes());
        hdr.extend_from_slice(&0u32.to_le_bytes());
        s.write_all(&hdr).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("server closes on reserved bytes");
    }

    // The server survives all of that and still answers new connections.
    let mut s = connect(&h);
    let reply = binary_call(&mut s, &encode_request(&protocol::Request::Ping)).unwrap();
    assert!(matches!(reply, WireReply::Pong));
    h.shutdown();
}

/// Text and binary clients interleave against one server; replies agree.
#[test]
fn mixed_text_and_binary_clients_agree() {
    let h = spawn_server(ServeConfig::default());

    // Text client.
    let mut text = connect(&h);
    let mut reader = BufReader::new(text.try_clone().unwrap());
    writeln!(text, "INFER gcn 11 id=t").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let text_reply = line.trim_end().to_string();
    assert!(text_reply.starts_with("OK t "), "got {text_reply:?}");

    // Binary client, same node: the canonical text rendering of the binary
    // reply must equal the text reply byte-for-byte.
    let mut bin = connect(&h);
    let req = protocol::Request::Infer {
        model: "gcn".into(),
        node: 11,
        id: Some("t".into()),
        deadline_ms: None,
    };
    bin.write_all(&encode_request(&req)).unwrap();
    let f = read_frame(&mut bin, false).unwrap();
    match decode_reply(&f).unwrap() {
        WireReply::Ok { id, resp } => {
            assert_eq!(protocol::format_ok(Some(&id), &resp), text_reply);
        }
        other => panic!("expected OK, got {other:?}"),
    }

    // Both connections remain live afterwards.
    writeln!(text, "PING").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG");
    bin.write_all(&encode_request(&protocol::Request::Ping)).unwrap();
    let f = read_frame(&mut bin, false).unwrap();
    assert!(matches!(decode_reply(&f).unwrap(), WireReply::Pong));
    h.shutdown();
}

/// Connection metrics flow end to end: accepted/protocol counters show up
/// in the METRICS exposition after traffic on both protocols.
#[test]
fn conn_metrics_count_protocols() {
    let h = spawn_server(ServeConfig::default());

    let mut text = connect(&h);
    let mut reader = BufReader::new(text.try_clone().unwrap());
    writeln!(text, "PING").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG");

    let mut bin = connect(&h);
    bin.write_all(&encode_request(&protocol::Request::Ping)).unwrap();
    let f = read_frame(&mut bin, false).unwrap();
    assert!(matches!(decode_reply(&f).unwrap(), WireReply::Pong));

    // Provoke one bad line and one bad frame so failure counters move.
    writeln!(text, "NOT_A_VERB").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR"));
    let bad = binary_call(&mut bin, &raw_frame(0x7F, &[])).unwrap();
    assert!(matches!(bad, WireReply::Err { .. }));

    writeln!(text, "METRICS").unwrap();
    let mut body = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        body.push_str(&line);
        if line.trim_end() == "# EOF" {
            break;
        }
    }
    for needle in [
        "fgserve_conn_accepted_total 2",
        "fgserve_conn_protocol_total{protocol=\"binary\"} 1",
        "fgserve_conn_protocol_total{protocol=\"text\"} 1",
        "fgserve_conn_bad_lines_total 1",
        "fgserve_conn_bad_frames_total 1",
        "fgserve_conn_active 2",
    ] {
        assert!(
            body.contains(needle),
            "metrics must contain {needle:?}\n---\n{body}"
        );
    }
    h.shutdown();
}

/// Admission control: connections beyond --max-conns are shed at accept and
/// counted; earlier connections keep working.
#[test]
fn admission_control_sheds_excess_connections() {
    let h = spawn_server(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });

    let mut a = connect(&h);
    let mut ra = BufReader::new(a.try_clone().unwrap());
    let mut line = String::new();
    writeln!(a, "PING").unwrap();
    ra.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG");

    let mut b = connect(&h);
    let mut rb = BufReader::new(b.try_clone().unwrap());
    line.clear();
    writeln!(b, "PING").unwrap();
    rb.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG");

    // Third connection: accepted by the OS, shed by admission — the server
    // closes it without servicing anything (EOF, or RST if our PING raced
    // the close).
    let mut c = connect(&h);
    let mut buf = Vec::new();
    let _ = writeln!(c, "PING");
    match c.read_to_end(&mut buf) {
        Ok(_) => assert!(buf.is_empty(), "shed connection must not be serviced"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }

    // Existing connections still work, and the shed is counted.
    line.clear();
    writeln!(a, "METRICS").unwrap();
    let mut body = String::new();
    loop {
        line.clear();
        if ra.read_line(&mut line).unwrap() == 0 {
            break;
        }
        body.push_str(&line);
        if line.trim_end() == "# EOF" {
            break;
        }
    }
    assert!(
        body.contains("fgserve_conn_admission_shed_total{reason=\"max-conns\"} 1"),
        "shed must be counted\n---\n{body}"
    );
    h.shutdown();
}

/// The frame module's constants hold the invariants the acceptor relies on.
#[test]
fn frame_constants_are_sane() {
    assert_eq!(HEADER_LEN, 12);
    assert_eq!(&MAGIC, b"FGB1");
    assert_eq!(MAX_PAYLOAD, 64 << 20);
    const { assert!(reply_type::OK > req_type::SHUTDOWN, "type spaces disjoint") };
    // Frame struct stays constructible for hand-rolled payload tests.
    let f = Frame {
        ty: req_type::PING,
        payload: vec![],
    };
    assert!(decode_request(&f).is_ok());
}
