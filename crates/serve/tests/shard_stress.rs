//! Sharded-serving integration tests: bitwise parity between shard counts,
//! the SHARDS wire command, coordinator seed routing, concurrent mixed
//! traffic against a sharded loopback server, and shard memory accounting.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fg_gnn::data::SbmTask;
use fg_gnn::models::build_model;
use fg_graph::ShardStrategy;
use fg_serve::{
    serve, Engine, InferRequest, InferSeedsRequest, ServeConfig, ShardLine, ShardsReport,
};

fn make_task() -> SbmTask {
    SbmTask::generate(400, 3, 8, 2, 7)
}

fn make_engine(cfg: ServeConfig) -> (Arc<Engine>, SbmTask) {
    let task = make_task();
    let engine = Arc::new(Engine::new(cfg));
    let model = build_model("gcn", task.in_dim(), 8, task.num_classes, 3);
    engine.register_model("gcn", model, task.graph.clone(), task.features.clone());
    (engine, task)
}

fn sharded_cfg(shards: usize, strategy: ShardStrategy) -> ServeConfig {
    ServeConfig {
        shards,
        shard_strategy: strategy,
        ..ServeConfig::default()
    }
}

/// With Range placement, shard `s` owns a contiguous ascending ID range;
/// recover each shard's first owned vertex from the report's owned counts.
fn range_shard_starts(report: &ShardsReport) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut next = 0usize;
    for line in &report.lines {
        starts.push(next);
        next += line.owned as usize;
    }
    starts
}

#[test]
fn sharded_inference_is_bitwise_identical_to_single_worker() {
    let (reference, task) = make_engine(ServeConfig::default());
    let vertices = task.graph.num_vertices();
    let expected: Vec<Vec<f32>> = (0..vertices)
        .map(|node| {
            reference
                .infer(InferRequest {
                    model: "gcn".into(),
                    node,
                    deadline: None,
                })
                .expect("single-worker reference")
                .logits
        })
        .collect();
    reference.shutdown();

    for shards in [2, 3, 4] {
        for strategy in ShardStrategy::ALL {
            let (engine, _) = make_engine(sharded_cfg(shards, strategy));
            for node in (0..vertices).step_by(7) {
                let resp = engine
                    .infer(InferRequest {
                        model: "gcn".into(),
                        node,
                        deadline: None,
                    })
                    .unwrap_or_else(|e| panic!("{shards} shards {strategy}: node {node}: {e}"));
                assert_eq!(
                    resp.logits, expected[node],
                    "{shards} shards {strategy}: node {node} diverged from single-worker"
                );
            }
            // Full-fanout seeded requests take the sharded path too and must
            // agree bitwise.
            let seeds = vec![0usize, vertices / 2, vertices - 1];
            let resp = engine
                .infer_seeds(InferSeedsRequest {
                    model: "gcn".into(),
                    seeds: seeds.clone(),
                    fanouts: None,
                    sample_seed: 0,
                    feats: None,
                    deadline: None,
                })
                .expect("sharded seeds");
            for (seed, row) in seeds.iter().zip(&resp.results) {
                assert_eq!(
                    row.logits, expected[*seed],
                    "{shards} shards {strategy}: seed {seed} diverged"
                );
            }
            let report = engine.shards_report();
            assert!(
                report.total_exchange_bytes() > 0,
                "{shards} shards {strategy}: halo exchange must move bytes"
            );
            engine.shutdown();
        }
    }
}

#[test]
fn capped_fanout_seeds_fall_back_to_sampled_path_on_sharded_engine() {
    let (sharded, task) = make_engine(sharded_cfg(4, ShardStrategy::Range));
    let (single, _) = make_engine(ServeConfig::default());
    let vertices = task.graph.num_vertices();
    // Capped fanouts are not shard-parity-safe, so the sharded engine must
    // answer them exactly like a single-worker engine (same sampled path,
    // same RNG keying).
    for round in 0..4u64 {
        let seeds: Vec<usize> = (0..3).map(|i| ((round * 91 + i * 57) as usize) % vertices).collect();
        let req = |engine: &Engine| {
            engine
                .infer_seeds(InferSeedsRequest {
                    model: "gcn".into(),
                    seeds: seeds.clone(),
                    fanouts: Some(vec![3, 3]),
                    sample_seed: round,
                    feats: None,
                    deadline: None,
                })
                .expect("capped seeds")
        };
        let a = req(&sharded);
        let b = req(&single);
        assert_eq!(a.sub_vertices, b.sub_vertices, "round {round}: subgraph diverged");
        assert_eq!(a.sub_edges, b.sub_edges);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.logits, y.logits, "round {round}: capped logits diverged");
        }
    }
    // The sampled fallback records Sample phases; the sharded fast path
    // never does.
    assert_eq!(sharded.stats().phase(fg_serve::Phase::Sample).count, 4);
    sharded.shutdown();
    single.shutdown();
}

#[test]
fn shards_wire_command_reports_topology_and_round_trips() {
    let (engine, task) = make_engine(sharded_cfg(4, ShardStrategy::Range));
    let vertices = task.graph.num_vertices() as u64;
    let edges = task.graph.num_edges() as u64;
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writeln!(writer, "SHARDS").unwrap();
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    let n: usize = header
        .trim_end()
        .strip_prefix("SHARDS ")
        .expect("SHARDS header")
        .parse()
        .unwrap();
    assert_eq!(n, 4, "one line per shard: {header}");
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().strip_prefix("SHARD ").expect("SHARD prefix").to_string();
        lines.push(line);
    }
    let parsed: Vec<ShardLine> = lines
        .iter()
        .map(|l| ShardLine::parse_wire(l).unwrap_or_else(|e| panic!("{l}: {e}")))
        .collect();
    // Format/parse round-trip is exact.
    for (line, p) in lines.iter().zip(&parsed) {
        assert_eq!(&p.to_wire(), line, "wire round-trip");
    }
    // Destination sharding: owned sets partition the vertices, every edge
    // lands on exactly one owner shard, and locals = owned + halo.
    assert_eq!(parsed.iter().map(|p| p.owned).sum::<u64>(), vertices);
    assert_eq!(parsed.iter().map(|p| p.edges).sum::<u64>(), edges);
    for p in &parsed {
        assert_eq!(p.locals, p.owned + p.halo, "shard {}", p.shard);
        assert_eq!(p.model, "gcn");
        assert_eq!(p.strategy, "range");
        assert!(p.mem_bytes > 0, "shard {} accounts its topology", p.shard);
    }
    handle.shutdown();

    // A single-worker server answers SHARDS 0 with no lines.
    let (engine, _) = make_engine(ServeConfig::default());
    assert_eq!(engine.shards_report(), ShardsReport::default());
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "SHARDS").unwrap();
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    assert_eq!(header.trim_end(), "SHARDS 0");
    handle.shutdown();
}

#[test]
fn coordinator_routes_seeds_to_owner_shards() {
    let (engine, _task) = make_engine(sharded_cfg(4, ShardStrategy::Range));
    let before = engine.shards_report();
    let starts = range_shard_starts(&before);
    assert_eq!(starts.len(), 4);

    // All seeds owned by shard 0: the reply's subgraph figures are exactly
    // that one shard's local slice.
    let resp = engine
        .infer_seeds(InferSeedsRequest {
            model: "gcn".into(),
            seeds: vec![starts[0], starts[0] + 1, starts[0] + 2],
            fanouts: None,
            sample_seed: 0,
            feats: None,
            deadline: None,
        })
        .expect("one-shard seeds");
    assert_eq!(resp.sub_vertices as u64, before.lines[0].locals);
    assert_eq!(resp.sub_edges as u64, before.lines[0].edges);

    // One seed per shard: the reply spans every shard's local slice.
    let resp = engine
        .infer_seeds(InferSeedsRequest {
            model: "gcn".into(),
            seeds: starts.clone(),
            fanouts: None,
            sample_seed: 0,
            feats: None,
            deadline: None,
        })
        .expect("spread seeds");
    let all_locals: u64 = before.lines.iter().map(|l| l.locals).sum();
    let all_edges: u64 = before.lines.iter().map(|l| l.edges).sum();
    assert_eq!(resp.sub_vertices as u64, all_locals);
    assert_eq!(resp.sub_edges as u64, all_edges);

    // Routing counters: shard 0 saw both requests (3 + 1 rows), the rest
    // exactly one row each.
    let after = engine.shards_report();
    assert_eq!(after.lines[0].rows_routed, 4);
    for line in &after.lines[1..] {
        assert_eq!(line.rows_routed, 1, "shard {}", line.shard);
    }
    engine.shutdown();
}

#[test]
fn stress_16_threads_mixed_traffic_on_4_shard_server() {
    const THREADS: usize = 16;
    const PER_THREAD: usize = 40;
    let (engine, task) = make_engine(ServeConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        queue_capacity: 4096,
        workers: 3,
        default_deadline: None,
        // Byte-bounded plan cache: sharded backends and sampled schedules
        // must coexist under eviction without corrupting results.
        plan_cache_bytes: 1 << 20,
        ..sharded_cfg(4, ShardStrategy::Degree)
    });
    let vertices = task.graph.num_vertices();

    // Reference rows from the same engine before the storm (sharded serving
    // is deterministic, so any later reply must match these bitwise).
    let expected: Vec<Vec<f32>> = (0..vertices)
        .map(|node| {
            engine
                .infer(InferRequest {
                    model: "gcn".into(),
                    node,
                    deadline: None,
                })
                .expect("reference row")
                .logits
        })
        .collect();
    let mid = engine.shards_report();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut answered = 0usize;
                for i in 0..PER_THREAD {
                    let node = (t * 997 + i * 31) % vertices;
                    if (t + i) % 3 == 0 {
                        // Full-fanout seeds: sharded scatter-gather path.
                        let seeds = vec![node, (node + 13) % vertices];
                        let resp = engine
                            .infer_seeds(InferSeedsRequest {
                                model: "gcn".into(),
                                seeds: seeds.clone(),
                                fanouts: None,
                                sample_seed: i as u64,
                                feats: None,
                                deadline: None,
                            })
                            .expect("seeds under load");
                        for (seed, row) in seeds.iter().zip(&resp.results) {
                            assert_eq!(row.logits, expected[*seed], "thread {t} req {i}");
                        }
                    } else {
                        let resp = engine
                            .infer(InferRequest {
                                model: "gcn".into(),
                                node,
                                deadline: None,
                            })
                            .expect("infer under load");
                        assert_eq!(resp.logits, expected[node], "thread {t} req {i}");
                    }
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, THREADS * PER_THREAD, "zero lost replies");

    let stats = engine.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed as usize, vertices + THREADS * PER_THREAD);

    // Per-shard counters are monotone and account for every routed row.
    let after = engine.shards_report();
    let mut routed_after = 0u64;
    for (m, a) in mid.lines.iter().zip(&after.lines) {
        assert!(a.rows_routed >= m.rows_routed, "shard {} went backwards", a.shard);
        assert!(a.exchange_bytes >= m.exchange_bytes, "shard {}", a.shard);
        routed_after += a.rows_routed;
    }
    let seeds_rows: u64 = 2 * (0..THREADS)
        .map(|t| (0..PER_THREAD).filter(|i| (t + i) % 3 == 0).count() as u64)
        .sum::<u64>();
    let node_rows = (vertices + THREADS * PER_THREAD) as u64 - seeds_rows / 2;
    assert_eq!(routed_after, node_rows + seeds_rows, "every answered row routed to a shard");
    assert!(after.total_exchange_bytes() > 0, "halo exchange ran");

    // Memory accounting: the shard_plan component carries at least this
    // engine's shard topology (other tests may hold their own), and the
    // engine total covers the per-component sum it reports.
    #[cfg(feature = "telemetry")]
    {
        let report = engine.memory_report();
        let shard_plan = report
            .components
            .iter()
            .find(|c| c.component.name() == "shard_plan")
            .expect("shard_plan component");
        let lines_sum: u64 = after.lines.iter().map(|l| l.mem_bytes).sum();
        assert!(lines_sum > 0);
        assert!(
            shard_plan.current >= lines_sum,
            "shard_plan accounting ({}) must cover the per-shard report sum ({lines_sum})",
            shard_plan.current
        );
        assert!(report.total_current >= shard_plan.current);
    }
    engine.shutdown();
}
