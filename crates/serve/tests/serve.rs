//! End-to-end tests for fg-serve: engine correctness under concurrency
//! (zero lost / zero duplicated responses), typed overload shedding and
//! timeouts, plan-cache reuse, and the TCP front-end.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fg_gnn::data::SbmTask;
use fg_gnn::models::build_model;
use fg_gnn::FeatgraphBackend;
use fg_serve::{serve, Engine, InferRequest, InferSeedsRequest, ServeConfig, ServeError};

fn make_task() -> SbmTask {
    SbmTask::generate(400, 3, 8, 2, 7)
}

fn make_engine(cfg: ServeConfig) -> (Arc<Engine>, SbmTask) {
    let task = make_task();
    let engine = Arc::new(Engine::new(cfg));
    let model = build_model("gcn", task.in_dim(), 8, task.num_classes, 3);
    engine.register_model("gcn", model, task.graph.clone(), task.features.clone());
    (engine, task)
}

/// Reference logits computed outside the serving stack.
fn reference_logits(task: &SbmTask) -> Vec<Vec<f32>> {
    let backend = FeatgraphBackend::cpu(1);
    let model = build_model("gcn", task.in_dim(), 8, task.num_classes, 3);
    let (logits, _, _) = fg_gnn::trainer::inference(&*model, task, &backend, None);
    (0..task.graph.num_vertices())
        .map(|v| logits.row(v).to_vec())
        .collect()
}

#[test]
fn stress_1k_requests_zero_lost_zero_duplicated() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 125;
    let (engine, task) = make_engine(ServeConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(1),
        queue_capacity: 4096,
        workers: 3,
        default_deadline: None,
        ..ServeConfig::default()
    });
    let expected = reference_logits(&task);
    let vertices = task.graph.num_vertices();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for i in 0..PER_CLIENT {
                    let node = (c * 131 + i * 17) % vertices;
                    let resp = engine
                        .infer(InferRequest {
                            model: "gcn".into(),
                            node,
                            deadline: None,
                        })
                        .expect("infer failed under nominal load");
                    // The logits row must be exactly the requested node's —
                    // a crossed reply would return some other node's row.
                    assert_eq!(
                        resp.logits, expected[node],
                        "client {c} request {i}: reply for wrong node"
                    );
                    ok += 1;
                }
                ok
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, CLIENTS * PER_CLIENT, "every request answered exactly once");

    let stats = engine.stats();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.failed, 0);
    assert!(stats.batches > 0);
    assert!(
        stats.batches < stats.completed,
        "batching must coalesce ({} batches for {} requests)",
        stats.batches,
        stats.completed
    );
    assert!(stats.latency.p50_ms > 0.0);
    engine.shutdown();
}

#[test]
fn plan_cache_hits_on_repeated_workload() {
    let (engine, _task) = make_engine(ServeConfig::default());
    for round in 0..3 {
        for node in 0..10 {
            engine
                .infer(InferRequest {
                    model: "gcn".into(),
                    node,
                    deadline: None,
                })
                .unwrap_or_else(|e| panic!("round {round} node {node}: {e}"));
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.plan_misses, 1, "exactly one compile for one (graph, model)");
    assert!(
        stats.plan_hits > 0,
        "repeated workload must hit the plan cache (hits={})",
        stats.plan_hits
    );
    assert!(stats.plan_hit_rate > 0.0);
    assert_eq!(engine.plan_cache_len(), 1);
}

#[test]
fn overload_sheds_with_typed_error_and_drains_on_shutdown() {
    let (engine, _task) = make_engine(ServeConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        queue_capacity: 4,
        workers: 1,
        default_deadline: None,
        exec_delay: Duration::from_millis(30),
        ..ServeConfig::default()
    });
    // Burst far past capacity from one thread: pushes beyond the 4-slot
    // queue must shed immediately with the typed error, never block.
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for node in 0..64 {
        match engine.submit(InferRequest {
            model: "gcn".into(),
            node,
            deadline: None,
        }) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded) => shed += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(shed > 0, "burst past capacity must shed");
    assert_eq!(engine.stats().shed, shed as u64);
    // Graceful drain: every accepted ticket still gets a real answer.
    let accepted = tickets.len();
    for t in tickets {
        t.wait().expect("accepted request must complete");
    }
    engine.shutdown();
    assert_eq!(engine.stats().completed, accepted as u64);
}

#[test]
fn expired_deadline_yields_typed_timeout() {
    let (engine, _task) = make_engine(ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_millis(1),
        workers: 1,
        exec_delay: Duration::from_millis(40),
        default_deadline: None,
        ..ServeConfig::default()
    });
    // A 1 ms deadline cannot survive the 40 ms artificial batch delay.
    let err = engine
        .infer(InferRequest {
            model: "gcn".into(),
            node: 0,
            deadline: Some(Duration::from_millis(1)),
        })
        .unwrap_err();
    assert_eq!(err, ServeError::Timeout);
    assert_eq!(engine.stats().timed_out, 1);
}

#[test]
fn unknown_model_and_bad_node_fail_fast() {
    let (engine, task) = make_engine(ServeConfig::default());
    let err = engine
        .infer(InferRequest {
            model: "nope".into(),
            node: 0,
            deadline: None,
        })
        .unwrap_err();
    assert_eq!(err, ServeError::UnknownModel("nope".into()));
    let err = engine
        .infer(InferRequest {
            model: "gcn".into(),
            node: task.graph.num_vertices(),
            deadline: None,
        })
        .unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)));
    // Neither consumed queue capacity.
    assert_eq!(engine.stats().accepted, 0);
}

#[test]
fn submit_after_shutdown_is_rejected() {
    let (engine, _task) = make_engine(ServeConfig::default());
    engine.shutdown();
    let err = engine
        .infer(InferRequest {
            model: "gcn".into(),
            node: 0,
            deadline: None,
        })
        .unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
}

#[test]
fn tcp_front_end_round_trips() {
    let (engine, task) = make_engine(ServeConfig::default());
    let expected = reference_logits(&task);
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let client = |lines: &[String]| -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            replies.push(reply.trim_end().to_string());
        }
        replies
    };

    let replies = client(&[
        "PING".into(),
        "INFER gcn 5 id=a".into(),
        "INFER gcn 5".into(),
        "INFER nope 0 id=b".into(),
        "INFER gcn 999999 id=c".into(),
        "GARBAGE".into(),
        "STATS".into(),
    ]);
    assert_eq!(replies[0], "PONG");
    match fg_serve::protocol::parse_reply(&replies[1]).unwrap() {
        fg_serve::protocol::Reply::Ok { id, logits, .. } => {
            assert_eq!(id, "a");
            assert_eq!(logits, expected[5], "wire logits match reference");
        }
        other => panic!("{other:?}"),
    }
    assert!(replies[2].starts_with("OK - "), "{}", replies[2]);
    assert!(replies[3].starts_with("ERR b unknown-model"), "{}", replies[3]);
    assert!(replies[4].starts_with("ERR c bad-request"), "{}", replies[4]);
    assert!(replies[5].starts_with("ERR - bad-request"), "{}", replies[5]);
    assert!(replies[6].starts_with("STATS "), "{}", replies[6]);
    assert!(replies[6].contains("completed=2"), "{}", replies[6]);

    handle.shutdown();
}

#[test]
fn tcp_concurrent_clients_ids_never_cross() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 40;
    let (engine, task) = make_engine(ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let vertices = task.graph.num_vertices();
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut seen: HashMap<String, usize> = HashMap::new();
                for i in 0..PER_CLIENT {
                    let id = format!("c{c}-r{i}");
                    writeln!(writer, "INFER gcn {} id={id}", (c * 53 + i * 7) % vertices)
                        .unwrap();
                    let mut reply = String::new();
                    reader.read_line(&mut reply).unwrap();
                    match fg_serve::protocol::parse_reply(reply.trim_end()).unwrap() {
                        fg_serve::protocol::Reply::Ok { id: got, .. } => {
                            assert_eq!(got, id, "client {c}: reply id crossed");
                            *seen.entry(got).or_default() += 1;
                        }
                        other => panic!("client {c}: {other:?}"),
                    }
                }
                seen
            })
        })
        .collect();
    let mut total = 0usize;
    for h in handles {
        let seen = h.join().unwrap();
        assert!(seen.values().all(|&n| n == 1), "duplicated reply id");
        total += seen.len();
    }
    assert_eq!(total, CLIENTS * PER_CLIENT);
    handle.shutdown();
}

/// One line-oriented exchange: send `line`, read one reply line.
fn wire_client(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let writer = stream.try_clone().unwrap();
    (writer, BufReader::new(stream))
}

fn send_recv(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

#[test]
fn metrics_wire_command_exposes_phase_series_that_sum_to_e2e() {
    let (engine, task) = make_engine(ServeConfig::default());
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let vertices = task.graph.num_vertices();

    let (mut writer, mut reader) = wire_client(addr);
    for i in 0..30 {
        let reply = send_recv(
            &mut writer,
            &mut reader,
            &format!("INFER gcn {} id=m{i}", (i * 13) % vertices),
        );
        assert!(reply.starts_with("OK "), "{reply}");
    }

    // METRICS is multi-line: read until the OpenMetrics terminator.
    writeln!(writer, "METRICS").unwrap();
    let mut text = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "EOF before # EOF");
        text.push_str(&line);
        if line.trim_end() == "# EOF" {
            break;
        }
    }
    let lookup = |series: &str| fg_serve::metrics::sample(&text, series);
    fg_serve::metrics::parse_exposition(&text).expect("exposition parses");
    assert_eq!(lookup("fgserve_requests_completed_total"), Some(30.0));
    assert!(lookup("fgserve_plan_cache_hits_total").unwrap() > 0.0);
    assert_eq!(lookup("fgserve_plan_cache_entries"), Some(1.0));
    for phase in ["queue_wait", "batch_form", "plan_compile", "execute"] {
        assert_eq!(
            lookup(&format!(
                "fgserve_phase_latency_ms_count{{phase=\"{phase}\"}}"
            )),
            Some(30.0),
            "phase {phase} must have one sample per completed request"
        );
    }
    assert!(
        lookup("fgserve_phase_latency_ms_count{phase=\"serialize\"}").unwrap() > 0.0,
        "front-end must feed the serialize phase"
    );

    // Engine-side phases (queue wait → execute; serialize happens after
    // the e2e latency is stamped) must account for the end-to-end mean.
    let stats = handle.engine().stats();
    let phase_sum: f64 = [
        fg_serve::Phase::QueueWait,
        fg_serve::Phase::BatchForm,
        fg_serve::Phase::PlanCompile,
        fg_serve::Phase::Execute,
    ]
    .iter()
    .map(|&p| stats.phase(p).mean_ms)
    .sum();
    let e2e = stats.latency.mean_ms;
    assert!(
        (phase_sum - e2e).abs() <= e2e * 0.20 + 0.25,
        "phase means must sum to ~e2e mean: phases {phase_sum:.3} ms vs e2e {e2e:.3} ms"
    );

    handle.shutdown();
}

#[test]
fn slow_log_captures_phase_breakdown_over_wire() {
    let (engine, _task) = make_engine(ServeConfig {
        // Threshold 0: every completed request is logged with its phases.
        slow_ms: Some(0.0),
        ..ServeConfig::default()
    });
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let (mut writer, mut reader) = wire_client(handle.addr());
    for i in 0..5 {
        let reply = send_recv(&mut writer, &mut reader, &format!("INFER gcn {i} id=s{i}"));
        assert!(reply.starts_with("OK "), "{reply}");
    }

    let header = send_recv(&mut writer, &mut reader, "SLOWLOG 3");
    let n: usize = header
        .strip_prefix("SLOWLOG ")
        .expect("SLOWLOG header")
        .parse()
        .unwrap();
    assert_eq!(n, 3, "limit honored: {header}");
    for _ in 0..n {
        let mut entry = String::new();
        reader.read_line(&mut entry).unwrap();
        let entry = entry.trim_end();
        assert!(entry.starts_with("SLOW seq="), "{entry}");
        assert!(entry.contains("model=gcn"), "{entry}");
        for key in ["total_ms=", "queue_ms=", "batch_ms=", "compile_ms=", "execute_ms="] {
            let value = entry
                .split_ascii_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in {entry}"));
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad {key}{value}"));
        }
    }

    let entries = handle.engine().slow_requests(None);
    assert_eq!(entries.len(), 5, "threshold 0 logs every completed request");
    assert!(handle.engine().slow_total() >= 5);
    assert!(entries.iter().all(|e| e.trace_id != 0), "trace ids minted");
    handle.shutdown();
}

#[test]
fn memory_wire_command_reports_per_component_breakdown() {
    let (engine, task) = make_engine(ServeConfig::default());
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let vertices = task.graph.num_vertices();

    let (mut writer, mut reader) = wire_client(handle.addr());
    for i in 0..8 {
        let reply = send_recv(&mut writer, &mut reader, &format!("INFER gcn {}", i % vertices));
        assert!(reply.starts_with("OK "), "{reply}");
    }

    let header = send_recv(&mut writer, &mut reader, "MEMORY");
    let n: usize = header
        .strip_prefix("MEMORY ")
        .expect("MEMORY header")
        .parse()
        .unwrap();
    assert!(n > 0, "breakdown must not be empty: {header}");
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let mut entry = String::new();
        reader.read_line(&mut entry).unwrap();
        let entry = entry.trim_end().to_string();
        assert!(entry.starts_with("MEM "), "{entry}");
        lines.push(entry);
    }
    for component in ["graph_topology", "serve_batch", "plan_cache"] {
        let line = lines
            .iter()
            .find(|l| l.contains(&format!("component={component}")))
            .unwrap_or_else(|| panic!("missing component {component}"));
        for key in ["current=", "peak="] {
            let value = line
                .split_ascii_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in {line}"));
            value.parse::<u64>().unwrap_or_else(|_| panic!("bad {key}{value}"));
        }
    }
    let total = lines
        .iter()
        .find(|l| l.starts_with("MEM total "))
        .expect("total line");
    assert!(total.contains("mem_shed=0"), "{total}");
    let cache = lines
        .iter()
        .find(|l| l.starts_with("MEM plan_cache "))
        .expect("plan_cache summary line");
    assert!(cache.contains("entries=1"), "one plan compiled: {cache}");

    // With accounting compiled in, the registered graph must be charged.
    #[cfg(feature = "telemetry")]
    {
        let report = handle.engine().memory_report();
        let topo = report
            .components
            .iter()
            .find(|c| c.component.name() == "graph_topology")
            .expect("graph_topology snapshot");
        assert!(topo.current > 0, "registered graph topology must be charged");
        assert!(report.total_peak >= report.total_current);
    }

    handle.shutdown();
}

#[test]
fn seeded_requests_round_trip_and_match_full_graph_over_wire() {
    let (engine, task) = make_engine(ServeConfig::default());
    let expected = reference_logits(&task);
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let (mut writer, mut reader) = wire_client(handle.addr());

    // Full fanout (no fanout= option): seeded inference must reproduce the
    // full-graph logits bit-for-bit, over the wire.
    writeln!(writer, "INFER_SEEDS gcn 3,7,250 id=sd0").unwrap();
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    let header = fg_serve::protocol::parse_seeds_header(header.trim_end()).unwrap();
    assert_eq!(header.id, "sd0");
    assert_eq!(header.count, 3);
    assert!(header.sub_vertices > 0 && header.sub_edges > 0);
    for &seed in &[3usize, 7, 250] {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (node, resp) = fg_serve::protocol::parse_seed_line(line.trim_end()).unwrap();
        assert_eq!(node, seed, "SEED lines come back in request order");
        assert_eq!(
            resp.logits, expected[seed],
            "full-fanout seeded logits diverged from full graph for seed {seed}"
        );
    }

    // Capped fanout: still one line per seed, finite logits, smaller
    // subgraph than the full-fanout one.
    writeln!(writer, "INFER_SEEDS gcn 3,3 fanout=2,2 sample_seed=5 id=sd1").unwrap();
    let mut capped = String::new();
    reader.read_line(&mut capped).unwrap();
    let capped = fg_serve::protocol::parse_seeds_header(capped.trim_end()).unwrap();
    assert_eq!((capped.id.as_str(), capped.count), ("sd1", 2));
    assert!(capped.sub_vertices < header.sub_vertices, "fanout cap must shrink the subgraph");
    let mut rows = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let (node, resp) = fg_serve::protocol::parse_seed_line(line.trim_end()).unwrap();
        assert_eq!(node, 3);
        assert!(resp.logits.iter().all(|v| v.is_finite()));
        rows.push(resp);
    }
    assert_eq!(rows[0], rows[1], "duplicate seeds answer identically");

    // Errors stay single-line ERR.
    let reply = send_recv(&mut writer, &mut reader, "INFER_SEEDS nope 1 id=sd2");
    assert!(reply.starts_with("ERR sd2 unknown-model"), "{reply}");
    let reply = send_recv(&mut writer, &mut reader, "INFER_SEEDS gcn 999999 id=sd3");
    assert!(reply.starts_with("ERR sd3 bad-request"), "{reply}");

    handle.shutdown();
}

#[test]
fn repeated_seed_queries_hit_bucketed_plan_cache() {
    let (engine, task) = make_engine(ServeConfig::default());
    let vertices = task.graph.num_vertices();
    // Different seed sets each round sample different subgraphs; the
    // power-of-two shape buckets must still coalesce them onto a cached
    // schedule instead of re-tuning per request.
    for round in 0..12u64 {
        let seeds: Vec<usize> = (0..4).map(|i| ((round * 37 + i * 101) as usize) % vertices).collect();
        let resp = engine
            .infer_seeds(InferSeedsRequest {
                model: "gcn".into(),
                seeds: seeds.clone(),
                fanouts: Some(vec![4, 4]),
                sample_seed: round,
                feats: None,
                deadline: None,
            })
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(resp.results.len(), seeds.len());
    }
    let stats = engine.stats();
    assert!(
        stats.plan_hits > 0,
        "repeated seed queries must hit the bucketed plan cache (hits={} misses={})",
        stats.plan_hits,
        stats.plan_misses
    );
    assert!(
        stats.plan_misses < 12,
        "shape buckets must coalesce most rounds (misses={})",
        stats.plan_misses
    );
    // The sample phase got one sample per request, and sampled requests
    // complete like any other.
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.phase(fg_serve::Phase::Sample).count, 12);
    engine.shutdown();
}

#[test]
fn timed_out_requests_record_queue_wait_phase_over_wire() {
    // Satellite regression: requests dropped for expired deadlines during
    // batch formation used to bypass per-phase attribution entirely — the
    // timeout counter moved while queue_wait stayed flat, so dashboards
    // showed timeouts with no latency evidence. The two series must move
    // together.
    let (engine, _task) = make_engine(ServeConfig {
        workers: 1,
        exec_delay: Duration::from_millis(30),
        default_deadline: None,
        ..ServeConfig::default()
    });
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let (mut writer, mut reader) = wire_client(handle.addr());

    let scrape = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>| -> (f64, f64) {
        writeln!(writer, "METRICS").unwrap();
        let mut text = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            assert_ne!(reader.read_line(&mut line).unwrap(), 0, "EOF before # EOF");
            text.push_str(&line);
            if line.trim_end() == "# EOF" {
                break;
            }
        }
        (
            fg_serve::metrics::sample(&text, "fgserve_requests_timed_out_total").unwrap(),
            fg_serve::metrics::sample(&text, "fgserve_phase_latency_ms_count{phase=\"queue_wait\"}")
                .unwrap(),
        )
    };

    let (timeouts0, queue0) = scrape(&mut writer, &mut reader);
    for i in 0..3 {
        let reply = send_recv(
            &mut writer,
            &mut reader,
            &format!("INFER gcn 0 id=to{i} deadline_ms=1"),
        );
        assert!(reply.starts_with(&format!("ERR to{i} timeout")), "{reply}");
    }
    let (timeouts1, queue1) = scrape(&mut writer, &mut reader);
    assert_eq!(timeouts1 - timeouts0, 3.0, "three requests timed out");
    assert!(
        queue1 - queue0 >= 3.0,
        "every timed-out request must land a queue_wait sample: \
         timeouts {timeouts0}->{timeouts1}, queue_wait count {queue0}->{queue1}"
    );
    handle.shutdown();
}

#[cfg(feature = "telemetry")]
#[test]
fn sampled_request_yields_one_coherent_trace_tree() {
    use fg_telemetry::{SpanRecord, Sink};
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<(String, u64)>>);
    impl Sink for Collect {
        fn on_span(&self, record: &SpanRecord) {
            self.0
                .lock()
                .unwrap()
                .push((record.name.to_string(), record.trace_id));
        }
    }

    let sink = Arc::new(Collect(Mutex::new(Vec::new())));
    fg_telemetry::set_enabled(true);
    fg_telemetry::add_sink(sink.clone());

    let (engine, _task) = make_engine(ServeConfig {
        trace_sample: 1, // sample every request
        ..ServeConfig::default()
    });
    let handle = serve(engine, "127.0.0.1:0").expect("bind");
    let (mut writer, mut reader) = wire_client(handle.addr());
    let reply = send_recv(&mut writer, &mut reader, "INFER gcn 3 id=t0");
    assert!(reply.starts_with("OK "), "{reply}");
    handle.shutdown();

    let spans = sink.0.lock().unwrap().clone();
    let trace_id = spans
        .iter()
        .find(|(name, trace)| name == "serve/request" && *trace != 0)
        .map(|&(_, trace)| trace)
        .expect("front-end span carries the minted trace id");
    // Front-end, cross-thread queue wait, worker batch, kernel entry: one
    // tree under one id.
    for name in [
        "serve/request",
        "serve/queue_wait",
        "serve/batch",
        "serve/infer",
        "gnn/infer_batch",
    ] {
        assert!(
            spans.iter().any(|(n, t)| n == name && *t == trace_id),
            "span {name} missing from trace {trace_id:#x}; got {spans:?}"
        );
    }
}
