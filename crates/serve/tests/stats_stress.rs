//! Stress coverage for the ring-buffered `LatencyRecorder`: wraparound
//! past the retained window and concurrent record/snapshot.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fg_serve::stats::LatencyRecorder;

#[test]
fn wraparound_past_capacity_keeps_exact_total_and_window_quantiles() {
    let rec = LatencyRecorder::new();
    let window = LatencyRecorder::WINDOW;
    let total = window + window / 2;
    // Strictly increasing samples: after wraparound the retained window is
    // exactly the newest `window` values, so the minimum retained value is
    // `total - window + 1` and quantiles must land inside that range.
    for i in 1..=total {
        rec.record_value(i as f64);
    }
    let snap = rec.snapshot();
    assert_eq!(
        snap.count, total as u64,
        "count tracks every sample ever recorded, not just the window"
    );
    assert_eq!(snap.max_ms, total as f64, "newest sample retained");
    let window_min = (total - window + 1) as f64;
    assert!(
        snap.p50_ms >= window_min,
        "p50 {} must come from the retained window (>= {window_min})",
        snap.p50_ms
    );
    // Quantile monotonicity.
    assert!(snap.p50_ms <= snap.p95_ms);
    assert!(snap.p95_ms <= snap.p99_ms);
    assert!(snap.p99_ms <= snap.max_ms);
    // Exact nearest-rank over the known window contents.
    let q = |p: f64| {
        let rank = ((p * window as f64).ceil() as usize).clamp(1, window);
        window_min + (rank - 1) as f64
    };
    assert_eq!(snap.p50_ms, q(0.50));
    assert_eq!(snap.p95_ms, q(0.95));
    assert_eq!(snap.p99_ms, q(0.99));
}

#[test]
fn concurrent_record_and_snapshot_lose_nothing() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 5_000;
    let rec = Arc::new(LatencyRecorder::new());

    // Readers snapshot continuously while writers hammer the ring; every
    // intermediate snapshot must be internally consistent (monotone
    // quantiles, max bounded by the largest value any writer emits).
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_count = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = rec.snapshot();
                    assert!(snap.count >= last_count, "count is monotone");
                    last_count = snap.count;
                    if snap.count > 0 {
                        assert!(snap.p50_ms <= snap.p95_ms);
                        assert!(snap.p95_ms <= snap.p99_ms);
                        assert!(snap.p99_ms <= snap.max_ms);
                        assert!(snap.max_ms <= 100.0, "max within emitted range");
                    }
                    thread::yield_now();
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Values in (0, 100].
                    let ms = ((w * PER_WRITER + i) % 100 + 1) as u64;
                    rec.record(Duration::from_millis(ms));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }

    let snap = rec.snapshot();
    assert_eq!(
        snap.count,
        (WRITERS * PER_WRITER) as u64,
        "every concurrent record landed exactly once"
    );
    assert!(snap.p50_ms <= snap.p95_ms && snap.p95_ms <= snap.p99_ms);
}
