//! Engine-local serving statistics: lock-free event counters, an exact
//! (ring-buffered) latency recorder with p50/p95/p99 quantiles, always-on
//! **per-phase** latency accounting (queue-wait / batch-form / sample /
//! plan-compile / execute / serialize), a queue-depth gauge, a batch-size
//! distribution,
//! and a bounded slow-request log.
//!
//! These are always on and engine-scoped, complementing the process-wide
//! `fg-telemetry` registry (which can be compiled out): the `STATS` /
//! `METRICS` / `SLOWLOG` wire commands and the `fgserve bench` report read
//! from here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::batcher::QueueObserver;

/// Latest-window latency samples (milliseconds). Exact quantiles over up to
/// [`LatencyRecorder::WINDOW`] most recent samples; older samples are
/// overwritten ring-buffer style so memory stays bounded.
pub struct LatencyRecorder {
    ring: Mutex<Ring>,
}

struct Ring {
    samples: Vec<f64>,
    next: usize,
    total: u64,
}

/// Point-in-time quantile summary from a [`LatencyRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Samples ever recorded (not just the retained window).
    pub count: u64,
    /// Median, milliseconds. `NaN` when no samples were recorded.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Mean over the retained window, milliseconds.
    pub mean_ms: f64,
    /// Maximum over the retained window, milliseconds.
    pub max_ms: f64,
}

impl LatencySnapshot {
    const EMPTY: LatencySnapshot = LatencySnapshot {
        count: 0,
        p50_ms: f64::NAN,
        p95_ms: f64::NAN,
        p99_ms: f64::NAN,
        mean_ms: f64::NAN,
        max_ms: f64::NAN,
    };
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Retained sample window.
    pub const WINDOW: usize = 1 << 16;

    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            ring: Mutex::new(Ring {
                samples: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        self.record_value(latency.as_secs_f64() * 1e3);
    }

    /// Record one raw sample (the recorder is unit-agnostic: latencies go
    /// in as milliseconds, batch sizes as counts).
    pub fn record_value(&self, value: f64) {
        let mut ring = self.ring.lock().unwrap();
        if ring.samples.len() < Self::WINDOW {
            ring.samples.push(value);
        } else {
            let slot = ring.next;
            ring.samples[slot] = value;
            ring.next = (slot + 1) % Self::WINDOW;
        }
        ring.total += 1;
    }

    /// Exact nearest-rank quantiles over the retained window.
    pub fn snapshot(&self) -> LatencySnapshot {
        let ring = self.ring.lock().unwrap();
        if ring.samples.is_empty() {
            return LatencySnapshot::EMPTY;
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencySnapshot {
            count: ring.total,
            p50_ms: q(0.50),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_ms: *sorted.last().unwrap(),
        }
    }
}

/// One serve-side phase of a request's life. Every completed request
/// contributes one sample per phase (serialize is recorded by the TCP
/// front-end; embedded callers that never serialize leave it empty).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Accepted into the queue → the worker pulled its batch.
    QueueWait,
    /// Batch pulled → this request's model group started executing
    /// (deadline filtering, grouping, and earlier groups in the batch).
    BatchForm,
    /// Neighbor sampling + feature gather for seeded requests (zero for
    /// full-graph requests).
    Sample,
    /// Compiling a backend on a plan-cache miss (zero on a hit).
    PlanCompile,
    /// The group's batched forward pass. On sharded engines the exchange
    /// critical path is carved out into [`Phase::Exchange`] so the two
    /// stay additive.
    Execute,
    /// Halo-exchange critical path of a sharded forward pass: the slowest
    /// shard's time rebuilding halo rows between layers (zero on
    /// single-shard engines).
    Exchange,
    /// Formatting and writing the reply line (front-end only).
    Serialize,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 7;

    /// Every phase, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::QueueWait,
        Phase::BatchForm,
        Phase::Sample,
        Phase::PlanCompile,
        Phase::Execute,
        Phase::Exchange,
        Phase::Serialize,
    ];

    /// Stable snake_case name used in wire lines and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::BatchForm => "batch_form",
            Phase::Sample => "sample",
            Phase::PlanCompile => "plan_compile",
            Phase::Execute => "execute",
            Phase::Exchange => "exchange",
            Phase::Serialize => "serialize",
        }
    }
}

/// One entry in the slow-request log: the full phase breakdown of a request
/// whose serve-side latency crossed the configured threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// Monotonic sequence number (1-based) of this slow request.
    pub seq: u64,
    /// Trace id minted for the request (nonzero even when unsampled).
    pub trace_id: u64,
    /// Whether the request was trace-sampled (its spans carry the id).
    pub sampled: bool,
    /// Target model.
    pub model: String,
    /// Requested node.
    pub node: usize,
    /// End-to-end serve-side latency (accept → reply ready), milliseconds.
    pub total_ms: f64,
    /// Queue-wait phase, milliseconds.
    pub queue_ms: f64,
    /// Batch-formation phase, milliseconds.
    pub batch_ms: f64,
    /// Sample phase, milliseconds (zero for full-graph requests).
    pub sample_ms: f64,
    /// Plan-compile phase, milliseconds (zero on a plan-cache hit).
    pub compile_ms: f64,
    /// Execute phase, milliseconds.
    pub execute_ms: f64,
}

impl SlowEntry {
    /// Render as one `SLOW key=value ...` wire line.
    pub fn to_wire_line(&self) -> String {
        format!(
            "SLOW seq={} trace={:#x} sampled={} model={} node={} total_ms={:.3} \
             queue_ms={:.3} batch_ms={:.3} sample_ms={:.3} compile_ms={:.3} execute_ms={:.3}",
            self.seq,
            self.trace_id,
            self.sampled,
            self.model,
            self.node,
            self.total_ms,
            self.queue_ms,
            self.batch_ms,
            self.sample_ms,
            self.compile_ms,
            self.execute_ms,
        )
    }
}

/// Bounded ring of [`SlowEntry`]s, newest last. Capacity-bounded so a
/// pathological workload cannot grow the log without limit.
pub struct SlowLog {
    cap: usize,
    next_seq: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A log retaining at most `cap` most recent entries.
    pub fn new(cap: usize) -> Self {
        SlowLog {
            cap: cap.max(1),
            next_seq: AtomicU64::new(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Append `entry` (its `seq` is assigned here), evicting the oldest
    /// entry when full. Returns the assigned sequence number.
    pub fn push(&self, mut entry: SlowEntry) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        entry.seq = seq;
        let mut entries = self.entries.lock().unwrap();
        if entries.len() == self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
        seq
    }

    /// Slow requests ever seen (including evicted ones).
    pub fn total(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }

    /// Retained entries, oldest first, capped at `limit` newest when given.
    pub fn entries(&self, limit: Option<usize>) -> Vec<SlowEntry> {
        let entries = self.entries.lock().unwrap();
        let n = limit.unwrap_or(entries.len()).min(entries.len());
        entries.iter().skip(entries.len() - n).cloned().collect()
    }
}

/// Monotonic event counters plus latency/phase/batch recorders for one
/// engine instance.
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub shed: AtomicU64,
    /// Requests rejected at admission by the memory-budget gate.
    pub mem_shed: AtomicU64,
    /// Requests that expired before execution.
    pub timed_out: AtomicU64,
    /// Requests that failed inside inference.
    pub failed: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Batch executions that reused a cached compiled plan.
    pub plan_hits: AtomicU64,
    /// Batch executions that had to compile a fresh plan.
    pub plan_misses: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: LatencyRecorder,
    /// Per-phase latency recorders, indexed by [`Phase`] discriminant.
    pub phases: [LatencyRecorder; Phase::COUNT],
    /// Requests per dispatched batch (fed by the batcher).
    pub batch_sizes: LatencyRecorder,
    /// Items queued right now (fed by the batcher).
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_depth_max: AtomicU64,
    /// Model registrations that replaced (and released) a previous entry.
    pub models_replaced: AtomicU64,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            mem_shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            latency: LatencyRecorder::new(),
            phases: std::array::from_fn(|_| LatencyRecorder::new()),
            batch_sizes: LatencyRecorder::new(),
            queue_depth: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            models_replaced: AtomicU64::new(0),
        }
    }
}

impl ServeStats {
    /// Record one sample for `phase`.
    pub fn record_phase(&self, phase: Phase, latency: Duration) {
        self.phases[phase as usize].record(latency);
    }

    /// Consistent-enough point-in-time copy (individual loads are relaxed;
    /// totals may be mid-update by at most one in-flight request).
    pub fn snapshot(&self) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let hits = self.plan_hits.load(Ordering::Relaxed);
        let misses = self.plan_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed,
            shed: self.shed.load(Ordering::Relaxed),
            mem_shed: self.mem_shed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            plan_hits: hits,
            plan_misses: misses,
            avg_batch: completed as f64 / batches as f64,
            plan_hit_rate: hits as f64 / (hits + misses) as f64,
            latency: self.latency.snapshot(),
            phases: std::array::from_fn(|i| self.phases[i].snapshot()),
            batch_size: self.batch_sizes.snapshot(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            models_replaced: self.models_replaced.load(Ordering::Relaxed),
        }
    }
}

impl QueueObserver for ServeStats {
    fn on_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
        self.queue_depth_max.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn on_batch(&self, size: usize) {
        self.batch_sizes.record_value(size as f64);
    }
}

/// Plain-value copy of [`ServeStats`] plus derived rates.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// See [`ServeStats::accepted`].
    pub accepted: u64,
    /// See [`ServeStats::completed`].
    pub completed: u64,
    /// See [`ServeStats::shed`].
    pub shed: u64,
    /// See [`ServeStats::mem_shed`].
    pub mem_shed: u64,
    /// See [`ServeStats::timed_out`].
    pub timed_out: u64,
    /// See [`ServeStats::failed`].
    pub failed: u64,
    /// See [`ServeStats::batches`].
    pub batches: u64,
    /// See [`ServeStats::plan_hits`].
    pub plan_hits: u64,
    /// See [`ServeStats::plan_misses`].
    pub plan_misses: u64,
    /// Mean requests per executed batch (`NaN` before the first batch).
    pub avg_batch: f64,
    /// `plan_hits / (plan_hits + plan_misses)` (`NaN` before the first batch).
    pub plan_hit_rate: f64,
    /// Completed-request latency quantiles.
    pub latency: LatencySnapshot,
    /// Per-phase latency quantiles, indexed by [`Phase`] discriminant.
    pub phases: [LatencySnapshot; Phase::COUNT],
    /// Requests-per-batch distribution (values are counts, not ms).
    pub batch_size: LatencySnapshot,
    /// Current batching-queue depth.
    pub queue_depth: u64,
    /// High-water mark of the batching-queue depth.
    pub queue_depth_max: u64,
    /// See [`ServeStats::models_replaced`].
    pub models_replaced: u64,
}

/// Render a possibly-NaN statistic as a parseable number: `NaN`/`±inf`
/// (empty windows, zero denominators) become `0`. Emptiness stays
/// distinguishable via the adjacent `samples=`/count fields.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

impl StatsSnapshot {
    /// The snapshot for `phase`.
    pub fn phase(&self, phase: Phase) -> &LatencySnapshot {
        &self.phases[phase as usize]
    }

    /// Tail-latency attribution: each phase's share (0..=1) of the summed
    /// per-phase p99s — "p99 is 71% queue wait". Empty phases contribute 0.
    /// Returns an empty vector when no phase has samples yet.
    pub fn tail_attribution(&self) -> Vec<(Phase, f64)> {
        let p99 = |p: Phase| finite(self.phase(p).p99_ms).max(0.0);
        let total: f64 = Phase::ALL.iter().map(|&p| p99(p)).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        Phase::ALL.iter().map(|&p| (p, p99(p) / total)).collect()
    }

    /// One-line human summary of [`tail_attribution`](Self::tail_attribution).
    pub fn attribution_line(&self) -> String {
        let attr = self.tail_attribution();
        if attr.is_empty() {
            return "p99 attribution: no phase samples yet".into();
        }
        let mut parts: Vec<(Phase, f64)> = attr;
        parts.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let body: Vec<String> = parts
            .iter()
            .map(|(p, share)| format!("{} {:.0}%", p.name(), share * 100.0))
            .collect();
        format!("p99 attribution: {}", body.join("  "))
    }

    /// Render as a single `key=value` line for the `STATS` wire command.
    /// Every value is a parseable number: quantiles over an empty window
    /// render as `0.000` with `samples=0` marking the emptiness (naive
    /// consumers choke on literal `NaN`).
    pub fn to_wire_line(&self) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "accepted={} completed={} shed={} mem_shed={} timed_out={} failed={} batches={} \
             avg_batch={:.2} plan_hits={} plan_misses={} plan_hit_rate={:.4} \
             samples={} p50_ms={:.3} p95_ms={:.3} p99_ms={:.3} mean_ms={:.3} max_ms={:.3} \
             queue_depth={} queue_depth_max={} batch_samples={} batch_p50={:.1} batch_max={:.1} \
             models_replaced={}",
            self.accepted,
            self.completed,
            self.shed,
            self.mem_shed,
            self.timed_out,
            self.failed,
            self.batches,
            finite(self.avg_batch),
            self.plan_hits,
            self.plan_misses,
            finite(self.plan_hit_rate),
            self.latency.count,
            finite(self.latency.p50_ms),
            finite(self.latency.p95_ms),
            finite(self.latency.p99_ms),
            finite(self.latency.mean_ms),
            finite(self.latency.max_ms),
            self.queue_depth,
            self.queue_depth_max,
            self.batch_size.count,
            finite(self.batch_size.p50_ms),
            finite(self.batch_size.max_ms),
            self.models_replaced,
        );
        for phase in Phase::ALL {
            let snap = self.phase(phase);
            let _ = write!(
                line,
                " {0}_p50_ms={1:.3} {0}_p95_ms={2:.3} {0}_p99_ms={3:.3}",
                phase.name(),
                finite(snap.p50_ms),
                finite(snap.p95_ms),
                finite(snap.p99_ms),
            );
        }
        line
    }
}

/// Connection-level counters for the TCP front-end: admission, protocol
/// mix, dispatch-queue depth, and per-frame rejects. Owned by the engine
/// (so `METRICS` can render them from any front-end), written by the
/// server's poller and handler threads.
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Connections accepted (post admission gate).
    pub accepted: AtomicU64,
    /// Connections open right now.
    pub active: AtomicU64,
    /// Connections closed (by either side).
    pub closed: AtomicU64,
    /// Connections refused at accept because `max_conns` were already
    /// open.
    pub admission_shed: AtomicU64,
    /// Ready connections waiting for a handler right now (the accept-side
    /// queue ahead of the batcher).
    pub dispatch_depth: AtomicU64,
    /// High-water mark of `dispatch_depth`.
    pub dispatch_depth_max: AtomicU64,
    /// Connections negotiated onto the binary frame protocol.
    pub binary_conns: AtomicU64,
    /// Connections negotiated onto the text protocol.
    pub text_conns: AtomicU64,
    /// Malformed binary frames answered with a typed error (connection
    /// kept).
    pub bad_frames: AtomicU64,
    /// Malformed text lines answered with `ERR - bad-request` (connection
    /// kept).
    pub bad_lines: AtomicU64,
}

impl ConnStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            admission_shed: self.admission_shed.load(Ordering::Relaxed),
            dispatch_depth: self.dispatch_depth.load(Ordering::Relaxed),
            dispatch_depth_max: self.dispatch_depth_max.load(Ordering::Relaxed),
            binary_conns: self.binary_conns.load(Ordering::Relaxed),
            text_conns: self.text_conns.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            bad_lines: self.bad_lines.load(Ordering::Relaxed),
        }
    }

    /// Record one ready-connection dispatch-queue depth reading.
    pub fn on_dispatch_depth(&self, depth: usize) {
        self.dispatch_depth.store(depth as u64, Ordering::Relaxed);
        self.dispatch_depth_max
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`ConnStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnSnapshot {
    /// See [`ConnStats::accepted`].
    pub accepted: u64,
    /// See [`ConnStats::active`].
    pub active: u64,
    /// See [`ConnStats::closed`].
    pub closed: u64,
    /// See [`ConnStats::admission_shed`].
    pub admission_shed: u64,
    /// See [`ConnStats::dispatch_depth`].
    pub dispatch_depth: u64,
    /// See [`ConnStats::dispatch_depth_max`].
    pub dispatch_depth_max: u64,
    /// See [`ConnStats::binary_conns`].
    pub binary_conns: u64,
    /// See [`ConnStats::text_conns`].
    pub text_conns: u64,
    /// See [`ConnStats::bad_frames`].
    pub bad_frames: u64,
    /// See [`ConnStats::bad_lines`].
    pub bad_lines: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_nan() {
        let snap = LatencyRecorder::new().snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.p50_ms.is_nan());
        assert!(snap.max_ms.is_nan());
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let rec = LatencyRecorder::new();
        // 1..=100 ms
        for i in 1..=100u64 {
            rec.record(Duration::from_millis(i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.count, 100);
        assert!((snap.p50_ms - 50.0).abs() < 1e-9);
        assert!((snap.p95_ms - 95.0).abs() < 1e-9);
        assert!((snap.p99_ms - 99.0).abs() < 1e-9);
        assert!((snap.max_ms - 100.0).abs() < 1e-9);
        assert!((snap.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn stats_snapshot_derives_rates() {
        let stats = ServeStats::default();
        stats.completed.store(30, Ordering::Relaxed);
        stats.batches.store(10, Ordering::Relaxed);
        stats.plan_hits.store(9, Ordering::Relaxed);
        stats.plan_misses.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert!((snap.avg_batch - 3.0).abs() < 1e-12);
        assert!((snap.plan_hit_rate - 0.9).abs() < 1e-12);
        let line = snap.to_wire_line();
        assert!(line.contains("plan_hit_rate=0.9000"), "{line}");
    }

    #[test]
    fn empty_window_renders_parseable_zeros_with_sample_count() {
        let snap = ServeStats::default().snapshot();
        let line = snap.to_wire_line();
        // Regression: quantiles over an empty window used to render as
        // literal `NaN`, which naive `key=<number>` consumers cannot parse.
        assert!(!line.contains("NaN") && !line.contains("nan"), "{line}");
        assert!(line.contains("samples=0"), "{line}");
        assert!(line.contains("p50_ms=0.000"), "{line}");
        assert!(line.contains("queue_wait_p99_ms=0.000"), "{line}");
        // Every value must parse as f64.
        for tok in line.split_ascii_whitespace() {
            let (key, value) = tok.split_once('=').expect("key=value token");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable {key}={value} in {line}"
            );
        }
    }

    #[test]
    fn phase_recorders_and_attribution() {
        let stats = ServeStats::default();
        for _ in 0..50 {
            stats.record_phase(Phase::QueueWait, Duration::from_millis(70));
            stats.record_phase(Phase::Execute, Duration::from_millis(20));
            stats.record_phase(Phase::Serialize, Duration::from_millis(10));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.phase(Phase::QueueWait).count, 50);
        assert!((snap.phase(Phase::Execute).p99_ms - 20.0).abs() < 1e-9);
        let attr = snap.tail_attribution();
        let share: f64 = attr.iter().map(|&(_, s)| s).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to 1, got {share}");
        let queue_share = attr
            .iter()
            .find(|&&(p, _)| p == Phase::QueueWait)
            .unwrap()
            .1;
        assert!((queue_share - 0.7).abs() < 1e-9, "{queue_share}");
        assert!(snap.attribution_line().contains("queue_wait 70%"));
        let line = snap.to_wire_line();
        assert!(line.contains("queue_wait_p50_ms=70.000"), "{line}");
        assert!(line.contains("execute_p99_ms=20.000"), "{line}");
    }

    #[test]
    fn slow_log_bounds_and_orders_entries() {
        let log = SlowLog::new(3);
        for node in 0..5usize {
            log.push(SlowEntry {
                seq: 0,
                trace_id: 0xabc,
                sampled: false,
                model: "gcn".into(),
                node,
                total_ms: 12.5,
                queue_ms: 9.0,
                batch_ms: 0.5,
                sample_ms: 0.0,
                compile_ms: 0.0,
                execute_ms: 3.0,
            });
        }
        assert_eq!(log.total(), 5);
        let entries = log.entries(None);
        assert_eq!(entries.len(), 3, "bounded at capacity");
        assert_eq!(entries[0].seq, 3, "oldest retained entry");
        assert_eq!(entries[2].seq, 5, "newest last");
        let last_two = log.entries(Some(2));
        assert_eq!(last_two[0].seq, 4);
        let line = entries[2].to_wire_line();
        assert!(line.starts_with("SLOW seq=5 trace=0xabc"), "{line}");
        assert!(line.contains("queue_ms=9.000"), "{line}");
    }

    #[test]
    fn queue_observer_tracks_depth_and_batches() {
        let stats = ServeStats::default();
        stats.on_depth(3);
        stats.on_depth(9);
        stats.on_depth(1);
        stats.on_batch(8);
        stats.on_batch(2);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.queue_depth_max, 9);
        assert_eq!(snap.batch_size.count, 2);
        assert!((snap.batch_size.max_ms - 8.0).abs() < 1e-12);
    }
}
