//! Engine-local serving statistics: lock-free event counters plus an exact
//! (ring-buffered) latency recorder with p50/p95/p99 quantiles.
//!
//! These are always on and engine-scoped, complementing the process-wide
//! `fg-telemetry` registry (which can be compiled out): the `STATS` wire
//! command and the `fgserve bench` report read from here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latest-window latency samples (milliseconds). Exact quantiles over up to
/// [`LatencyRecorder::WINDOW`] most recent samples; older samples are
/// overwritten ring-buffer style so memory stays bounded.
pub struct LatencyRecorder {
    ring: Mutex<Ring>,
}

struct Ring {
    samples: Vec<f64>,
    next: usize,
    total: u64,
}

/// Point-in-time quantile summary from a [`LatencyRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySnapshot {
    /// Samples ever recorded (not just the retained window).
    pub count: u64,
    /// Median, milliseconds. `NaN` when no samples were recorded.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Mean over the retained window, milliseconds.
    pub mean_ms: f64,
    /// Maximum over the retained window, milliseconds.
    pub max_ms: f64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Retained sample window.
    pub const WINDOW: usize = 1 << 16;

    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            ring: Mutex::new(Ring {
                samples: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let ms = latency.as_secs_f64() * 1e3;
        let mut ring = self.ring.lock().unwrap();
        if ring.samples.len() < Self::WINDOW {
            ring.samples.push(ms);
        } else {
            let slot = ring.next;
            ring.samples[slot] = ms;
            ring.next = (slot + 1) % Self::WINDOW;
        }
        ring.total += 1;
    }

    /// Exact nearest-rank quantiles over the retained window.
    pub fn snapshot(&self) -> LatencySnapshot {
        let ring = self.ring.lock().unwrap();
        if ring.samples.is_empty() {
            return LatencySnapshot {
                count: 0,
                p50_ms: f64::NAN,
                p95_ms: f64::NAN,
                p99_ms: f64::NAN,
                mean_ms: f64::NAN,
                max_ms: f64::NAN,
            };
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencySnapshot {
            count: ring.total,
            p50_ms: q(0.50),
            p95_ms: q(0.95),
            p99_ms: q(0.99),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_ms: *sorted.last().unwrap(),
        }
    }
}

/// Monotonic event counters for one engine instance.
#[derive(Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    pub shed: AtomicU64,
    /// Requests that expired before execution.
    pub timed_out: AtomicU64,
    /// Requests that failed inside inference.
    pub failed: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Batch executions that reused a cached compiled plan.
    pub plan_hits: AtomicU64,
    /// Batch executions that had to compile a fresh plan.
    pub plan_misses: AtomicU64,
    /// End-to-end latency of completed requests.
    pub latency: LatencyRecorder,
}

/// Plain-value copy of [`ServeStats`] plus derived rates.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// See [`ServeStats::accepted`].
    pub accepted: u64,
    /// See [`ServeStats::completed`].
    pub completed: u64,
    /// See [`ServeStats::shed`].
    pub shed: u64,
    /// See [`ServeStats::timed_out`].
    pub timed_out: u64,
    /// See [`ServeStats::failed`].
    pub failed: u64,
    /// See [`ServeStats::batches`].
    pub batches: u64,
    /// See [`ServeStats::plan_hits`].
    pub plan_hits: u64,
    /// See [`ServeStats::plan_misses`].
    pub plan_misses: u64,
    /// Mean requests per executed batch (`NaN` before the first batch).
    pub avg_batch: f64,
    /// `plan_hits / (plan_hits + plan_misses)` (`NaN` before the first batch).
    pub plan_hit_rate: f64,
    /// Completed-request latency quantiles.
    pub latency: LatencySnapshot,
}

impl ServeStats {
    /// Consistent-enough point-in-time copy (individual loads are relaxed;
    /// totals may be mid-update by at most one in-flight request).
    pub fn snapshot(&self) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let hits = self.plan_hits.load(Ordering::Relaxed);
        let misses = self.plan_misses.load(Ordering::Relaxed);
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed,
            shed: self.shed.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            plan_hits: hits,
            plan_misses: misses,
            avg_batch: completed as f64 / batches as f64,
            plan_hit_rate: hits as f64 / (hits + misses) as f64,
            latency: self.latency.snapshot(),
        }
    }
}

impl StatsSnapshot {
    /// Render as a single `key=value` line for the `STATS` wire command.
    /// NaN quantiles (no samples yet) render as `nan`.
    pub fn to_wire_line(&self) -> String {
        format!(
            "accepted={} completed={} shed={} timed_out={} failed={} batches={} \
             avg_batch={:.2} plan_hits={} plan_misses={} plan_hit_rate={:.4} \
             p50_ms={:.3} p95_ms={:.3} p99_ms={:.3} mean_ms={:.3} max_ms={:.3}",
            self.accepted,
            self.completed,
            self.shed,
            self.timed_out,
            self.failed,
            self.batches,
            self.avg_batch,
            self.plan_hits,
            self.plan_misses,
            self.plan_hit_rate,
            self.latency.p50_ms,
            self.latency.p95_ms,
            self.latency.p99_ms,
            self.latency.mean_ms,
            self.latency.max_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_nan() {
        let snap = LatencyRecorder::new().snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.p50_ms.is_nan());
        assert!(snap.max_ms.is_nan());
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let rec = LatencyRecorder::new();
        // 1..=100 ms
        for i in 1..=100u64 {
            rec.record(Duration::from_millis(i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.count, 100);
        assert!((snap.p50_ms - 50.0).abs() < 1e-9);
        assert!((snap.p95_ms - 95.0).abs() < 1e-9);
        assert!((snap.p99_ms - 99.0).abs() < 1e-9);
        assert!((snap.max_ms - 100.0).abs() < 1e-9);
        assert!((snap.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn stats_snapshot_derives_rates() {
        let stats = ServeStats::default();
        stats.completed.store(30, Ordering::Relaxed);
        stats.batches.store(10, Ordering::Relaxed);
        stats.plan_hits.store(9, Ordering::Relaxed);
        stats.plan_misses.store(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert!((snap.avg_batch - 3.0).abs() < 1e-12);
        assert!((snap.plan_hit_rate - 0.9).abs() < 1e-12);
        let line = snap.to_wire_line();
        assert!(line.contains("plan_hit_rate=0.9000"), "{line}");
        assert!(line.contains("p50_ms=NaN") || line.contains("p50_ms=nan"), "{line}");
    }
}
