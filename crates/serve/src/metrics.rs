//! Prometheus-style text exposition for the serving engine, backing the
//! `METRICS` wire command.
//!
//! Two layers compose here:
//!
//! * **Always-on engine series** (`fgserve_*`), rendered from the engine's
//!   own [`StatsSnapshot`] — counters, queue-depth gauges, and
//!   summary-style quantile series for request latency, batch size, and
//!   every serve [`Phase`]. These exist even when `fg-telemetry` is
//!   compiled out, so `METRICS` always answers.
//! * **The process-wide telemetry registry** (`featgraph_*`), appended via
//!   [`fg_telemetry::prometheus_write`] — empty when compiled out or
//!   runtime-disabled.
//!
//! The exposition is terminated by the OpenMetrics `# EOF` marker, which
//! doubles as the framing sentinel on the line-oriented wire protocol:
//! clients read until they see it.

use crate::stats::{LatencySnapshot, Phase, StatsSnapshot};

/// One parsed sample: series identity (`name{labels}` exactly as exposed)
/// and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name including any label set, e.g.
    /// `fgserve_phase_latency_ms{phase="execute",quantile="0.99"}`.
    pub series: String,
    /// Sample value.
    pub value: f64,
}

fn write_summary(out: &mut String, name: &str, labels: &str, snap: &LatencySnapshot) {
    use std::fmt::Write;
    let sep = if labels.is_empty() { "" } else { "," };
    if snap.count > 0 {
        for (q, v) in [
            ("0.5", snap.p50_ms),
            ("0.95", snap.p95_ms),
            ("0.99", snap.p99_ms),
        ] {
            let _ = writeln!(out, "{name}{{{labels}{sep}quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{name}_max{{{labels}}} {}", snap.max_ms);
    }
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
}

/// Render the full exposition for one engine snapshot. `plan_cache_entries`
/// is the live compiled-plan cache size (a gauge the snapshot doesn't
/// carry).
pub fn render(stats: &StatsSnapshot, plan_cache_entries: usize) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    for (name, value) in [
        ("fgserve_requests_accepted_total", stats.accepted),
        ("fgserve_requests_completed_total", stats.completed),
        ("fgserve_requests_shed_total", stats.shed),
        ("fgserve_requests_timed_out_total", stats.timed_out),
        ("fgserve_requests_failed_total", stats.failed),
        ("fgserve_batches_total", stats.batches),
        ("fgserve_plan_cache_hits_total", stats.plan_hits),
        ("fgserve_plan_cache_misses_total", stats.plan_misses),
    ] {
        let _ = writeln!(out, "# TYPE {} counter", name.trim_end_matches("_total"));
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in [
        ("fgserve_queue_depth", stats.queue_depth),
        ("fgserve_queue_depth_max", stats.queue_depth_max),
        ("fgserve_plan_cache_entries", plan_cache_entries as u64),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }

    let _ = writeln!(out, "# TYPE fgserve_request_latency_ms summary");
    write_summary(&mut out, "fgserve_request_latency_ms", "", &stats.latency);
    let _ = writeln!(out, "# TYPE fgserve_batch_size summary");
    write_summary(&mut out, "fgserve_batch_size", "", &stats.batch_size);
    let _ = writeln!(out, "# TYPE fgserve_phase_latency_ms summary");
    for phase in Phase::ALL {
        write_summary(
            &mut out,
            "fgserve_phase_latency_ms",
            &format!("phase=\"{}\"", phase.name()),
            stats.phase(phase),
        );
    }

    fg_telemetry::prometheus_write(&mut out);
    out.push_str("# EOF\n");
    out
}

/// Strictly parse a text exposition: every line must be a `#` comment or a
/// `series value` sample with a finite-or-NaN-free parseable value, and the
/// last line must be `# EOF`. Returns the samples in exposition order.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("line {}: content after # EOF", lineno + 1));
        }
        if let Some(comment) = line.strip_prefix('#') {
            if comment.trim() == "EOF" {
                saw_eof = true;
            }
            continue;
        }
        // `name{labels} value` — the value is everything after the last
        // space outside braces; since label values here never contain
        // spaces, splitting on the final space is exact.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value in {line:?}", lineno + 1))?;
        if value.is_nan() {
            return Err(format!("line {}: NaN sample in {line:?}", lineno + 1));
        }
        if series.is_empty() || !series.chars().next().unwrap().is_ascii_alphabetic() {
            return Err(format!("line {}: bad series name in {line:?}", lineno + 1));
        }
        samples.push(Sample {
            series: series.to_string(),
            value,
        });
    }
    if !saw_eof {
        return Err("exposition not terminated by # EOF".into());
    }
    Ok(samples)
}

/// First sample whose series identity matches `series` exactly.
pub fn sample(text: &str, series: &str) -> Option<f64> {
    parse_exposition(text)
        .ok()?
        .into_iter()
        .find(|s| s.series == series)
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ServeStats;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    #[test]
    fn empty_engine_exposition_parses_and_has_always_on_series() {
        let stats = ServeStats::default();
        let text = render(&stats.snapshot(), 0);
        let samples = parse_exposition(&text).expect("parseable");
        assert!(text.ends_with("# EOF\n"));
        let count = |name: &str| {
            samples
                .iter()
                .find(|s| s.series == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(count("fgserve_requests_accepted_total"), 0.0);
        assert_eq!(count("fgserve_plan_cache_entries"), 0.0);
        assert_eq!(
            count("fgserve_phase_latency_ms_count{phase=\"queue_wait\"}"),
            0.0
        );
        // No quantile series (and no NaN) when the window is empty.
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("quantile"), "{text}");
    }

    #[test]
    fn populated_phase_series_expose_quantiles() {
        let stats = ServeStats::default();
        stats.completed.store(4, Ordering::Relaxed);
        for _ in 0..10 {
            stats.record_phase(Phase::Execute, Duration::from_millis(8));
        }
        let text = render(&stats.snapshot(), 3);
        assert_eq!(
            sample(
                &text,
                "fgserve_phase_latency_ms{phase=\"execute\",quantile=\"0.99\"}"
            ),
            Some(8.0)
        );
        assert_eq!(
            sample(&text, "fgserve_phase_latency_ms_count{phase=\"execute\"}"),
            Some(10.0)
        );
        assert_eq!(sample(&text, "fgserve_plan_cache_entries"), Some(3.0));
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse_exposition("fgserve_x 1\n").is_err(), "missing EOF");
        assert!(
            parse_exposition("fgserve_x notanumber\n# EOF\n").is_err(),
            "bad value"
        );
        assert!(
            parse_exposition("fgserve_x NaN\n# EOF\n").is_err(),
            "NaN sample"
        );
        assert!(
            parse_exposition("# EOF\nfgserve_x 1\n").is_err(),
            "content after EOF"
        );
        assert!(parse_exposition("# hello\n# EOF\n").is_ok(), "comments ok");
    }
}
