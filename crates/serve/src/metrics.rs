//! Prometheus-style text exposition for the serving engine, backing the
//! `METRICS` wire command.
//!
//! Two layers compose here:
//!
//! * **Always-on engine series** (`fgserve_*`), rendered from the engine's
//!   own [`StatsSnapshot`] — counters, queue-depth gauges, and
//!   summary-style quantile series for request latency, batch size, and
//!   every serve [`Phase`]. These exist even when `fg-telemetry` is
//!   compiled out, so `METRICS` always answers.
//! * **The process-wide telemetry registry** (`featgraph_*`), appended via
//!   [`fg_telemetry::prometheus_write`] — empty when compiled out or
//!   runtime-disabled.
//!
//! The exposition is terminated by the OpenMetrics `# EOF` marker, which
//! doubles as the framing sentinel on the line-oriented wire protocol:
//! clients read until they see it.

use crate::engine::{MemoryReport, ShardsReport};
use crate::stats::{ConnSnapshot, LatencySnapshot, Phase, StatsSnapshot};

/// One parsed sample: series identity (`name{labels}` exactly as exposed)
/// and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name including any label set, e.g.
    /// `fgserve_phase_latency_ms{phase="execute",quantile="0.99"}`.
    pub series: String,
    /// Sample value.
    pub value: f64,
}

fn write_summary(out: &mut String, name: &str, labels: &str, snap: &LatencySnapshot) {
    use std::fmt::Write;
    let sep = if labels.is_empty() { "" } else { "," };
    if snap.count > 0 {
        for (q, v) in [
            ("0.5", snap.p50_ms),
            ("0.95", snap.p95_ms),
            ("0.99", snap.p99_ms),
        ] {
            let _ = writeln!(out, "{name}{{{labels}{sep}quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{name}_max{{{labels}}} {}", snap.max_ms);
    }
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
}

/// Render the full exposition for one engine snapshot. `mem` carries the
/// live gauges the snapshot doesn't: the accounted-memory breakdown and the
/// plan-cache occupancy. `shards` adds the per-shard `fgserve_shard_*`
/// series (none emitted when the engine serves single-worker). `conn`
/// carries the TCP front-end's connection counters — all-zero for embedded
/// engines with no listener, so the series still exist and scrapes can
/// `--require` them unconditionally.
pub fn render(
    stats: &StatsSnapshot,
    mem: &MemoryReport,
    shards: &ShardsReport,
    conn: &ConnSnapshot,
) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    for (name, value) in [
        ("fgserve_requests_accepted_total", stats.accepted),
        ("fgserve_requests_completed_total", stats.completed),
        ("fgserve_requests_shed_total", stats.shed),
        ("fgserve_requests_mem_shed_total", stats.mem_shed),
        ("fgserve_requests_timed_out_total", stats.timed_out),
        ("fgserve_requests_failed_total", stats.failed),
        ("fgserve_batches_total", stats.batches),
        ("fgserve_plan_cache_hits_total", stats.plan_hits),
        ("fgserve_plan_cache_misses_total", stats.plan_misses),
        ("fgserve_plan_cache_evictions_total", mem.plan_cache_evictions),
        ("fgserve_models_replaced_total", stats.models_replaced),
    ] {
        let _ = writeln!(out, "# TYPE {} counter", name.trim_end_matches("_total"));
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in [
        ("fgserve_queue_depth", stats.queue_depth),
        ("fgserve_queue_depth_max", stats.queue_depth_max),
        ("fgserve_plan_cache_entries", mem.plan_cache_entries),
        ("fgserve_plan_cache_bytes", mem.plan_cache_bytes),
        ("fgserve_plan_cache_capacity_bytes", mem.plan_cache_capacity),
        ("fgserve_mem_total_bytes", mem.total_current),
        ("fgserve_mem_total_peak_bytes", mem.total_peak),
        ("fgserve_mem_budget_bytes", mem.mem_budget),
        ("fgserve_models_registered", mem.models_registered),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(out, "# TYPE fgserve_mem_component_bytes gauge");
    let _ = writeln!(out, "# TYPE fgserve_mem_component_peak_bytes gauge");
    for c in &mem.components {
        let _ = writeln!(
            out,
            "fgserve_mem_component_bytes{{component=\"{}\"}} {}",
            c.component.name(),
            c.current
        );
        let _ = writeln!(
            out,
            "fgserve_mem_component_peak_bytes{{component=\"{}\"}} {}",
            c.component.name(),
            c.peak
        );
    }
    if let Some(rss) = mem.rss {
        for (name, value) in [
            ("fgserve_mem_rss_bytes", rss.current_bytes),
            ("fgserve_mem_rss_peak_bytes", rss.peak_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
    }

    if !shards.lines.is_empty() {
        // Aggregate first (unlabeled — what smoke checks scrape), then the
        // per-model-per-shard breakdown.
        let _ = writeln!(out, "# TYPE fgserve_shard_exchange_bytes counter");
        let _ = writeln!(
            out,
            "fgserve_shard_exchange_bytes_total {}",
            shards.total_exchange_bytes()
        );
        let _ = writeln!(out, "# TYPE fgserve_shards gauge");
        let _ = writeln!(out, "fgserve_shards {}", shards.shards);
        let _ = writeln!(out, "# TYPE fgserve_shard_rows_routed counter");
        let _ = writeln!(out, "# TYPE fgserve_shard_owned_vertices gauge");
        let _ = writeln!(out, "# TYPE fgserve_shard_halo_vertices gauge");
        let _ = writeln!(out, "# TYPE fgserve_shard_edges gauge");
        let _ = writeln!(out, "# TYPE fgserve_shard_mem_bytes gauge");
        for line in &shards.lines {
            let labels = format!("model=\"{}\",shard=\"{}\"", line.model, line.shard);
            for (name, value) in [
                ("fgserve_shard_exchange_bytes_total", line.exchange_bytes),
                ("fgserve_shard_rows_routed_total", line.rows_routed),
                ("fgserve_shard_owned_vertices", line.owned),
                ("fgserve_shard_halo_vertices", line.halo),
                ("fgserve_shard_edges", line.edges),
                ("fgserve_shard_mem_bytes", line.mem_bytes),
            ] {
                let _ = writeln!(out, "{name}{{{labels}}} {value}");
            }
        }
    }

    for (name, value) in [
        ("fgserve_conn_accepted_total", conn.accepted),
        ("fgserve_conn_closed_total", conn.closed),
        ("fgserve_conn_bad_frames_total", conn.bad_frames),
        ("fgserve_conn_bad_lines_total", conn.bad_lines),
    ] {
        let _ = writeln!(out, "# TYPE {} counter", name.trim_end_matches("_total"));
        let _ = writeln!(out, "{name} {value}");
    }
    let _ = writeln!(out, "# TYPE fgserve_conn_admission_shed counter");
    let _ = writeln!(
        out,
        "fgserve_conn_admission_shed_total{{reason=\"max-conns\"}} {}",
        conn.admission_shed
    );
    let _ = writeln!(out, "# TYPE fgserve_conn_protocol counter");
    for (proto, value) in [("binary", conn.binary_conns), ("text", conn.text_conns)] {
        let _ = writeln!(
            out,
            "fgserve_conn_protocol_total{{protocol=\"{proto}\"}} {value}"
        );
    }
    for (name, value) in [
        ("fgserve_conn_active", conn.active),
        ("fgserve_conn_dispatch_depth", conn.dispatch_depth),
        ("fgserve_conn_dispatch_depth_max", conn.dispatch_depth_max),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }

    let _ = writeln!(out, "# TYPE fgserve_request_latency_ms summary");
    write_summary(&mut out, "fgserve_request_latency_ms", "", &stats.latency);
    let _ = writeln!(out, "# TYPE fgserve_batch_size summary");
    write_summary(&mut out, "fgserve_batch_size", "", &stats.batch_size);
    let _ = writeln!(out, "# TYPE fgserve_phase_latency_ms summary");
    for phase in Phase::ALL {
        write_summary(
            &mut out,
            "fgserve_phase_latency_ms",
            &format!("phase=\"{}\"", phase.name()),
            stats.phase(phase),
        );
    }

    fg_telemetry::prometheus_write(&mut out);
    out.push_str("# EOF\n");
    out
}

/// Strictly parse a text exposition: every line must be a `#` comment or a
/// `series value` sample with a finite-or-NaN-free parseable value, and the
/// last line must be `# EOF`. Returns the samples in exposition order.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut saw_eof = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("line {}: content after # EOF", lineno + 1));
        }
        if let Some(comment) = line.strip_prefix('#') {
            if comment.trim() == "EOF" {
                saw_eof = true;
            }
            continue;
        }
        // `name{labels} value` — the value is everything after the last
        // space outside braces; since label values here never contain
        // spaces, splitting on the final space is exact.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value in {line:?}", lineno + 1))?;
        if value.is_nan() {
            return Err(format!("line {}: NaN sample in {line:?}", lineno + 1));
        }
        if series.is_empty() || !series.chars().next().unwrap().is_ascii_alphabetic() {
            return Err(format!("line {}: bad series name in {line:?}", lineno + 1));
        }
        samples.push(Sample {
            series: series.to_string(),
            value,
        });
    }
    if !saw_eof {
        return Err("exposition not terminated by # EOF".into());
    }
    Ok(samples)
}

/// First sample whose series identity matches `series` exactly.
pub fn sample(text: &str, series: &str) -> Option<f64> {
    parse_exposition(text)
        .ok()?
        .into_iter()
        .find(|s| s.series == series)
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ServeStats;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn mem_with_entries(entries: u64) -> MemoryReport {
        MemoryReport {
            components: fg_telemetry::mem_snapshot(),
            total_current: 0,
            total_peak: 0,
            plan_cache_entries: entries,
            plan_cache_bytes: 0,
            plan_cache_capacity: 0,
            plan_cache_evictions: 0,
            mem_budget: 0,
            mem_shed: 0,
            models_registered: 0,
            models_replaced: 0,
            rss: fg_telemetry::read_rss(),
        }
    }

    #[test]
    fn empty_engine_exposition_parses_and_has_always_on_series() {
        let stats = ServeStats::default();
        let text = render(&stats.snapshot(), &mem_with_entries(0), &ShardsReport::default(), &ConnSnapshot::default());
        let samples = parse_exposition(&text).expect("parseable");
        assert!(text.ends_with("# EOF\n"));
        // Single-worker engines expose no shard series at all.
        assert!(!text.contains("fgserve_shard"), "{text}");
        let count = |name: &str| {
            samples
                .iter()
                .find(|s| s.series == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(count("fgserve_requests_accepted_total"), 0.0);
        assert_eq!(count("fgserve_plan_cache_entries"), 0.0);
        assert_eq!(count("fgserve_mem_total_bytes"), 0.0);
        // Component series exist for every component (values depend on
        // whether accounting is compiled in, so only presence is asserted).
        let _ = count("fgserve_mem_component_bytes{component=\"plan_cache\"}");
        let _ = count("fgserve_mem_component_peak_bytes{component=\"serve_batch\"}");
        assert_eq!(
            count("fgserve_phase_latency_ms_count{phase=\"queue_wait\"}"),
            0.0
        );
        // No quantile series (and no NaN) when the window is empty.
        assert!(!text.contains("NaN"), "{text}");
        assert!(!text.contains("quantile"), "{text}");
    }

    #[test]
    fn populated_phase_series_expose_quantiles() {
        let stats = ServeStats::default();
        stats.completed.store(4, Ordering::Relaxed);
        for _ in 0..10 {
            stats.record_phase(Phase::Execute, Duration::from_millis(8));
        }
        let text = render(&stats.snapshot(), &mem_with_entries(3), &ShardsReport::default(), &ConnSnapshot::default());
        assert_eq!(
            sample(
                &text,
                "fgserve_phase_latency_ms{phase=\"execute\",quantile=\"0.99\"}"
            ),
            Some(8.0)
        );
        assert_eq!(
            sample(&text, "fgserve_phase_latency_ms_count{phase=\"execute\"}"),
            Some(10.0)
        );
        assert_eq!(sample(&text, "fgserve_plan_cache_entries"), Some(3.0));
    }

    #[test]
    fn sharded_engine_exposes_per_shard_and_aggregate_series() {
        use crate::engine::ShardLine;
        let stats = ServeStats::default();
        let shards = ShardsReport {
            shards: 2,
            lines: vec![
                ShardLine {
                    model: "gcn".into(),
                    shard: 0,
                    strategy: "range".into(),
                    owned: 8,
                    locals: 11,
                    halo: 3,
                    edges: 40,
                    rows_routed: 5,
                    exchange_bytes: 96,
                    mem_bytes: 2048,
                },
                ShardLine {
                    model: "gcn".into(),
                    shard: 1,
                    strategy: "range".into(),
                    owned: 8,
                    locals: 12,
                    halo: 4,
                    edges: 44,
                    rows_routed: 7,
                    exchange_bytes: 128,
                    mem_bytes: 2304,
                },
            ],
        };
        let text = render(&stats.snapshot(), &mem_with_entries(0), &shards, &ConnSnapshot::default());
        assert_eq!(
            sample(&text, "fgserve_shard_exchange_bytes_total"),
            Some(224.0),
            "aggregate sums both shards"
        );
        assert_eq!(sample(&text, "fgserve_shards"), Some(2.0));
        assert_eq!(
            sample(
                &text,
                "fgserve_shard_exchange_bytes_total{model=\"gcn\",shard=\"1\"}"
            ),
            Some(128.0)
        );
        assert_eq!(
            sample(
                &text,
                "fgserve_shard_rows_routed_total{model=\"gcn\",shard=\"0\"}"
            ),
            Some(5.0)
        );
        assert_eq!(
            sample(&text, "fgserve_shard_halo_vertices{model=\"gcn\",shard=\"1\"}"),
            Some(4.0)
        );
        parse_exposition(&text).expect("sharded exposition still parses");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse_exposition("fgserve_x 1\n").is_err(), "missing EOF");
        assert!(
            parse_exposition("fgserve_x notanumber\n# EOF\n").is_err(),
            "bad value"
        );
        assert!(
            parse_exposition("fgserve_x NaN\n# EOF\n").is_err(),
            "NaN sample"
        );
        assert!(
            parse_exposition("# EOF\nfgserve_x 1\n").is_err(),
            "content after EOF"
        );
        assert!(parse_exposition("# hello\n# EOF\n").is_ok(), "comments ok");
    }

    #[test]
    fn parser_keeps_escaped_label_values_in_series_identity() {
        // Prometheus label values may contain escaped quotes and backslashes;
        // the series identity must be preserved byte-for-byte.
        let text = "m{path=\"a\\\"b\\\\c\"} 4\n# EOF\n";
        let samples = parse_exposition(text).expect("parseable");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].series, "m{path=\"a\\\"b\\\\c\"}");
        assert_eq!(samples[0].value, 4.0);
    }

    #[test]
    fn parser_accepts_negative_and_exponent_form_numbers() {
        let text = "m_neg -12.5\nm_exp 1.5e3\nm_negexp -2E-2\nm_inf inf\n# EOF\n";
        let samples = parse_exposition(text).expect("parseable");
        assert_eq!(samples[0].value, -12.5);
        assert_eq!(samples[1].value, 1500.0);
        assert_eq!(samples[2].value, -0.02);
        assert!(samples[3].value.is_infinite());
    }

    #[test]
    fn parser_returns_duplicate_series_in_order_and_sample_picks_first() {
        let text = "dup 1\nother 5\ndup 2\n# EOF\n";
        let samples = parse_exposition(text).expect("parseable");
        let dups: Vec<f64> = samples
            .iter()
            .filter(|s| s.series == "dup")
            .map(|s| s.value)
            .collect();
        assert_eq!(dups, vec![1.0, 2.0], "duplicates kept in exposition order");
        assert_eq!(sample(text, "dup"), Some(1.0), "sample() takes the first");
    }

    #[test]
    fn parser_rejects_missing_eof_even_with_trailing_comment() {
        assert!(parse_exposition("").is_err(), "empty input");
        assert!(
            parse_exposition("m 1\n# almost EOF but not\n").is_err(),
            "comment that is not # EOF does not terminate"
        );
        assert!(parse_exposition("m 1\n#EOF\n").is_ok(), "no-space # EOF ok");
    }
}
