//! A one-value rendezvous cell (`Mutex<Option<T>>` + `Condvar`) used as the
//! reply channel from a worker back to the thread that submitted a request.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Single-use reply slot. The first `send` wins; `recv` blocks until a
/// value arrives.
pub struct Oneshot<T> {
    slot: Mutex<Option<T>>,
    filled: Condvar,
}

impl<T> Default for Oneshot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Oneshot<T> {
    /// An empty cell.
    pub fn new() -> Self {
        Oneshot {
            slot: Mutex::new(None),
            filled: Condvar::new(),
        }
    }

    /// Deposit the value. Returns `false` (dropping `value` unused) if the
    /// cell was already filled — replies are first-writer-wins.
    pub fn send(&self, value: T) -> bool {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_some() {
            return false;
        }
        *slot = Some(value);
        self.filled.notify_all();
        true
    }

    /// Block until a value is deposited and take it.
    pub fn recv(&self) -> T {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.filled.wait(slot).unwrap();
        }
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout`, leaving the
    /// cell intact for a later `recv`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(v) = slot.take() {
                return Some(v);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.filled.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn send_then_recv() {
        let cell = Oneshot::new();
        assert!(cell.send(7));
        assert!(!cell.send(8), "second send rejected");
        assert_eq!(cell.recv(), 7);
    }

    #[test]
    fn recv_blocks_until_send() {
        let cell = Arc::new(Oneshot::new());
        let waiter = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.recv())
        };
        thread::sleep(Duration::from_millis(10));
        cell.send(42);
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_expires_without_consuming() {
        let cell = Oneshot::new();
        assert_eq!(cell.recv_timeout(Duration::from_millis(5)), None::<u32>);
        cell.send(1);
        assert_eq!(cell.recv_timeout(Duration::from_millis(5)), Some(1));
    }
}
