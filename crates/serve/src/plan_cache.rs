//! Compiled-plan cache: maps a serving workload key to a long-lived
//! [`FeatgraphBackend`] whose internal plan table holds the compiled
//! SpMM/SDDMM kernels for that (graph, model) pair.
//!
//! A `FeatgraphBackend` instance caches one compiled plan per
//! `(op, feature-dim)` it executes, and those plans embed graph-specific
//! partitioning — so one backend instance is only valid for one graph. The
//! serving cache key is therefore `(graph id, model, options)`: the options
//! string folds in everything that changes kernel selection (target,
//! thread count — and through those, the Fds chosen by the autotuner).
//! A cache hit means a batch executes entirely against already-compiled
//! kernels; a miss pays compilation on first touch.
//!
//! The cache is **byte-bounded**: each entry carries a cost (the backend's
//! [`plan_mem_bytes`](FeatgraphBackend::plan_mem_bytes), reported by the
//! engine after each batch via [`PlanCache::note_cost`] since plans compile
//! lazily per feature dim), and when the summed cost exceeds the configured
//! capacity the least-recently-used entries are evicted until it fits.
//! `capacity == 0` means unbounded — the pre-bounded behavior. Eviction
//! drops the cache's `Arc`; an in-flight batch still executing against an
//! evicted backend keeps it alive until the batch finishes. Total cost is
//! mirrored into the memory accountant's `PlanCache` component.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fg_gnn::FeatgraphBackend;
use fg_telemetry::{counter_add, mem_charge, mem_credit, Counter, MemComponent};

/// Identity of a compiled-plan cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Stable ID of the graph the plans were partitioned for.
    pub graph_id: u64,
    /// Model name (distinct models use distinct feature dims, hence
    /// distinct plans).
    pub model: String,
    /// Kernel-selection options: target and thread count, e.g. `cpu,t=4`.
    /// Everything the autotuner's Fds choice depends on is a function of
    /// these plus the per-layer feature dim the backend keys on internally.
    pub options: String,
}

impl PlanKey {
    /// Key for a CPU serving workload.
    pub fn cpu(graph_id: u64, model: &str, threads: usize) -> Self {
        PlanKey {
            graph_id,
            model: model.to_string(),
            options: format!("cpu,t={threads}"),
        }
    }
}

struct Entry {
    backend: Arc<FeatgraphBackend>,
    /// Last reported plan bytes; 0 until the first `note_cost`.
    cost: u64,
    /// Recency stamp (larger = more recently used).
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<PlanKey, Entry>,
    /// Sum of entry costs (mirrored into the `PlanCache` mem component).
    total_bytes: u64,
    /// Monotone use counter backing the LRU stamps.
    tick: u64,
}

/// See the [module docs](self).
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    /// Byte bound; 0 = unbounded.
    capacity: u64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache evicting least-recently-used entries once the summed
    /// plan cost exceeds `capacity_bytes` (`0` = unbounded).
    pub fn bounded(capacity_bytes: u64) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity_bytes,
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the backend for `key`, building (and retaining) it on first
    /// use. Returns `(backend, hit)` where `hit` is false exactly when
    /// `build` ran. Telemetry: bumps `serve_plan_hits` / `serve_plan_misses`.
    pub fn get_or_insert(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> FeatgraphBackend,
    ) -> (Arc<FeatgraphBackend>, bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let stamp = inner.tick;
        if let Some(entry) = inner.entries.get_mut(key) {
            entry.stamp = stamp;
            counter_add(Counter::ServePlanHits, 1);
            return (Arc::clone(&entry.backend), true);
        }
        counter_add(Counter::ServePlanMisses, 1);
        let backend = Arc::new(build());
        inner.entries.insert(
            key.clone(),
            Entry {
                backend: Arc::clone(&backend),
                cost: 0,
                stamp,
            },
        );
        (backend, false)
    }

    /// Report the current plan bytes of `key`'s backend (plans grow lazily
    /// as new feature dims execute), then evict LRU entries while the cache
    /// is over capacity. No-op for a key already evicted.
    pub fn note_cost(&self, key: &PlanKey, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.entries.get_mut(key) else {
            return;
        };
        let old = entry.cost;
        entry.cost = bytes;
        if bytes >= old {
            mem_charge(MemComponent::PlanCache, bytes - old);
        } else {
            mem_credit(MemComponent::PlanCache, old - bytes);
        }
        inner.total_bytes = inner.total_bytes + bytes - old;
        self.enforce(&mut inner);
    }

    /// Evict least-recently-used entries until `total_bytes <= capacity`.
    /// A single entry larger than the capacity is itself evicted, leaving
    /// the cache empty (the next batch recompiles).
    fn enforce(&self, inner: &mut Inner) {
        if self.capacity == 0 {
            return;
        }
        while inner.total_bytes > self.capacity {
            let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.total_bytes -= entry.cost;
            mem_credit(MemComponent::PlanCache, entry.cost);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            counter_add(Counter::ServePlanEvictions, 1);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed plan cost of the cached entries in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().unwrap().total_bytes
    }

    /// Configured byte bound (`0` = unbounded).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Entries evicted to stay under the byte bound since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl Drop for PlanCache {
    fn drop(&mut self) {
        // Balance the accountant for whatever is still cached.
        let inner = self.inner.get_mut().unwrap();
        mem_credit(MemComponent::PlanCache, inner.total_bytes);
        inner.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_reuses_instance() {
        let cache = PlanCache::new();
        let key = PlanKey::cpu(7, "gcn", 2);
        let (b1, hit1) = cache.get_or_insert(&key, || FeatgraphBackend::cpu(2));
        assert!(!hit1);
        let (b2, hit2) = cache.get_or_insert(&key, || panic!("must not rebuild"));
        assert!(hit2);
        assert!(Arc::ptr_eq(&b1, &b2), "hit returns the same backend instance");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_backends() {
        let cache = PlanCache::new();
        let (_, h1) = cache.get_or_insert(&PlanKey::cpu(1, "gcn", 1), || FeatgraphBackend::cpu(1));
        let (_, h2) = cache.get_or_insert(&PlanKey::cpu(1, "gat", 1), || FeatgraphBackend::cpu(1));
        let (_, h3) = cache.get_or_insert(&PlanKey::cpu(2, "gcn", 1), || FeatgraphBackend::cpu(1));
        assert!(!h1 && !h2 && !h3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = PlanCache::new();
        for i in 0..8 {
            let key = PlanKey::cpu(i, "gcn", 1);
            let _ = cache.get_or_insert(&key, || FeatgraphBackend::cpu(1));
            cache.note_cost(&key, 1 << 30);
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.total_bytes(), 8 << 30);
    }

    #[test]
    fn churn_stays_under_byte_bound_and_evicts_lru() {
        let cache = PlanCache::bounded(2500);
        for i in 0..10 {
            let key = PlanKey::cpu(i, "gcn", 1);
            let _ = cache.get_or_insert(&key, || FeatgraphBackend::cpu(1));
            cache.note_cost(&key, 1000);
            assert!(
                cache.total_bytes() <= 2500,
                "over bound after key {i}: {}",
                cache.total_bytes()
            );
        }
        assert!(cache.evictions() >= 8, "evictions {}", cache.evictions());
        assert_eq!(cache.len(), 2, "2×1000 fits under 2500, 3×1000 does not");
        // The survivors are the most recently used keys.
        let (_, hit) = cache.get_or_insert(&PlanKey::cpu(9, "gcn", 1), || {
            panic!("most recent key must survive")
        });
        assert!(hit);
        let (_, hit) = cache.get_or_insert(&PlanKey::cpu(0, "gcn", 1), || FeatgraphBackend::cpu(1));
        assert!(!hit, "oldest key was evicted");
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let cache = PlanCache::bounded(2000);
        let hot = PlanKey::cpu(0, "hot", 1);
        let _ = cache.get_or_insert(&hot, || FeatgraphBackend::cpu(1));
        cache.note_cost(&hot, 900);
        for i in 1..6 {
            // Re-touch the hot key before each insertion so it is never LRU.
            let (_, hit) = cache.get_or_insert(&hot, || panic!("hot key evicted"));
            assert!(hit);
            let key = PlanKey::cpu(i, "cold", 1);
            let _ = cache.get_or_insert(&key, || FeatgraphBackend::cpu(1));
            cache.note_cost(&key, 900);
        }
        let (_, hit) = cache.get_or_insert(&hot, || panic!("hot key evicted"));
        assert!(hit);
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn oversized_single_entry_evicts_to_empty() {
        let cache = PlanCache::bounded(100);
        let key = PlanKey::cpu(1, "big", 1);
        let (backend, _) = cache.get_or_insert(&key, || FeatgraphBackend::cpu(1));
        cache.note_cost(&key, 1_000_000);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.total_bytes(), 0);
        assert_eq!(cache.evictions(), 1);
        // The in-flight handle is unaffected; a late note_cost is a no-op.
        cache.note_cost(&key, 2_000_000);
        assert_eq!(cache.total_bytes(), 0);
        drop(backend);
    }
}
