//! Compiled-plan cache: maps a serving workload key to a long-lived
//! [`FeatgraphBackend`] whose internal plan table holds the compiled
//! SpMM/SDDMM kernels for that (graph, model) pair.
//!
//! A `FeatgraphBackend` instance caches one compiled plan per
//! `(op, feature-dim)` it executes, and those plans embed graph-specific
//! partitioning — so one backend instance is only valid for one graph. The
//! serving cache key is therefore `(graph id, model, options)`: the options
//! string folds in everything that changes kernel selection (target,
//! thread count — and through those, the Fds chosen by the autotuner).
//! A cache hit means a batch executes entirely against already-compiled
//! kernels; a miss pays compilation on first touch.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fg_gnn::FeatgraphBackend;
use fg_telemetry::{counter_add, Counter};

/// Identity of a compiled-plan cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Stable ID of the graph the plans were partitioned for.
    pub graph_id: u64,
    /// Model name (distinct models use distinct feature dims, hence
    /// distinct plans).
    pub model: String,
    /// Kernel-selection options: target and thread count, e.g. `cpu,t=4`.
    /// Everything the autotuner's Fds choice depends on is a function of
    /// these plus the per-layer feature dim the backend keys on internally.
    pub options: String,
}

impl PlanKey {
    /// Key for a CPU serving workload.
    pub fn cpu(graph_id: u64, model: &str, threads: usize) -> Self {
        PlanKey {
            graph_id,
            model: model.to_string(),
            options: format!("cpu,t={threads}"),
        }
    }
}

/// See the [module docs](self).
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<FeatgraphBackend>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the backend for `key`, building (and retaining) it on first
    /// use. Returns `(backend, hit)` where `hit` is false exactly when
    /// `build` ran. Telemetry: bumps `serve_plan_hits` / `serve_plan_misses`.
    pub fn get_or_insert(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> FeatgraphBackend,
    ) -> (Arc<FeatgraphBackend>, bool) {
        let mut map = self.map.lock().unwrap();
        if let Some(backend) = map.get(key) {
            counter_add(Counter::ServePlanHits, 1);
            return (Arc::clone(backend), true);
        }
        counter_add(Counter::ServePlanMisses, 1);
        let backend = Arc::new(build());
        map.insert(key.clone(), Arc::clone(&backend));
        (backend, false)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_reuses_instance() {
        let cache = PlanCache::new();
        let key = PlanKey::cpu(7, "gcn", 2);
        let (b1, hit1) = cache.get_or_insert(&key, || FeatgraphBackend::cpu(2));
        assert!(!hit1);
        let (b2, hit2) = cache.get_or_insert(&key, || panic!("must not rebuild"));
        assert!(hit2);
        assert!(Arc::ptr_eq(&b1, &b2), "hit returns the same backend instance");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_backends() {
        let cache = PlanCache::new();
        let (_, h1) = cache.get_or_insert(&PlanKey::cpu(1, "gcn", 1), || FeatgraphBackend::cpu(1));
        let (_, h2) = cache.get_or_insert(&PlanKey::cpu(1, "gat", 1), || FeatgraphBackend::cpu(1));
        let (_, h3) = cache.get_or_insert(&PlanKey::cpu(2, "gcn", 1), || FeatgraphBackend::cpu(1));
        assert!(!h1 && !h2 && !h3);
        assert_eq!(cache.len(), 3);
    }
}
