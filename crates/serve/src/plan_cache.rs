//! Compiled-plan cache: maps a serving workload key to a long-lived cached
//! value — a [`FeatgraphBackend`](fg_gnn::FeatgraphBackend) whose internal
//! plan table holds the compiled SpMM/SDDMM kernels for a (graph, model)
//! pair, or (for sampled serving) the tuned schedule for a subgraph shape
//! bucket. The cache is generic over the value so both live in one
//! byte-bounded LRU.
//!
//! A `FeatgraphBackend` instance caches one compiled plan per
//! `(op, feature-dim)` it executes, and those plans embed graph-specific
//! partitioning — so one backend instance is only valid for one graph. The
//! full-graph cache key is therefore `(graph id, model, options)`: the
//! options string folds in everything that changes kernel selection
//! (target, thread count — and through those, the Fds chosen by the
//! autotuner). Sampled-serving keys additionally fold the subgraph shape in
//! as **power-of-two buckets** of `|V|`/`|E|` ([`PlanKey::cpu_sampled`]):
//! every request samples a different subgraph, but same-sized ones share a
//! schedule, so repeated seed queries hit instead of re-tuning per request.
//!
//! Concurrent misses on one key are **single-flighted**: the first caller
//! marks the key as building and compiles outside the lock; later callers
//! wait on the condvar and receive the finished entry as a hit. Without
//! this, a cold burst of N identical requests would compile N identical
//! plans — N× the work, and (worse for the byte bound) N−1 of them
//! uncounted, because cost lands per *key* and duplicate instances never
//! get charged.
//!
//! The cache is **byte-bounded**: each entry carries a cost, charged at
//! insert from the builder's estimate and refined by
//! [`PlanCache::note_cost`] after each batch (backends compile plans lazily
//! per feature dim, so their footprint grows after insert). When the summed
//! cost exceeds the configured capacity the least-recently-used entries are
//! evicted until it fits. `capacity == 0` means unbounded. Eviction drops
//! the cache's `Arc`; an in-flight batch still executing against an evicted
//! value keeps it alive until the batch finishes. Total cost is mirrored
//! into the memory accountant's `PlanCache` component.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use fg_telemetry::{counter_add, mem_charge, mem_credit, Counter, MemComponent};

/// Round `n` up to its power-of-two bucket exponent: the smallest `b` with
/// `n <= 2^b`. Used to coarsen subgraph dims so plan keys tolerate varying
/// seed sets.
pub fn shape_bucket(n: usize) -> u32 {
    n.max(1).next_power_of_two().trailing_zeros()
}

/// Identity of a compiled-plan cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Stable ID of the graph the plans were partitioned for.
    pub graph_id: u64,
    /// Model name (distinct models use distinct feature dims, hence
    /// distinct plans).
    pub model: String,
    /// Kernel-selection options: target and thread count, e.g. `cpu,t=4`.
    /// Everything the autotuner's Fds choice depends on is a function of
    /// these plus the per-layer feature dim the backend keys on internally.
    /// Sampled keys append bucketed subgraph dims, e.g. `sub,v=2^7,e=2^9`.
    pub options: String,
}

impl PlanKey {
    /// Key for a full-graph CPU serving workload.
    pub fn cpu(graph_id: u64, model: &str, threads: usize) -> Self {
        PlanKey {
            graph_id,
            model: model.to_string(),
            options: format!("cpu,t={threads}"),
        }
    }

    /// Key for a sampled-subgraph CPU workload: `sub_vertices`/`sub_edges`
    /// are rounded up to power-of-two buckets, so subgraphs of similar size
    /// share one tuned schedule instead of compiling per request.
    pub fn cpu_sampled(
        graph_id: u64,
        model: &str,
        threads: usize,
        sub_vertices: usize,
        sub_edges: usize,
    ) -> Self {
        PlanKey {
            graph_id,
            model: model.to_string(),
            options: format!(
                "cpu,t={threads},sub,v=2^{},e=2^{}",
                shape_bucket(sub_vertices),
                shape_bucket(sub_edges)
            ),
        }
    }

    /// Key for a sharded CPU workload: one entry holds the whole shard
    /// fleet's backends (one per shard, each caching plans for its local
    /// graph), so shard count and placement strategy are part of the
    /// identity — re-sharding must never reuse another topology's plans.
    pub fn cpu_sharded(
        graph_id: u64,
        model: &str,
        threads: usize,
        shards: usize,
        strategy: fg_graph::ShardStrategy,
    ) -> Self {
        PlanKey {
            graph_id,
            model: model.to_string(),
            options: format!("cpu,t={threads},shard,n={shards},s={strategy}"),
        }
    }

    /// Append the feature storage dtype to the options namespace. `F32`
    /// leaves the key untouched, so engines serving f32 keep the exact keys
    /// they had before the dtype knob existed — cache state and hit/miss
    /// accounting stay bitwise comparable.
    pub fn with_dtype(mut self, dtype: fg_tensor::FeatureDtype) -> Self {
        if dtype != fg_tensor::FeatureDtype::F32 {
            self.options.push_str(",dtype=");
            self.options.push_str(dtype.name());
        }
        self
    }
}

struct Entry<V> {
    value: Arc<V>,
    /// Last reported cost in bytes (refined by `note_cost` as lazy plans
    /// compile).
    cost: u64,
    /// Recency stamp (larger = more recently used).
    stamp: u64,
}

struct Inner<V> {
    entries: HashMap<PlanKey, Entry<V>>,
    /// Keys with a compile in flight; concurrent misses wait on the condvar
    /// instead of building duplicates.
    building: HashSet<PlanKey>,
    /// Sum of entry costs (mirrored into the `PlanCache` mem component).
    total_bytes: u64,
    /// Monotone use counter backing the LRU stamps.
    tick: u64,
}

impl<V> Default for Inner<V> {
    fn default() -> Self {
        Inner {
            entries: HashMap::new(),
            building: HashSet::new(),
            total_bytes: 0,
            tick: 0,
        }
    }
}

/// See the [module docs](self).
pub struct PlanCache<V> {
    inner: Mutex<Inner<V>>,
    ready: Condvar,
    /// Byte bound; 0 = unbounded.
    capacity: u64,
    evictions: AtomicU64,
}

impl<V> Default for PlanCache<V> {
    fn default() -> Self {
        Self::bounded(0)
    }
}

/// Removes the in-flight marker if the build panics, so waiters wake up
/// and retry instead of deadlocking on a key nobody is building.
struct BuildGuard<'a, V> {
    cache: &'a PlanCache<V>,
    key: &'a PlanKey,
    armed: bool,
}

impl<V> Drop for BuildGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.inner.lock().unwrap();
            inner.building.remove(self.key);
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

impl<V> PlanCache<V> {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache evicting least-recently-used entries once the summed
    /// plan cost exceeds `capacity_bytes` (`0` = unbounded).
    pub fn bounded(capacity_bytes: u64) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            capacity: capacity_bytes,
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the value for `key`, building (and retaining) it on first use.
    /// `build` returns the value plus its initial byte cost, charged at
    /// insert (refine later via [`note_cost`](Self::note_cost) for values
    /// whose footprint grows lazily). Returns `(value, hit)` where `hit` is
    /// false exactly when `build` ran *in this call* — concurrent callers
    /// that waited for another thread's build count as hits. Telemetry:
    /// bumps `serve_plan_hits` / `serve_plan_misses` accordingly.
    pub fn get_or_insert(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> (V, u64),
    ) -> (Arc<V>, bool) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.entries.contains_key(key) {
                inner.tick += 1;
                let stamp = inner.tick;
                let entry = inner.entries.get_mut(key).expect("entry present");
                entry.stamp = stamp;
                counter_add(Counter::ServePlanHits, 1);
                return (Arc::clone(&entry.value), true);
            }
            if inner.building.contains(key) {
                // Someone else is compiling this key; wait for the insert
                // (or for the builder to fail) rather than duplicating the
                // compile.
                inner = self.ready.wait(inner).unwrap();
                continue;
            }
            break;
        }
        inner.building.insert(key.clone());
        drop(inner);
        counter_add(Counter::ServePlanMisses, 1);
        let guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };
        // Compile OUTSIDE the lock: plan compilation can take milliseconds
        // and must not serialize unrelated keys (or block hit lookups).
        let (value, cost) = build();
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        inner.building.remove(key);
        inner.tick += 1;
        let stamp = inner.tick;
        inner.entries.insert(
            key.clone(),
            Entry {
                value: Arc::clone(&value),
                cost,
                stamp,
            },
        );
        mem_charge(MemComponent::PlanCache, cost);
        inner.total_bytes += cost;
        self.enforce(&mut inner);
        drop(inner);
        // Drop the guard's cleanup duty before notifying: the marker is
        // already gone and the entry is in place.
        let mut guard = guard;
        guard.armed = false;
        self.ready.notify_all();
        (value, false)
    }

    /// Report the current byte cost of `key`'s value (backends compile
    /// plans lazily as new feature dims execute), then evict LRU entries
    /// while the cache is over capacity. No-op for a key already evicted.
    pub fn note_cost(&self, key: &PlanKey, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.entries.get_mut(key) else {
            return;
        };
        let old = entry.cost;
        entry.cost = bytes;
        if bytes >= old {
            mem_charge(MemComponent::PlanCache, bytes - old);
        } else {
            mem_credit(MemComponent::PlanCache, old - bytes);
        }
        inner.total_bytes = inner.total_bytes + bytes - old;
        self.enforce(&mut inner);
    }

    /// Evict least-recently-used entries until `total_bytes <= capacity`.
    /// A single entry larger than the capacity is itself evicted, leaving
    /// the cache empty (the next batch recompiles).
    fn enforce(&self, inner: &mut Inner<V>) {
        if self.capacity == 0 {
            return;
        }
        while inner.total_bytes > self.capacity {
            let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.total_bytes -= entry.cost;
            mem_credit(MemComponent::PlanCache, entry.cost);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            counter_add(Counter::ServePlanEvictions, 1);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed plan cost of the cached entries in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().unwrap().total_bytes
    }

    /// Configured byte bound (`0` = unbounded).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Entries evicted to stay under the byte bound since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl<V> Drop for PlanCache<V> {
    fn drop(&mut self) {
        // Balance the accountant for whatever is still cached.
        let inner = self.inner.get_mut().unwrap();
        mem_credit(MemComponent::PlanCache, inner.total_bytes);
        inner.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_gnn::FeatgraphBackend;
    use std::sync::atomic::AtomicUsize;

    fn backend() -> (FeatgraphBackend, u64) {
        (FeatgraphBackend::cpu(1), 0)
    }

    #[test]
    fn second_lookup_hits_and_reuses_instance() {
        let cache = PlanCache::new();
        let key = PlanKey::cpu(7, "gcn", 2);
        let (b1, hit1) = cache.get_or_insert(&key, backend);
        assert!(!hit1);
        let (b2, hit2) = cache.get_or_insert(&key, || panic!("must not rebuild"));
        assert!(hit2);
        assert!(Arc::ptr_eq(&b1, &b2), "hit returns the same backend instance");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_backends() {
        let cache = PlanCache::new();
        let (_, h1) = cache.get_or_insert(&PlanKey::cpu(1, "gcn", 1), backend);
        let (_, h2) = cache.get_or_insert(&PlanKey::cpu(1, "gat", 1), backend);
        let (_, h3) = cache.get_or_insert(&PlanKey::cpu(2, "gcn", 1), backend);
        assert!(!h1 && !h2 && !h3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = PlanCache::new();
        for i in 0..8 {
            let key = PlanKey::cpu(i, "gcn", 1);
            let _ = cache.get_or_insert(&key, backend);
            cache.note_cost(&key, 1 << 30);
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.total_bytes(), 8 << 30);
    }

    #[test]
    fn churn_stays_under_byte_bound_and_evicts_lru() {
        let cache = PlanCache::bounded(2500);
        for i in 0..10 {
            let key = PlanKey::cpu(i, "gcn", 1);
            let _ = cache.get_or_insert(&key, backend);
            cache.note_cost(&key, 1000);
            assert!(
                cache.total_bytes() <= 2500,
                "over bound after key {i}: {}",
                cache.total_bytes()
            );
        }
        assert!(cache.evictions() >= 8, "evictions {}", cache.evictions());
        assert_eq!(cache.len(), 2, "2×1000 fits under 2500, 3×1000 does not");
        // The survivors are the most recently used keys.
        let (_, hit) = cache.get_or_insert(&PlanKey::cpu(9, "gcn", 1), || {
            panic!("most recent key must survive")
        });
        assert!(hit);
        let (_, hit) = cache.get_or_insert(&PlanKey::cpu(0, "gcn", 1), backend);
        assert!(!hit, "oldest key was evicted");
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let cache = PlanCache::bounded(2000);
        let hot = PlanKey::cpu(0, "hot", 1);
        let _ = cache.get_or_insert(&hot, backend);
        cache.note_cost(&hot, 900);
        for i in 1..6 {
            // Re-touch the hot key before each insertion so it is never LRU.
            let (_, hit) = cache.get_or_insert(&hot, || panic!("hot key evicted"));
            assert!(hit);
            let key = PlanKey::cpu(i, "cold", 1);
            let _ = cache.get_or_insert(&key, backend);
            cache.note_cost(&key, 900);
        }
        let (_, hit) = cache.get_or_insert(&hot, || panic!("hot key evicted"));
        assert!(hit);
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn oversized_single_entry_evicts_to_empty() {
        let cache = PlanCache::bounded(100);
        let key = PlanKey::cpu(1, "big", 1);
        let (backend_arc, _) = cache.get_or_insert(&key, backend);
        cache.note_cost(&key, 1_000_000);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.total_bytes(), 0);
        assert_eq!(cache.evictions(), 1);
        // The in-flight handle is unaffected; a late note_cost is a no-op.
        cache.note_cost(&key, 2_000_000);
        assert_eq!(cache.total_bytes(), 0);
        drop(backend_arc);
    }

    #[test]
    fn cost_is_charged_at_insert() {
        // Regression: cost used to land only at the first post-execution
        // note_cost, so a cold burst of inserts was invisible to the bound.
        let cache: PlanCache<u32> = PlanCache::bounded(4096);
        for i in 0..4 {
            let _ = cache.get_or_insert(&PlanKey::cpu(i, "m", 1), || (i as u32, 2048));
            assert!(
                cache.total_bytes() <= 4096,
                "insert {i} left the cache over bound: {}",
                cache.total_bytes()
            );
        }
        assert_eq!(cache.len(), 2, "2×2048 fits under 4096");
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn concurrent_misses_share_one_build() {
        // Single-flight: 8 threads race one cold key; exactly one build
        // runs, the rest wait and come back as hits on the same instance.
        let cache: Arc<PlanCache<u64>> = Arc::new(PlanCache::bounded(4096));
        let builds = Arc::new(AtomicUsize::new(0));
        let key = PlanKey::cpu(1, "burst", 1);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let key = key.clone();
                std::thread::spawn(move || {
                    cache.get_or_insert(&key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Hold the "compile" long enough that the other
                        // threads pile up behind the in-flight marker.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        (42u64, 512)
                    })
                })
            })
            .collect();
        let results: Vec<(Arc<u64>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compile");
        assert_eq!(results.iter().filter(|&&(_, hit)| !hit).count(), 1);
        let first = &results[0].0;
        for (v, _) in &results {
            assert!(Arc::ptr_eq(first, v), "all callers share the instance");
        }
        assert_eq!(cache.total_bytes(), 512, "cost charged once");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_cold_burst_respects_byte_bound() {
        // The 4 KiB eviction/accounting scenario: many threads, few keys,
        // every entry costed at insert — the bound holds throughout.
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::bounded(4096));
        let handles: Vec<_> = (0..16)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..8u64 {
                        let key = PlanKey::cpu(i % 4, "churn", 1);
                        let _ = cache.get_or_insert(&key, || {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            ((t + i) as u32, 1500)
                        });
                        assert!(
                            cache.total_bytes() <= 4096,
                            "over bound: {}",
                            cache.total_bytes()
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.total_bytes() <= 4096);
        assert!(cache.len() <= 2, "2×1500 fits under 4096, 3×1500 does not");
    }

    #[test]
    fn panicked_build_releases_the_key_for_retry() {
        let cache: Arc<PlanCache<u32>> = Arc::new(PlanCache::new());
        let key = PlanKey::cpu(1, "flaky", 1);
        let c2 = Arc::clone(&cache);
        let k2 = key.clone();
        let result = std::thread::spawn(move || {
            c2.get_or_insert(&k2, || panic!("compile failed"));
        })
        .join();
        assert!(result.is_err(), "builder panicked");
        // The in-flight marker must be gone: a retry builds successfully
        // instead of deadlocking behind a dead builder.
        let (v, hit) = cache.get_or_insert(&key, || (7, 16));
        assert!(!hit);
        assert_eq!(*v, 7);
    }

    #[test]
    fn sampled_keys_bucket_subgraph_dims() {
        // Different subgraphs in the same power-of-two bucket share a key…
        let a = PlanKey::cpu_sampled(1, "gcn", 2, 100, 900);
        let b = PlanKey::cpu_sampled(1, "gcn", 2, 120, 700);
        assert_eq!(a, b, "same bucket: {} vs {}", a.options, b.options);
        // …and crossing a power of two changes it.
        let c = PlanKey::cpu_sampled(1, "gcn", 2, 130, 900);
        assert_ne!(a, c);
        let d = PlanKey::cpu_sampled(1, "gcn", 2, 100, 1100);
        assert_ne!(a, d);
        // Sampled and full-graph keys never collide.
        assert_ne!(a, PlanKey::cpu(1, "gcn", 2));
        // Bucket math: exact powers stay put, zero is floored to 1.
        assert_eq!(shape_bucket(1), 0);
        assert_eq!(shape_bucket(0), 0);
        assert_eq!(shape_bucket(64), 6);
        assert_eq!(shape_bucket(65), 7);
    }

    #[test]
    fn sharded_keys_fold_count_and_strategy() {
        use fg_graph::ShardStrategy;
        let a = PlanKey::cpu_sharded(1, "gcn", 2, 4, ShardStrategy::Range);
        assert_eq!(a.options, "cpu,t=2,shard,n=4,s=range");
        // Shard count and strategy are identity: changing either must
        // miss (the backends are partitioned per shard-local graph).
        assert_ne!(a, PlanKey::cpu_sharded(1, "gcn", 2, 2, ShardStrategy::Range));
        assert_ne!(a, PlanKey::cpu_sharded(1, "gcn", 2, 4, ShardStrategy::Degree));
        // And sharded keys never collide with full-graph or sampled keys.
        assert_ne!(a, PlanKey::cpu(1, "gcn", 2));
        assert_ne!(a, PlanKey::cpu_sampled(1, "gcn", 2, 4, 4));
    }
}
