//! Length-prefixed binary frame protocol for the `fgserve` TCP front-end.
//!
//! The text protocol ([`crate::protocol`]) re-parses every feature scalar
//! from ASCII; at serving feature widths that parse dominates request
//! cost. The binary protocol ships the same requests as little-endian
//! frames whose feature payloads are copied byte-for-byte into aligned
//! [`Dense2`] buffers — no per-scalar text handling anywhere on the hot
//! path.
//!
//! ## Frame layout
//!
//! Every frame — request or reply — is a 12-byte header followed by a
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "FGB1" (protocol version 1)
//! 4       1     frame type (request 0x01..0x09, reply 0x81..0x86)
//! 5       1     flags (reserved, must be 0)
//! 6       2     reserved (must be 0)
//! 8       4     payload length, u32 LE (≤ 64 MiB)
//! 12      n     payload, all integers/floats little-endian
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes (length 0 = absent for optional
//! tokens). Optional integers are a presence byte + `u64`. A feature
//! tensor block is `dtype u8` (`0` absent, else [`FeatureDtype`] wire
//! code) + `rows u32` + `cols u32` + raw element bytes.
//!
//! ## Negotiation
//!
//! A connection's first four bytes select the protocol: `"FGB1"` puts the
//! connection in binary mode for its lifetime; anything else is replayed
//! as the start of a text line. Replies always use the requesting
//! connection's protocol. Decoding rejects oversized lengths before
//! allocating, unknown frame types, non-zero reserved fields, trailing
//! payload bytes, and non-finite feature scalars — a malformed frame
//! produces a typed error reply and the connection stays usable.

use std::io::{self, Read, Write};

use fg_tensor::{Dense2, FeatureDtype};

use crate::engine::{InferResponse, SeedsResponse};
use crate::protocol::Request;

/// Protocol magic; the trailing digit is the wire version.
pub const MAGIC: [u8; 4] = *b"FGB1";

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Hard cap on a frame payload — decoders reject bigger lengths before
/// allocating.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Cap on a single length-prefixed string (model names, ids, error
/// detail).
const MAX_STRING: u32 = 1 << 16;

/// Request frame types.
pub mod req_type {
    /// `INFER` equivalent.
    pub const INFER: u8 = 0x01;
    /// `INFER_SEEDS` equivalent.
    pub const INFER_SEEDS: u8 = 0x02;
    /// `STATS` equivalent.
    pub const STATS: u8 = 0x03;
    /// `METRICS` equivalent.
    pub const METRICS: u8 = 0x04;
    /// `MEMORY` equivalent.
    pub const MEMORY: u8 = 0x05;
    /// `SHARDS` equivalent.
    pub const SHARDS: u8 = 0x06;
    /// `SLOWLOG` equivalent.
    pub const SLOWLOG: u8 = 0x07;
    /// `PING` equivalent.
    pub const PING: u8 = 0x08;
    /// `SHUTDOWN` equivalent.
    pub const SHUTDOWN: u8 = 0x09;
}

/// Reply frame types.
pub mod reply_type {
    /// Successful single-node inference.
    pub const OK: u8 = 0x81;
    /// Typed error.
    pub const ERR: u8 = 0x82;
    /// Successful seeded inference.
    pub const SEEDS: u8 = 0x83;
    /// Text blob (STATS/METRICS/MEMORY/SHARDS/SLOWLOG bodies).
    pub const TEXT: u8 = 0x84;
    /// `PONG`.
    pub const PONG: u8 = 0x85;
    /// `BYE` (shutdown acknowledged).
    pub const BYE: u8 = 0x86;
}

/// Decode/IO failures. [`FrameError::Io`] means the connection is gone;
/// every other variant is a per-frame rejection the server answers with a
/// `bad-request` reply, keeping the connection alive.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/IO failure (includes truncation mid-frame).
    Io(io::Error),
    /// First four bytes of a frame were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Frame type byte not in the request/reply ranges.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Structurally invalid payload (short fields, bad UTF-8, trailing
    /// bytes, non-finite features…).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A raw frame: validated header plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type byte.
    pub ty: u8,
    /// Payload bytes (little-endian fields).
    pub payload: Vec<u8>,
}

/// Read one frame. `magic_consumed` says the caller already read (and
/// verified) the four magic bytes — the negotiation sniff does this for a
/// connection's first frame.
pub fn read_frame(r: &mut impl Read, magic_consumed: bool) -> Result<Frame, FrameError> {
    if !magic_consumed {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
    }
    let mut rest = [0u8; HEADER_LEN - 4];
    r.read_exact(&mut rest)?;
    let ty = rest[0];
    if rest[1] != 0 || rest[2] != 0 || rest[3] != 0 {
        return Err(FrameError::Malformed("non-zero reserved header bytes".into()));
    }
    let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { ty, payload })
}

/// Write one already-encoded frame and flush.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

fn frame_bytes(ty: u8, payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(ty);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---- payload writer helpers -------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    put_str(buf, s.unwrap_or(""));
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
        None => buf.push(0),
    }
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    put_u32(buf, vals.len() as u32);
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_feats(buf: &mut Vec<u8>, feats: Option<&Dense2<f32>>) {
    match feats {
        None => buf.push(0),
        Some(f) => {
            buf.push(FeatureDtype::F32.wire_code());
            put_u32(buf, f.rows() as u32);
            put_u32(buf, f.cols() as u32);
            // Raw little-endian element bytes — the decoder copies these
            // straight into an aligned buffer.
            for &v in f.as_slice() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

// ---- payload reader ----------------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                FrameError::Malformed(format!(
                    "{what}: need {n} bytes at offset {}, payload is {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, FrameError> {
        let len = self.u32(what)?;
        if len > MAX_STRING {
            return Err(FrameError::Malformed(format!(
                "{what}: string length {len} exceeds cap {MAX_STRING}"
            )));
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed(format!("{what}: invalid UTF-8")))
    }

    fn opt_string(&mut self, what: &str) -> Result<Option<String>, FrameError> {
        let s = self.string(what)?;
        Ok(if s.is_empty() { None } else { Some(s) })
    }

    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, FrameError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            other => Err(FrameError::Malformed(format!(
                "{what}: bad presence byte {other}"
            ))),
        }
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, FrameError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| {
            FrameError::Malformed(format!("{what}: length overflow"))
        })?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn u64s(&mut self, what: &str) -> Result<Vec<u64>, FrameError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| {
            FrameError::Malformed(format!("{what}: length overflow"))
        })?, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode a feature block into an aligned f32 tensor. f32 payloads
    /// are copied byte-for-byte on little-endian hosts; f16/bf16 payloads
    /// widen per element. Rejects non-finite scalars.
    fn feats(&mut self) -> Result<Option<Dense2<f32>>, FrameError> {
        let code = self.u8("feats dtype")?;
        if code == 0 {
            return Ok(None);
        }
        let dtype = FeatureDtype::from_wire_code(code).ok_or_else(|| {
            FrameError::Malformed(format!("feats: unknown dtype code {code}"))
        })?;
        let rows = self.u32("feats rows")? as usize;
        let cols = self.u32("feats cols")? as usize;
        let count = rows.checked_mul(cols).ok_or_else(|| {
            FrameError::Malformed("feats: rows*cols overflow".into())
        })?;
        let nbytes = count.checked_mul(dtype.size_bytes()).ok_or_else(|| {
            FrameError::Malformed("feats: byte length overflow".into())
        })?;
        let bytes = self.take(nbytes, "feats data")?;
        let mut out = Dense2::<f32>::zeros(rows, cols);
        let dst = out.as_mut_slice();
        match dtype {
            FeatureDtype::F32 => {
                #[cfg(target_endian = "little")]
                {
                    // Wire order is the in-memory order: one copy into the
                    // aligned buffer, no per-scalar handling.
                    // Safety: `bytes.len() == dst.len() * 4` by
                    // construction, and any bit pattern is a valid f32.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            bytes.as_ptr(),
                            dst.as_mut_ptr() as *mut u8,
                            nbytes,
                        );
                    }
                }
                #[cfg(not(target_endian = "little"))]
                for (o, c) in dst.iter_mut().zip(bytes.chunks_exact(4)) {
                    *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
            }
            FeatureDtype::F16 => {
                for (o, c) in dst.iter_mut().zip(bytes.chunks_exact(2)) {
                    *o = fg_tensor::F16::from_bits(u16::from_le_bytes([c[0], c[1]])).to_f32();
                }
            }
            FeatureDtype::Bf16 => {
                for (o, c) in dst.iter_mut().zip(bytes.chunks_exact(2)) {
                    *o = fg_tensor::Bf16::from_bits(u16::from_le_bytes([c[0], c[1]])).to_f32();
                }
            }
        }
        if dst.iter().any(|v| !v.is_finite()) {
            return Err(FrameError::Malformed("feats: non-finite value".into()));
        }
        Ok(Some(out))
    }

    fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(FrameError::Malformed(format!(
                "{what}: {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- requests ----------------------------------------------------------

/// Encode a request as a complete frame (header + payload).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Infer {
            model,
            node,
            id,
            deadline_ms,
        } => {
            let mut p = Vec::new();
            put_str(&mut p, model);
            put_u64(&mut p, *node as u64);
            put_opt_str(&mut p, id.as_deref());
            put_opt_u64(&mut p, *deadline_ms);
            frame_bytes(req_type::INFER, p)
        }
        Request::InferSeeds {
            model,
            seeds,
            fanouts,
            sample_seed,
            feats,
            id,
            deadline_ms,
        } => {
            let mut p = Vec::new();
            put_str(&mut p, model);
            put_u32(&mut p, seeds.len() as u32);
            for &s in seeds {
                put_u64(&mut p, s as u64);
            }
            match fanouts {
                None => p.push(0),
                Some(f) => {
                    p.push(1);
                    put_u32(&mut p, f.len() as u32);
                    for &x in f {
                        put_u64(&mut p, x as u64);
                    }
                }
            }
            put_u64(&mut p, *sample_seed);
            put_feats(&mut p, feats.as_ref());
            put_opt_str(&mut p, id.as_deref());
            put_opt_u64(&mut p, *deadline_ms);
            frame_bytes(req_type::INFER_SEEDS, p)
        }
        Request::Stats => frame_bytes(req_type::STATS, Vec::new()),
        Request::Metrics => frame_bytes(req_type::METRICS, Vec::new()),
        Request::Memory => frame_bytes(req_type::MEMORY, Vec::new()),
        Request::Shards => frame_bytes(req_type::SHARDS, Vec::new()),
        Request::SlowLog { limit } => {
            let mut p = Vec::new();
            put_opt_u64(&mut p, limit.map(|n| n as u64));
            frame_bytes(req_type::SLOWLOG, p)
        }
        Request::Ping => frame_bytes(req_type::PING, Vec::new()),
        Request::Shutdown => frame_bytes(req_type::SHUTDOWN, Vec::new()),
    }
}

/// Decode a request frame.
pub fn decode_request(frame: &Frame) -> Result<Request, FrameError> {
    let mut c = Cur::new(&frame.payload);
    let req = match frame.ty {
        req_type::INFER => {
            let model = c.string("INFER model")?;
            let node = c.u64("INFER node")? as usize;
            let id = c.opt_string("INFER id")?;
            let deadline_ms = c.opt_u64("INFER deadline")?;
            Request::Infer {
                model,
                node,
                id,
                deadline_ms,
            }
        }
        req_type::INFER_SEEDS => {
            let model = c.string("INFER_SEEDS model")?;
            let seeds: Vec<usize> = {
                let raw = c.u64s("INFER_SEEDS seeds")?;
                raw.into_iter().map(|s| s as usize).collect()
            };
            if seeds.is_empty() {
                return Err(FrameError::Malformed("INFER_SEEDS: empty seed list".into()));
            }
            let fanouts = match c.u8("INFER_SEEDS fanout presence")? {
                0 => None,
                1 => {
                    let f: Vec<usize> = c
                        .u64s("INFER_SEEDS fanouts")?
                        .into_iter()
                        .map(|x| x as usize)
                        .collect();
                    if f.is_empty() {
                        return Err(FrameError::Malformed("INFER_SEEDS: empty fanout".into()));
                    }
                    Some(f)
                }
                other => {
                    return Err(FrameError::Malformed(format!(
                        "INFER_SEEDS: bad fanout presence byte {other}"
                    )))
                }
            };
            let sample_seed = c.u64("INFER_SEEDS sample_seed")?;
            let feats = c.feats()?;
            if let Some(f) = &feats {
                if f.rows() != seeds.len() {
                    return Err(FrameError::Malformed(format!(
                        "INFER_SEEDS: {} feature rows for {} seeds",
                        f.rows(),
                        seeds.len()
                    )));
                }
            }
            let id = c.opt_string("INFER_SEEDS id")?;
            let deadline_ms = c.opt_u64("INFER_SEEDS deadline")?;
            Request::InferSeeds {
                model,
                seeds,
                fanouts,
                sample_seed,
                feats,
                id,
                deadline_ms,
            }
        }
        req_type::STATS => Request::Stats,
        req_type::METRICS => Request::Metrics,
        req_type::MEMORY => Request::Memory,
        req_type::SHARDS => Request::Shards,
        req_type::SLOWLOG => Request::SlowLog {
            limit: c.opt_u64("SLOWLOG limit")?.map(|n| n as usize),
        },
        req_type::PING => Request::Ping,
        req_type::SHUTDOWN => Request::Shutdown,
        other => return Err(FrameError::UnknownType(other)),
    };
    c.finish("request")?;
    Ok(req)
}

// ---- replies -----------------------------------------------------------

/// A protocol-independent reply, encodable as either a binary frame or
/// text lines.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// Successful single-node inference.
    Ok {
        /// Echoed client token.
        id: String,
        /// Inference result.
        resp: InferResponse,
    },
    /// Typed error.
    Err {
        /// Echoed client token.
        id: String,
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Successful seeded inference (`node` per result, request order).
    Seeds {
        /// Echoed client token.
        id: String,
        /// Requested seed vertices, matching `resp.results` order.
        seeds: Vec<usize>,
        /// Engine reply.
        resp: SeedsResponse,
    },
    /// Text blob reply (STATS/METRICS/MEMORY/SHARDS/SLOWLOG bodies, same
    /// bytes the text protocol would send).
    Text(String),
    /// `PONG`.
    Pong,
    /// `BYE`.
    Bye,
}

/// Encode a reply as a complete frame.
pub fn encode_reply(reply: &WireReply) -> Vec<u8> {
    match reply {
        WireReply::Ok { id, resp } => {
            let mut p = Vec::new();
            put_str(&mut p, id);
            put_u64(&mut p, resp.class as u64);
            put_f32s(&mut p, &resp.logits);
            frame_bytes(reply_type::OK, p)
        }
        WireReply::Err { id, code, detail } => {
            let mut p = Vec::new();
            put_str(&mut p, id);
            put_str(&mut p, code);
            put_str(&mut p, detail);
            frame_bytes(reply_type::ERR, p)
        }
        WireReply::Seeds { id, seeds, resp } => {
            let mut p = Vec::new();
            put_str(&mut p, id);
            put_u64(&mut p, resp.sub_vertices as u64);
            put_u64(&mut p, resp.sub_edges as u64);
            put_u32(&mut p, resp.results.len() as u32);
            for (node, r) in seeds.iter().zip(&resp.results) {
                put_u64(&mut p, *node as u64);
                put_u64(&mut p, r.class as u64);
                put_f32s(&mut p, &r.logits);
            }
            frame_bytes(reply_type::SEEDS, p)
        }
        WireReply::Text(body) => {
            let mut p = Vec::new();
            put_u32(&mut p, body.len() as u32);
            p.extend_from_slice(body.as_bytes());
            frame_bytes(reply_type::TEXT, p)
        }
        WireReply::Pong => frame_bytes(reply_type::PONG, Vec::new()),
        WireReply::Bye => frame_bytes(reply_type::BYE, Vec::new()),
    }
}

/// Decode a reply frame (client side).
pub fn decode_reply(frame: &Frame) -> Result<WireReply, FrameError> {
    let mut c = Cur::new(&frame.payload);
    let reply = match frame.ty {
        reply_type::OK => {
            let id = c.string("OK id")?;
            let class = c.u64("OK class")? as usize;
            let logits = c.f32s("OK logits")?;
            WireReply::Ok {
                id,
                resp: InferResponse { class, logits },
            }
        }
        reply_type::ERR => WireReply::Err {
            id: c.string("ERR id")?,
            code: c.string("ERR code")?,
            detail: c.string("ERR detail")?,
        },
        reply_type::SEEDS => {
            let id = c.string("SEEDS id")?;
            let sub_vertices = c.u64("SEEDS sub_v")? as usize;
            let sub_edges = c.u64("SEEDS sub_e")? as usize;
            let count = c.u32("SEEDS count")? as usize;
            let mut seeds = Vec::with_capacity(count.min(1 << 20));
            let mut results = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                seeds.push(c.u64("SEED node")? as usize);
                let class = c.u64("SEED class")? as usize;
                let logits = c.f32s("SEED logits")?;
                results.push(InferResponse { class, logits });
            }
            WireReply::Seeds {
                id,
                seeds,
                resp: SeedsResponse {
                    results,
                    sub_vertices,
                    sub_edges,
                },
            }
        }
        reply_type::TEXT => {
            let len = c.u32("TEXT len")?;
            if len > MAX_PAYLOAD {
                return Err(FrameError::Oversized(len));
            }
            let bytes = c.take(len as usize, "TEXT body")?;
            WireReply::Text(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| FrameError::Malformed("TEXT: invalid UTF-8".into()))?,
            )
        }
        reply_type::PONG => WireReply::Pong,
        reply_type::BYE => WireReply::Bye,
        other => return Err(FrameError::UnknownType(other)),
    };
    c.finish("reply")?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(&bytes[..4], &MAGIC);
        let frame = read_frame(&mut &bytes[..], false).unwrap();
        assert_eq!(decode_request(&frame).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Ping);
        round_trip_req(Request::Stats);
        round_trip_req(Request::Metrics);
        round_trip_req(Request::Memory);
        round_trip_req(Request::Shards);
        round_trip_req(Request::Shutdown);
        round_trip_req(Request::SlowLog { limit: None });
        round_trip_req(Request::SlowLog { limit: Some(25) });
        round_trip_req(Request::Infer {
            model: "gcn".into(),
            node: 42,
            id: Some("c3-r7".into()),
            deadline_ms: Some(250),
        });
        round_trip_req(Request::Infer {
            model: "gat".into(),
            node: 0,
            id: None,
            deadline_ms: None,
        });
        round_trip_req(Request::InferSeeds {
            model: "sage".into(),
            seeds: vec![3, 1, 4],
            fanouts: Some(vec![10, 5]),
            sample_seed: 7,
            feats: Some(Dense2::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5)),
            id: Some("c1".into()),
            deadline_ms: Some(90),
        });
        round_trip_req(Request::InferSeeds {
            model: "gcn".into(),
            seeds: vec![5],
            fanouts: None,
            sample_seed: 0,
            feats: None,
            id: None,
            deadline_ms: None,
        });
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            WireReply::Pong,
            WireReply::Bye,
            WireReply::Text("STATS a=1 b=2".into()),
            WireReply::Text(String::new()),
            WireReply::Ok {
                id: "c0".into(),
                resp: InferResponse {
                    class: 2,
                    logits: vec![-0.5, 0.25, 1.75],
                },
            },
            WireReply::Err {
                id: "-".into(),
                code: "overloaded".into(),
                detail: "queue full".into(),
            },
            WireReply::Seeds {
                id: "c2".into(),
                seeds: vec![9, 4],
                resp: SeedsResponse {
                    results: vec![
                        InferResponse {
                            class: 1,
                            logits: vec![0.5, 2.0],
                        },
                        InferResponse {
                            class: 0,
                            logits: vec![3.25, -1.0],
                        },
                    ],
                    sub_vertices: 17,
                    sub_edges: 40,
                },
            },
        ] {
            let bytes = encode_reply(&reply);
            let frame = read_frame(&mut &bytes[..], false).unwrap();
            assert_eq!(decode_reply(&frame).unwrap(), reply);
        }
    }

    #[test]
    fn rejects_bad_magic_and_headers() {
        let mut bytes = encode_request(&Request::Ping);
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bytes[..], false),
            Err(FrameError::BadMagic(_))
        ));
        let mut bytes = encode_request(&Request::Ping);
        bytes[5] = 1; // flags must be zero
        assert!(matches!(
            read_frame(&mut &bytes[..], false),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declared_length_before_allocating() {
        let mut bytes = encode_request(&Request::Ping);
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..], false),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_frames_surface_as_io_errors() {
        let bytes = encode_request(&Request::Infer {
            model: "gcn".into(),
            node: 1,
            id: None,
            deadline_ms: None,
        });
        for cut in [2, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(matches!(
                read_frame(&mut &bytes[..cut], false),
                Err(FrameError::Io(_))
            ));
        }
    }

    #[test]
    fn rejects_trailing_and_short_payloads() {
        let mut bytes = encode_request(&Request::Ping);
        // Append a byte and fix up the declared length: trailing garbage.
        bytes.push(0xab);
        let len = (bytes.len() - HEADER_LEN) as u32;
        bytes[8..12].copy_from_slice(&len.to_le_bytes());
        let frame = read_frame(&mut &bytes[..], false).unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(FrameError::Malformed(_))
        ));
        // A string whose declared length runs past the payload.
        let frame = Frame {
            ty: req_type::INFER,
            payload: {
                let mut p = Vec::new();
                put_u32(&mut p, 100); // model length > remaining bytes
                p.extend_from_slice(b"gcn");
                p
            },
        };
        assert!(matches!(
            decode_request(&frame),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_unknown_types_and_nonfinite_feats() {
        let frame = Frame {
            ty: 0x7f,
            payload: Vec::new(),
        };
        assert!(matches!(
            decode_request(&frame),
            Err(FrameError::UnknownType(0x7f))
        ));
        // NaN/inf feature scalars are rejected at decode.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let req = Request::InferSeeds {
                model: "gcn".into(),
                seeds: vec![1],
                fanouts: None,
                sample_seed: 0,
                feats: Some(Dense2::from_fn(1, 2, |_, c| if c == 0 { bad } else { 1.0 })),
                id: None,
                deadline_ms: None,
            };
            let bytes = encode_request(&req);
            let frame = read_frame(&mut &bytes[..], false).unwrap();
            assert!(matches!(
                decode_request(&frame),
                Err(FrameError::Malformed(_))
            ));
        }
    }

    #[test]
    fn rejects_feats_row_count_mismatch() {
        let req = Request::InferSeeds {
            model: "gcn".into(),
            seeds: vec![1, 2, 3],
            fanouts: None,
            sample_seed: 0,
            feats: Some(Dense2::from_fn(2, 2, |_, _| 1.0)), // 2 rows, 3 seeds
            id: None,
            deadline_ms: None,
        };
        let bytes = encode_request(&req);
        let frame = read_frame(&mut &bytes[..], false).unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn zero_dim_feature_tensors_round_trip() {
        // 0 x 0 and 1 x 0 tensors are valid wire shapes... but a 0-row
        // tensor can never match a non-empty seed list, so exercise the
        // decoder through a seeds=rows pairing with zero columns.
        let req = Request::InferSeeds {
            model: "gcn".into(),
            seeds: vec![7],
            fanouts: None,
            sample_seed: 0,
            feats: Some(Dense2::zeros(1, 0)),
            id: None,
            deadline_ms: None,
        };
        round_trip_req(req);
    }

    #[test]
    fn half_precision_feature_blocks_decode_widened() {
        use fg_tensor::F16;
        // Hand-build an INFER_SEEDS payload with an f16 feature block.
        let mut p = Vec::new();
        put_str(&mut p, "gcn");
        put_u32(&mut p, 1); // one seed
        put_u64(&mut p, 3);
        p.push(0); // no fanouts
        put_u64(&mut p, 0); // sample_seed
        p.push(FeatureDtype::F16.wire_code());
        put_u32(&mut p, 1); // rows
        put_u32(&mut p, 2); // cols
        for v in [1.5f32, -0.25] {
            p.extend_from_slice(&F16::from_f32(v).to_bits().to_le_bytes());
        }
        put_opt_str(&mut p, None);
        put_opt_u64(&mut p, None);
        let frame = Frame {
            ty: req_type::INFER_SEEDS,
            payload: p,
        };
        match decode_request(&frame).unwrap() {
            Request::InferSeeds { feats: Some(f), .. } => {
                assert_eq!(f.as_slice(), &[1.5, -0.25]);
            }
            other => panic!("{other:?}"),
        }
    }
}
