//! Minimal `epoll` readiness shim for the nonblocking acceptor.
//!
//! The workspace takes no external crates, so this binds the three epoll
//! syscalls (plus `close`) directly from the C library that `std` already
//! links — no `libc` crate, no raw `syscall()` numbers. Linux-only; the
//! server falls back to blocking accept + thread-per-connection elsewhere
//! (`fg-serve` gates this module behind `cfg(target_os = "linux")`).
//!
//! The shim intentionally exposes only what the acceptor needs:
//! level-triggered interest for the listener, `EPOLLONESHOT` interest for
//! connections (an event parks the fd until the handler re-arms it, so a
//! connection is serviced by exactly one handler at a time), and a
//! timeout-bounded [`Poller::wait`].

use std::io;
use std::os::fd::RawFd;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

/// Kernel event record. x86-64 packs this struct (no padding between the
/// mask and the data word); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Caller-chosen token registered with the fd.
    pub token: u64,
    /// Data is readable (or the peer half-closed — reads will see EOF).
    pub readable: bool,
    /// Error/hangup condition; the fd should be serviced (the read path
    /// surfaces the actual error) and closed.
    pub hangup: bool,
}

/// Thin RAII wrapper over an epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an fd; ctl/wait are thread-safe per the kernel API.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn interest(oneshot: bool) -> u32 {
        let base = EPOLLIN | EPOLLRDHUP;
        if oneshot {
            base | EPOLLONESHOT
        } else {
            base
        }
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for read readiness under `token`. With `oneshot`, the
    /// fd goes quiet after its first event until [`rearm`](Self::rearm).
    pub fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Self::interest(oneshot), token)
    }

    /// Re-enable a oneshot registration after servicing its event.
    pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Self::interest(true), token)
    }

    /// Drop a registration. Errors are ignored — the fd may already be
    /// closed, which deregisters implicitly.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait up to `timeout_ms` (`-1` = forever) and append ready events to
    /// `out`. Returns the number of events delivered; `EINTR` counts as
    /// zero events rather than an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
        let rc = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(rc as usize) {
            // Copy out of the (possibly packed) struct before using.
            let events = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(rc as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, false).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no pending connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn oneshot_parks_until_rearmed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server_side.as_raw_fd(), 42, true).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);

        // Unread data remains, but the oneshot registration is spent.
        events.clear();
        let n = poller.wait(&mut events, 100).unwrap();
        assert_eq!(n, 0, "oneshot must not refire before rearm");

        poller.rearm(server_side.as_raw_fd(), 42).unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);

        poller.delete(server_side.as_raw_fd());
    }
}
