//! Line-oriented wire protocol for the `fgserve` TCP front-end.
//!
//! Requests (one per line, space-separated, UTF-8):
//!
//! ```text
//! INFER <model> <node> [id=<token>] [deadline_ms=<n>]
//! STATS
//! METRICS
//! MEMORY
//! SLOWLOG [<n>]
//! PING
//! SHUTDOWN
//! ```
//!
//! Responses (one reply per request, in request order per connection;
//! single-line except where noted):
//!
//! ```text
//! OK <id> <class> <logit0> <logit1> ...
//! ERR <id> <code> [detail ...]
//! STATS <key>=<value> ...
//! <prometheus exposition, multi-line, terminated by "# EOF">
//! MEMORY <n> (followed by n "MEM <key>=<value> ..." lines)
//! SLOWLOG <n> (followed by n "SLOW <key>=<value> ..." lines)
//! PONG
//! BYE
//! ```
//!
//! `METRICS` is the only reply without a fixed line count: clients read
//! until the OpenMetrics `# EOF` terminator line. `MEMORY` and `SLOWLOG`
//! declare their line counts up front in the header. `MEMORY` reports the
//! accounted per-component footprint (one `MEM component=...` line per
//! component, then `MEM total ...`, `MEM plan_cache ...`, and on Linux
//! `MEM rss ...` summary lines).
//!
//! `<id>` is an opaque client token echoed back verbatim (`-` when the
//! request carried none) — it is how `fgserve bench` proves that no
//! response was lost, duplicated, or crossed between requests. Error codes
//! are the stable strings from [`ServeError::code`]: `overloaded`,
//! `over-memory-budget`, `timeout`, `unknown-model`, `bad-request`,
//! `shutting-down`, `infer-failed`.

use std::time::Duration;

use crate::engine::{InferResponse, ServeError};

/// Placeholder ID echoed when the client supplied none.
pub const NO_ID: &str = "-";

/// A parsed client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `INFER <model> <node> [id=..] [deadline_ms=..]`
    Infer {
        /// Target model name.
        model: String,
        /// Requested node.
        node: usize,
        /// Client token echoed in the response.
        id: Option<String>,
        /// Per-request deadline override.
        deadline_ms: Option<u64>,
    },
    /// `STATS`
    Stats,
    /// `METRICS` — Prometheus-style exposition, read until `# EOF`.
    Metrics,
    /// `MEMORY` — per-component accounted-footprint breakdown.
    Memory,
    /// `SLOWLOG [<n>]` — newest `n` slow-request entries (all when omitted).
    SlowLog {
        /// Maximum entries to return.
        limit: Option<usize>,
    },
    /// `PING`
    Ping,
    /// `SHUTDOWN`
    Shutdown,
}

impl Request {
    /// The deadline as a `Duration`, if any.
    pub fn deadline(&self) -> Option<Duration> {
        match self {
            Request::Infer { deadline_ms, .. } => deadline_ms.map(Duration::from_millis),
            _ => None,
        }
    }
}

/// Parse one client line. Returns a human-readable error message for
/// malformed input (sent back as `ERR - bad-request <msg>`).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().ok_or("empty request")?;
    match verb {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "MEMORY" => Ok(Request::Memory),
        "SLOWLOG" => {
            let limit = match parts.next() {
                None => None,
                Some(tok) => Some(tok.parse().map_err(|_| format!("bad SLOWLOG limit {tok:?}"))?),
            };
            Ok(Request::SlowLog { limit })
        }
        "SHUTDOWN" => Ok(Request::Shutdown),
        "INFER" => {
            let model = parts
                .next()
                .ok_or("INFER needs: INFER <model> <node>")?
                .to_string();
            let node_tok = parts.next().ok_or("INFER needs: INFER <model> <node>")?;
            let node: usize = node_tok
                .parse()
                .map_err(|_| format!("bad node {node_tok:?}"))?;
            let mut id = None;
            let mut deadline_ms = None;
            for opt in parts {
                if let Some(tok) = opt.strip_prefix("id=") {
                    if tok.is_empty() {
                        return Err("empty id=".into());
                    }
                    id = Some(tok.to_string());
                } else if let Some(ms) = opt.strip_prefix("deadline_ms=") {
                    deadline_ms =
                        Some(ms.parse().map_err(|_| format!("bad deadline_ms {ms:?}"))?);
                } else {
                    return Err(format!("unknown option {opt:?}"));
                }
            }
            Ok(Request::Infer {
                model,
                node,
                id,
                deadline_ms,
            })
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Render a successful inference reply.
pub fn format_ok(id: Option<&str>, resp: &InferResponse) -> String {
    let mut line = format!("OK {} {}", id.unwrap_or(NO_ID), resp.class);
    for logit in &resp.logits {
        line.push(' ');
        line.push_str(&format!("{logit}"));
    }
    line
}

/// Render a typed serving error.
pub fn format_err(id: Option<&str>, err: &ServeError) -> String {
    format!("ERR {} {} {err}", id.unwrap_or(NO_ID), err.code())
}

/// Render a malformed-line rejection.
pub fn format_bad_request(msg: &str) -> String {
    format!("ERR {NO_ID} bad-request {msg}")
}

/// A parsed `OK`/`ERR` server reply, as seen by the bench client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful inference.
    Ok {
        /// Echoed client token.
        id: String,
        /// Predicted class.
        class: usize,
        /// Logits row.
        logits: Vec<f32>,
    },
    /// Typed failure.
    Err {
        /// Echoed client token.
        id: String,
        /// Machine-readable error code.
        code: String,
    },
}

/// Parse a server `OK`/`ERR` line (bench-client side).
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let mut parts = line.split_ascii_whitespace();
    match parts.next() {
        Some("OK") => {
            let id = parts.next().ok_or("OK missing id")?.to_string();
            let class: usize = parts
                .next()
                .ok_or("OK missing class")?
                .parse()
                .map_err(|_| "bad class")?;
            let logits = parts
                .map(|t| t.parse::<f32>().map_err(|_| format!("bad logit {t:?}")))
                .collect::<Result<Vec<f32>, String>>()?;
            Ok(Reply::Ok { id, class, logits })
        }
        Some("ERR") => {
            let id = parts.next().ok_or("ERR missing id")?.to_string();
            let code = parts.next().ok_or("ERR missing code")?.to_string();
            Ok(Reply::Err { id, code })
        }
        other => Err(format!("unexpected reply {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_infer_line() {
        let req = parse_request("INFER gcn 42 id=c3-r7 deadline_ms=250").unwrap();
        assert_eq!(
            req,
            Request::Infer {
                model: "gcn".into(),
                node: 42,
                id: Some("c3-r7".into()),
                deadline_ms: Some(250),
            }
        );
        assert_eq!(req.deadline(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn parses_minimal_and_control_lines() {
        assert_eq!(
            parse_request("INFER gat 0").unwrap(),
            Request::Infer {
                model: "gat".into(),
                node: 0,
                id: None,
                deadline_ms: None
            }
        );
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("MEMORY").unwrap(), Request::Memory);
        assert_eq!(
            parse_request("SLOWLOG").unwrap(),
            Request::SlowLog { limit: None }
        );
        assert_eq!(
            parse_request("SLOWLOG 10").unwrap(),
            Request::SlowLog { limit: Some(10) }
        );
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB x").is_err());
        assert!(parse_request("INFER gcn").is_err());
        assert!(parse_request("INFER gcn notanode").is_err());
        assert!(parse_request("INFER gcn 1 id=").is_err());
        assert!(parse_request("INFER gcn 1 deadline_ms=soon").is_err());
        assert!(parse_request("INFER gcn 1 frobnicate=1").is_err());
        assert!(parse_request("SLOWLOG many").is_err());
    }

    #[test]
    fn ok_reply_round_trips() {
        let resp = InferResponse {
            class: 2,
            logits: vec![-0.5, 0.25, 1.75],
        };
        let line = format_ok(Some("c0-r1"), &resp);
        match parse_reply(&line).unwrap() {
            Reply::Ok { id, class, logits } => {
                assert_eq!(id, "c0-r1");
                assert_eq!(class, 2);
                assert_eq!(logits, resp.logits);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn err_reply_round_trips_with_stable_code() {
        let line = format_err(None, &ServeError::Overloaded);
        assert!(line.starts_with("ERR - overloaded "), "{line}");
        match parse_reply(&line).unwrap() {
            Reply::Err { id, code } => {
                assert_eq!(id, NO_ID);
                assert_eq!(code, "overloaded");
            }
            other => panic!("{other:?}"),
        }
    }
}
