//! Line-oriented wire protocol for the `fgserve` TCP front-end.
//!
//! Requests (one per line, space-separated, UTF-8):
//!
//! ```text
//! INFER <model> <node> [id=<token>] [deadline_ms=<n>]
//! INFER_SEEDS <model> <s0,s1,...> [fanout=<f0,f1,...>] [sample_seed=<n>]
//!             [feats=<r0v0,r0v1;r1v0,r1v1;...>] [id=<token>] [deadline_ms=<n>]
//! STATS
//! METRICS
//! MEMORY
//! SHARDS
//! SLOWLOG [<n>]
//! PING
//! SHUTDOWN
//! ```
//!
//! Responses (one reply per request, in request order per connection;
//! single-line except where noted):
//!
//! ```text
//! OK <id> <class> <logit0> <logit1> ...
//! ERR <id> <code> [detail ...]
//! SEEDS <id> <n> <sub_v> <sub_e> (followed by n "SEED <node> <class> <logits...>" lines)
//! STATS <key>=<value> ...
//! <prometheus exposition, multi-line, terminated by "# EOF">
//! MEMORY <n> (followed by n "MEM <key>=<value> ..." lines)
//! SHARDS <n> (followed by n "SHARD <key>=<value> ..." lines)
//! SLOWLOG <n> (followed by n "SLOW <key>=<value> ..." lines)
//! PONG
//! BYE
//! ```
//!
//! `METRICS` is the only reply without a fixed line count: clients read
//! until the OpenMetrics `# EOF` terminator line. `SEEDS`, `MEMORY`,
//! `SHARDS`, and `SLOWLOG` declare their line counts up front in the
//! header. `MEMORY` reports the accounted per-component footprint (one
//! `MEM component=...` line per component, then `MEM total ...`,
//! `MEM plan_cache ...`, and on Linux `MEM rss ...` summary lines).
//! `SHARDS` reports one line per shard per registered model (owned/halo
//! vertex counts, edges, routed rows, exchange bytes) and answers
//! `SHARDS 0` on a single-worker server.
//!
//! `INFER_SEEDS` answers its seed list by sampling a fanout-bounded
//! neighborhood and running the model on the induced subgraph; `fanout`
//! names per-hop in-neighbor caps (seed-side first) and defaults to full
//! fanout over two hops, which reproduces full-graph logits bit-for-bit.
//! One `SEED` line comes back per requested seed, in request order; the
//! header carries the sampled subgraph's vertex/edge counts. A failed
//! seeded request answers with a single ordinary `ERR` line.
//!
//! `feats=` carries client-supplied feature rows for the seed vertices
//! (rows `;`-separated, values `,`-separated, one row per seed in seed
//! order); the engine substitutes them for the stored feature rows before
//! inference. Non-finite values are rejected with `bad-request`. This is
//! the feature-heavy workload the binary protocol ([`crate::frame`])
//! exists for — ASCII float parsing here is the measured baseline.
//!
//! `<id>` is an opaque client token echoed back verbatim (`-` when the
//! request carried none) — it is how `fgserve bench` proves that no
//! response was lost, duplicated, or crossed between requests. Error codes
//! are the stable strings from [`ServeError::code`]: `overloaded`,
//! `over-memory-budget`, `timeout`, `unknown-model`, `bad-request`,
//! `shutting-down`, `infer-failed`.

use std::time::Duration;

use fg_tensor::Dense2;

use crate::engine::{InferResponse, SeedsResponse, ServeError};

/// Placeholder ID echoed when the client supplied none.
pub const NO_ID: &str = "-";

/// A parsed client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `INFER <model> <node> [id=..] [deadline_ms=..]`
    Infer {
        /// Target model name.
        model: String,
        /// Requested node.
        node: usize,
        /// Client token echoed in the response.
        id: Option<String>,
        /// Per-request deadline override.
        deadline_ms: Option<u64>,
    },
    /// `INFER_SEEDS <model> <s0,s1,...> [fanout=..] [sample_seed=..]
    /// [id=..] [deadline_ms=..]`
    InferSeeds {
        /// Target model name.
        model: String,
        /// Requested seed vertices, in reply order.
        seeds: Vec<usize>,
        /// Per-hop fanout caps; `None` = full fanout, two hops.
        fanouts: Option<Vec<usize>>,
        /// Sampler RNG seed (defaults to 0).
        sample_seed: u64,
        /// Client-supplied feature rows (one per seed, in seed order)
        /// substituted for the stored rows; `None` = stored features.
        feats: Option<Dense2<f32>>,
        /// Client token echoed in the response.
        id: Option<String>,
        /// Per-request deadline override.
        deadline_ms: Option<u64>,
    },
    /// `STATS`
    Stats,
    /// `METRICS` — Prometheus-style exposition, read until `# EOF`.
    Metrics,
    /// `MEMORY` — per-component accounted-footprint breakdown.
    Memory,
    /// `SHARDS` — per-shard topology and traffic breakdown.
    Shards,
    /// `SLOWLOG [<n>]` — newest `n` slow-request entries (all when omitted).
    SlowLog {
        /// Maximum entries to return.
        limit: Option<usize>,
    },
    /// `PING`
    Ping,
    /// `SHUTDOWN`
    Shutdown,
}

impl Request {
    /// The deadline as a `Duration`, if any.
    pub fn deadline(&self) -> Option<Duration> {
        match self {
            Request::Infer { deadline_ms, .. } | Request::InferSeeds { deadline_ms, .. } => {
                deadline_ms.map(Duration::from_millis)
            }
            _ => None,
        }
    }
}

/// Parse one client line. Returns a human-readable error message for
/// malformed input (sent back as `ERR - bad-request <msg>`).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().ok_or("empty request")?;
    match verb {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "MEMORY" => Ok(Request::Memory),
        "SHARDS" => Ok(Request::Shards),
        "SLOWLOG" => {
            let limit = match parts.next() {
                None => None,
                Some(tok) => Some(tok.parse().map_err(|_| format!("bad SLOWLOG limit {tok:?}"))?),
            };
            Ok(Request::SlowLog { limit })
        }
        "SHUTDOWN" => Ok(Request::Shutdown),
        "INFER" => {
            let model = parts
                .next()
                .ok_or("INFER needs: INFER <model> <node>")?
                .to_string();
            let node_tok = parts.next().ok_or("INFER needs: INFER <model> <node>")?;
            let node: usize = node_tok
                .parse()
                .map_err(|_| format!("bad node {node_tok:?}"))?;
            let mut id = None;
            let mut deadline_ms = None;
            for opt in parts {
                if let Some(tok) = opt.strip_prefix("id=") {
                    if tok.is_empty() {
                        return Err("empty id=".into());
                    }
                    id = Some(tok.to_string());
                } else if let Some(ms) = opt.strip_prefix("deadline_ms=") {
                    deadline_ms =
                        Some(ms.parse().map_err(|_| format!("bad deadline_ms {ms:?}"))?);
                } else {
                    return Err(format!("unknown option {opt:?}"));
                }
            }
            Ok(Request::Infer {
                model,
                node,
                id,
                deadline_ms,
            })
        }
        "INFER_SEEDS" => {
            let model = parts
                .next()
                .ok_or("INFER_SEEDS needs: INFER_SEEDS <model> <s0,s1,...>")?
                .to_string();
            let seeds_tok = parts
                .next()
                .ok_or("INFER_SEEDS needs: INFER_SEEDS <model> <s0,s1,...>")?;
            let seeds = parse_usize_list(seeds_tok).map_err(|t| format!("bad seed {t:?}"))?;
            if seeds.is_empty() {
                return Err("empty seed list".into());
            }
            let mut fanouts = None;
            let mut sample_seed = 0;
            let mut feats = None;
            let mut id = None;
            let mut deadline_ms = None;
            for opt in parts {
                if let Some(tok) = opt.strip_prefix("fanout=") {
                    let f = parse_usize_list(tok).map_err(|t| format!("bad fanout {t:?}"))?;
                    if f.is_empty() {
                        return Err("empty fanout=".into());
                    }
                    fanouts = Some(f);
                } else if let Some(tok) = opt.strip_prefix("feats=") {
                    feats = Some(parse_feats(tok)?);
                } else if let Some(tok) = opt.strip_prefix("sample_seed=") {
                    sample_seed = tok
                        .parse()
                        .map_err(|_| format!("bad sample_seed {tok:?}"))?;
                } else if let Some(tok) = opt.strip_prefix("id=") {
                    if tok.is_empty() {
                        return Err("empty id=".into());
                    }
                    id = Some(tok.to_string());
                } else if let Some(ms) = opt.strip_prefix("deadline_ms=") {
                    deadline_ms =
                        Some(ms.parse().map_err(|_| format!("bad deadline_ms {ms:?}"))?);
                } else {
                    return Err(format!("unknown option {opt:?}"));
                }
            }
            Ok(Request::InferSeeds {
                model,
                seeds,
                fanouts,
                sample_seed,
                feats,
                id,
                deadline_ms,
            })
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Parse a comma-separated list of unsigned integers; the error is the
/// offending token.
fn parse_usize_list(tok: &str) -> Result<Vec<usize>, &str> {
    tok.split(',')
        .map(|t| t.parse::<usize>().map_err(|_| t))
        .collect()
}

/// Parse a `feats=` payload: rows separated by `;`, values by `,`. Every
/// row must have the same width; `nan`/`inf` tokens are rejected here so
/// a malformed payload never reaches the engine.
fn parse_feats(tok: &str) -> Result<Dense2<f32>, String> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for row_tok in tok.split(';') {
        if row_tok.is_empty() {
            return Err("empty feats row".into());
        }
        let row = row_tok
            .split(',')
            .map(|t| match t.parse::<f32>() {
                Ok(v) if v.is_finite() => Ok(v),
                Ok(_) => Err(format!("non-finite feat {t:?}")),
                Err(_) => Err(format!("bad feat {t:?}")),
            })
            .collect::<Result<Vec<f32>, String>>()?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(format!(
                    "ragged feats: row 0 has {} values, row {} has {}",
                    first.len(),
                    rows.len(),
                    row.len()
                ));
            }
        }
        rows.push(row);
    }
    let cols = rows[0].len();
    let n = rows.len();
    Dense2::from_vec(n, cols, rows.into_iter().flatten().collect())
        .map_err(|e| format!("bad feats shape: {e}"))
}

/// Render a successful inference reply.
pub fn format_ok(id: Option<&str>, resp: &InferResponse) -> String {
    let mut line = format!("OK {} {}", id.unwrap_or(NO_ID), resp.class);
    for logit in &resp.logits {
        line.push(' ');
        line.push_str(&format!("{logit}"));
    }
    line
}

/// Render a successful seeded reply as its multi-line wire form: the
/// `SEEDS` header (declared line count plus subgraph dims), then one
/// `SEED <node> <class> <logits...>` line per requested seed, in request
/// order. `seeds` is the request's seed list (the engine reply carries
/// rows, not vertex ids).
pub fn format_seeds_ok(id: Option<&str>, seeds: &[usize], resp: &SeedsResponse) -> Vec<String> {
    debug_assert_eq!(seeds.len(), resp.results.len());
    let mut lines = Vec::with_capacity(resp.results.len() + 1);
    lines.push(format!(
        "SEEDS {} {} {} {}",
        id.unwrap_or(NO_ID),
        resp.results.len(),
        resp.sub_vertices,
        resp.sub_edges,
    ));
    for (node, r) in seeds.iter().zip(&resp.results) {
        let mut line = format!("SEED {node} {}", r.class);
        for logit in &r.logits {
            line.push(' ');
            line.push_str(&format!("{logit}"));
        }
        lines.push(line);
    }
    lines
}

/// A parsed `SEEDS` reply header (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedsHeader {
    /// Echoed client token.
    pub id: String,
    /// Number of `SEED` lines that follow.
    pub count: usize,
    /// Vertices in the sampled subgraph.
    pub sub_vertices: usize,
    /// Edges in the sampled subgraph.
    pub sub_edges: usize,
}

/// Parse a `SEEDS <id> <n> <sub_v> <sub_e>` header line (client side).
pub fn parse_seeds_header(line: &str) -> Result<SeedsHeader, String> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("SEEDS") {
        return Err(format!("not a SEEDS header: {line:?}"));
    }
    let id = parts.next().ok_or("SEEDS missing id")?.to_string();
    let mut num = |what: &str| -> Result<usize, String> {
        parts
            .next()
            .ok_or(format!("SEEDS missing {what}"))?
            .parse()
            .map_err(|_| format!("bad SEEDS {what}"))
    };
    Ok(SeedsHeader {
        id,
        count: num("count")?,
        sub_vertices: num("sub_vertices")?,
        sub_edges: num("sub_edges")?,
    })
}

/// Parse one `SEED <node> <class> <logits...>` payload line (client side).
pub fn parse_seed_line(line: &str) -> Result<(usize, InferResponse), String> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next() != Some("SEED") {
        return Err(format!("not a SEED line: {line:?}"));
    }
    let node: usize = parts
        .next()
        .ok_or("SEED missing node")?
        .parse()
        .map_err(|_| "bad SEED node")?;
    let class: usize = parts
        .next()
        .ok_or("SEED missing class")?
        .parse()
        .map_err(|_| "bad SEED class")?;
    let logits = parts
        .map(|t| t.parse::<f32>().map_err(|_| format!("bad logit {t:?}")))
        .collect::<Result<Vec<f32>, String>>()?;
    Ok((node, InferResponse { class, logits }))
}

/// Render a typed serving error.
pub fn format_err(id: Option<&str>, err: &ServeError) -> String {
    format!("ERR {} {} {err}", id.unwrap_or(NO_ID), err.code())
}

/// Render a malformed-line rejection.
pub fn format_bad_request(msg: &str) -> String {
    format!("ERR {NO_ID} bad-request {msg}")
}

/// A parsed `OK`/`ERR` server reply, as seen by the bench client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful inference.
    Ok {
        /// Echoed client token.
        id: String,
        /// Predicted class.
        class: usize,
        /// Logits row.
        logits: Vec<f32>,
    },
    /// Typed failure.
    Err {
        /// Echoed client token.
        id: String,
        /// Machine-readable error code.
        code: String,
    },
}

/// Parse a server `OK`/`ERR` line (bench-client side).
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let mut parts = line.split_ascii_whitespace();
    match parts.next() {
        Some("OK") => {
            let id = parts.next().ok_or("OK missing id")?.to_string();
            let class: usize = parts
                .next()
                .ok_or("OK missing class")?
                .parse()
                .map_err(|_| "bad class")?;
            let logits = parts
                .map(|t| t.parse::<f32>().map_err(|_| format!("bad logit {t:?}")))
                .collect::<Result<Vec<f32>, String>>()?;
            Ok(Reply::Ok { id, class, logits })
        }
        Some("ERR") => {
            let id = parts.next().ok_or("ERR missing id")?.to_string();
            let code = parts.next().ok_or("ERR missing code")?.to_string();
            Ok(Reply::Err { id, code })
        }
        other => Err(format!("unexpected reply {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_infer_line() {
        let req = parse_request("INFER gcn 42 id=c3-r7 deadline_ms=250").unwrap();
        assert_eq!(
            req,
            Request::Infer {
                model: "gcn".into(),
                node: 42,
                id: Some("c3-r7".into()),
                deadline_ms: Some(250),
            }
        );
        assert_eq!(req.deadline(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn parses_minimal_and_control_lines() {
        assert_eq!(
            parse_request("INFER gat 0").unwrap(),
            Request::Infer {
                model: "gat".into(),
                node: 0,
                id: None,
                deadline_ms: None
            }
        );
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("MEMORY").unwrap(), Request::Memory);
        assert_eq!(parse_request("SHARDS").unwrap(), Request::Shards);
        assert_eq!(
            parse_request("SLOWLOG").unwrap(),
            Request::SlowLog { limit: None }
        );
        assert_eq!(
            parse_request("SLOWLOG 10").unwrap(),
            Request::SlowLog { limit: Some(10) }
        );
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("FROB x").is_err());
        assert!(parse_request("INFER gcn").is_err());
        assert!(parse_request("INFER gcn notanode").is_err());
        assert!(parse_request("INFER gcn 1 id=").is_err());
        assert!(parse_request("INFER gcn 1 deadline_ms=soon").is_err());
        assert!(parse_request("INFER gcn 1 frobnicate=1").is_err());
        assert!(parse_request("SLOWLOG many").is_err());
    }

    #[test]
    fn parses_infer_seeds_lines() {
        let req =
            parse_request("INFER_SEEDS gat 3,1,4 fanout=10,5 sample_seed=7 id=c1 deadline_ms=90")
                .unwrap();
        assert_eq!(
            req,
            Request::InferSeeds {
                model: "gat".into(),
                seeds: vec![3, 1, 4],
                fanouts: Some(vec![10, 5]),
                sample_seed: 7,
                feats: None,
                id: Some("c1".into()),
                deadline_ms: Some(90),
            }
        );
        assert_eq!(req.deadline(), Some(Duration::from_millis(90)));
        // Minimal form: defaults are full fanout (None) and sample_seed 0.
        assert_eq!(
            parse_request("INFER_SEEDS gcn 5").unwrap(),
            Request::InferSeeds {
                model: "gcn".into(),
                seeds: vec![5],
                fanouts: None,
                sample_seed: 0,
                feats: None,
                id: None,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn parses_feats_payload() {
        let req = parse_request("INFER_SEEDS gcn 3,1 feats=0.5,-1.25;2,3 id=c9").unwrap();
        match req {
            Request::InferSeeds { feats: Some(f), .. } => {
                assert_eq!(f.shape(), (2, 2));
                assert_eq!(f.as_slice(), &[0.5, -1.25, 2.0, 3.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_feats_payloads() {
        // ragged rows
        assert!(parse_request("INFER_SEEDS gcn 1,2 feats=1,2;3").is_err());
        // empty row / empty payload
        assert!(parse_request("INFER_SEEDS gcn 1 feats=").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1,2 feats=1,2;;3,4").is_err());
        // unparsable scalar
        assert!(parse_request("INFER_SEEDS gcn 1 feats=1,x").is_err());
        // non-finite scalars never reach the engine
        assert!(parse_request("INFER_SEEDS gcn 1 feats=nan,1").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1 feats=inf").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1 feats=-inf,0").is_err());
    }

    #[test]
    fn rejects_malformed_infer_seeds_lines() {
        assert!(parse_request("INFER_SEEDS gcn").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1,x").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1,2 fanout=").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1 fanout=3,no").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1 sample_seed=soon").is_err());
        assert!(parse_request("INFER_SEEDS gcn 1 frobnicate=1").is_err());
    }

    #[test]
    fn seeds_reply_round_trips() {
        let resp = SeedsResponse {
            results: vec![
                InferResponse {
                    class: 1,
                    logits: vec![0.5, 2.0],
                },
                InferResponse {
                    class: 0,
                    logits: vec![3.25, -1.0],
                },
            ],
            sub_vertices: 17,
            sub_edges: 40,
        };
        let lines = format_seeds_ok(Some("c2"), &[9, 4], &resp);
        assert_eq!(lines.len(), 3);
        let header = parse_seeds_header(&lines[0]).unwrap();
        assert_eq!(
            header,
            SeedsHeader {
                id: "c2".into(),
                count: 2,
                sub_vertices: 17,
                sub_edges: 40,
            }
        );
        let (node, first) = parse_seed_line(&lines[1]).unwrap();
        assert_eq!(node, 9);
        assert_eq!(first, resp.results[0]);
        let (node, second) = parse_seed_line(&lines[2]).unwrap();
        assert_eq!(node, 4);
        assert_eq!(second, resp.results[1]);
        assert!(parse_seeds_header("OK - 1").is_err());
        assert!(parse_seed_line("SEED x 1").is_err());
    }

    #[test]
    fn ok_reply_round_trips() {
        let resp = InferResponse {
            class: 2,
            logits: vec![-0.5, 0.25, 1.75],
        };
        let line = format_ok(Some("c0-r1"), &resp);
        match parse_reply(&line).unwrap() {
            Reply::Ok { id, class, logits } => {
                assert_eq!(id, "c0-r1");
                assert_eq!(class, 2);
                assert_eq!(logits, resp.logits);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn err_reply_round_trips_with_stable_code() {
        let line = format_err(None, &ServeError::Overloaded);
        assert!(line.starts_with("ERR - overloaded "), "{line}");
        match parse_reply(&line).unwrap() {
            Reply::Err { id, code } => {
                assert_eq!(id, NO_ID);
                assert_eq!(code, "overloaded");
            }
            other => panic!("{other:?}"),
        }
    }
}
