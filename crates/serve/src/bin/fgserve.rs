//! `fgserve` — TCP front-end and benchmark driver for the fg-serve engine.
//!
//! ```text
//! fgserve serve   [--addr 127.0.0.1:7878] [dataset/engine knobs]
//!                 [--trace-sample N] [--slow-ms N] [--trace FILE]
//! fgserve bench   [--addr HOST:PORT] --clients 8 --requests 500 [checks]
//! fgserve metrics --addr HOST:PORT [--require SERIES]...
//! ```
//!
//! `bench` without `--addr` spins up an embedded server on a loopback
//! ephemeral port, benchmarks it, and shuts it down — that is what CI's
//! serve-smoke job runs. `metrics` scrapes one `METRICS` exposition,
//! validates that it parses, and (with `--require`) asserts named series
//! are present with a nonzero value — CI's metrics-smoke job.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_gnn::data::SbmTask;
use fg_gnn::models::build_model;
use fg_serve::stats::LatencyRecorder;
use fg_serve::{frame, metrics, protocol, Engine, ServeConfig};
use fg_tensor::{Dense2, FeatureDtype};

/// Which wire protocol bench clients speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireProto {
    /// Line-oriented text for every client.
    Text,
    /// Length-prefixed binary frames for every client.
    Binary,
    /// Even-numbered clients binary, odd text — exercises per-connection
    /// negotiation on one server.
    Mixed,
}

struct Opts {
    addr: Option<String>,
    models: Vec<String>,
    vertices: usize,
    classes: usize,
    avg_deg: usize,
    noise: usize,
    hidden: usize,
    seed: u64,
    batch: usize,
    delay_ms: u64,
    queue: usize,
    workers: usize,
    kernel_threads: usize,
    shards: usize,
    shard_strategy: String,
    deadline_ms: u64,
    exec_delay_ms: u64,
    plan_cache_bytes: u64,
    mem_budget: u64,
    clients: usize,
    requests: usize,
    runs: usize,
    seeds_per_request: usize,
    fanout: Option<String>,
    sample_seed: u64,
    feat_cols: usize,
    protocol: WireProto,
    feature_dtype: FeatureDtype,
    conn_handlers: usize,
    max_conns: usize,
    expect_no_shed: bool,
    expect_shed: bool,
    expect_plan_hits: bool,
    expect_mem_shed: bool,
    trace_sample: u64,
    slow_ms: Option<f64>,
    trace_file: Option<String>,
    require: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            models: vec!["gcn".into()],
            vertices: 3000,
            classes: 3,
            avg_deg: 8,
            noise: 4,
            hidden: 16,
            seed: 42,
            batch: 32,
            delay_ms: 2,
            queue: 1024,
            workers: 2,
            kernel_threads: 1,
            shards: 1,
            shard_strategy: "range".into(),
            deadline_ms: 500,
            exec_delay_ms: 0,
            plan_cache_bytes: 0,
            mem_budget: 0,
            clients: 8,
            requests: 500,
            runs: 1,
            seeds_per_request: 0,
            fanout: None,
            sample_seed: 0,
            feat_cols: 0,
            protocol: WireProto::Text,
            feature_dtype: FeatureDtype::F32,
            conn_handlers: 0,
            max_conns: 256,
            expect_no_shed: false,
            expect_shed: false,
            expect_plan_hits: false,
            expect_mem_shed: false,
            trace_sample: 0,
            slow_ms: None,
            trace_file: None,
            require: Vec::new(),
        }
    }
}

const USAGE: &str = "usage:
  fgserve serve   [--addr HOST:PORT] [--model gcn|graphsage|gat|all] [--vertices N]
                  [--classes N] [--avg-deg N] [--noise N] [--hidden N] [--seed N]
                  [--batch N] [--delay-ms N] [--queue N] [--workers N]
                  [--kernel-threads N] [--shards N] [--shard-strategy range|degree]
                  [--deadline-ms N] [--exec-delay-ms N]
                  [--plan-cache-bytes N] [--mem-budget N]
                  [--feature-dtype f32|f16|bf16] [--conn-handlers N] [--max-conns N]
                  [--trace-sample N] [--slow-ms N] [--trace FILE]
  fgserve bench   [--addr HOST:PORT] [--clients N] [--requests N] [--runs N]
                  [--model NAME] [dataset/engine knobs as above when embedded]
                  [--seeds-per-request N] [--fanout F0,F1] [--sample-seed N]
                  [--feat-cols N] [--protocol text|binary|mixed]
                  [--expect-no-shed] [--expect-shed] [--expect-plan-hits]
                  [--expect-mem-shed]
  fgserve metrics --addr HOST:PORT [--require SERIES]...

Both subcommands accept [--feature-dtype f32|f16|bf16] (half-precision
feature storage, f32 accumulate), [--conn-handlers N] (connection handler
pool; 0 = one per core, capped at 16), and [--max-conns N] (admission
limit on concurrent connections; 0 = unlimited) when they build a server.

bench without --addr benchmarks an embedded server on an ephemeral port.
--protocol picks the wire protocol the bench clients speak: text (default),
  binary (length-prefixed frames), or mixed (even clients binary, odd text,
  against one server — exercises per-connection negotiation). Reply digests
  are protocol-independent: binary and text runs over the same workload
  print the same digest.
--seeds-per-request N > 0 switches the bench clients to INFER_SEEDS: each
  request carries N seeds drawn from a power-law popularity distribution
  (a small head of hot vertices gets most of the traffic), with --fanout
  per-hop caps (full fanout when omitted) and a fresh sampler seed per
  request offset by --sample-seed. --feat-cols C > 0 additionally attaches
  C client-supplied feature scalars per seed (the feature-heavy workload
  where text-protocol ASCII parsing dominates).
--shards N >= 2 splits every registered graph across N per-shard workers with
  a halo exchange between layers (--shard-strategy picks the placement);
  results stay bitwise identical to single-worker serving, and bench prints a
  commutative reply digest so runs at different shard counts can be compared.
--plan-cache-bytes N bounds the compiled-plan cache (LRU eviction; 0 = off).
--mem-budget N sheds new requests with error over-memory-budget while the
  accounted footprint exceeds N bytes (0 = off; needs accounting compiled in).
--trace-sample N head-samples 1 in N requests for end-to-end tracing
  (1 = every request); --trace FILE writes the sampled spans as a Chrome
  trace_event file at shutdown (needs the telemetry feature).
--slow-ms N logs a phase breakdown of requests slower than N ms (SLOWLOG).
metrics scrapes one METRICS exposition and fails unless it parses and every
  --require SERIES prefix matches at least one nonzero sample.";

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => o.addr = Some(value(arg, &mut it)?),
            "--model" => {
                let v = value(arg, &mut it)?;
                o.models = if v == "all" {
                    vec!["gcn".into(), "graphsage".into(), "gat".into()]
                } else {
                    vec![v]
                };
            }
            "--vertices" => o.vertices = num(arg, &value(arg, &mut it)?)?,
            "--classes" => o.classes = num(arg, &value(arg, &mut it)?)?,
            "--avg-deg" => o.avg_deg = num(arg, &value(arg, &mut it)?)?,
            "--noise" => o.noise = num(arg, &value(arg, &mut it)?)?,
            "--hidden" => o.hidden = num(arg, &value(arg, &mut it)?)?,
            "--seed" => o.seed = num(arg, &value(arg, &mut it)?)? as u64,
            "--batch" => o.batch = num(arg, &value(arg, &mut it)?)?,
            "--delay-ms" => o.delay_ms = num(arg, &value(arg, &mut it)?)? as u64,
            "--queue" => o.queue = num(arg, &value(arg, &mut it)?)?,
            "--workers" => o.workers = num(arg, &value(arg, &mut it)?)?,
            "--kernel-threads" => o.kernel_threads = num(arg, &value(arg, &mut it)?)?,
            "--shards" => o.shards = num(arg, &value(arg, &mut it)?)?,
            "--shard-strategy" => {
                let v = value(arg, &mut it)?;
                v.parse::<fg_graph::ShardStrategy>()
                    .map_err(|e| format!("{arg}: {e}"))?;
                o.shard_strategy = v;
            }
            "--deadline-ms" => o.deadline_ms = num(arg, &value(arg, &mut it)?)? as u64,
            "--exec-delay-ms" => o.exec_delay_ms = num(arg, &value(arg, &mut it)?)? as u64,
            "--plan-cache-bytes" => o.plan_cache_bytes = num(arg, &value(arg, &mut it)?)? as u64,
            "--mem-budget" => o.mem_budget = num(arg, &value(arg, &mut it)?)? as u64,
            "--clients" => o.clients = num(arg, &value(arg, &mut it)?)?,
            "--requests" => o.requests = num(arg, &value(arg, &mut it)?)?,
            "--runs" => o.runs = num(arg, &value(arg, &mut it)?)?,
            "--seeds-per-request" => o.seeds_per_request = num(arg, &value(arg, &mut it)?)?,
            "--fanout" => {
                let v = value(arg, &mut it)?;
                for tok in v.split(',') {
                    num(arg, tok)?;
                }
                o.fanout = Some(v);
            }
            "--sample-seed" => o.sample_seed = num(arg, &value(arg, &mut it)?)? as u64,
            "--feat-cols" => o.feat_cols = num(arg, &value(arg, &mut it)?)?,
            "--protocol" => {
                o.protocol = match value(arg, &mut it)?.as_str() {
                    "text" => WireProto::Text,
                    "binary" => WireProto::Binary,
                    "mixed" => WireProto::Mixed,
                    other => return Err(format!("{arg}: expected text|binary|mixed, got {other}")),
                };
            }
            "--feature-dtype" => {
                let v = value(arg, &mut it)?;
                o.feature_dtype = v.parse().map_err(|e| format!("{arg}: {e}"))?;
            }
            "--conn-handlers" => o.conn_handlers = num(arg, &value(arg, &mut it)?)?,
            "--max-conns" => o.max_conns = num(arg, &value(arg, &mut it)?)?,
            "--expect-no-shed" => o.expect_no_shed = true,
            "--expect-shed" => o.expect_shed = true,
            "--expect-plan-hits" => o.expect_plan_hits = true,
            "--expect-mem-shed" => o.expect_mem_shed = true,
            "--trace-sample" => o.trace_sample = num(arg, &value(arg, &mut it)?)? as u64,
            "--slow-ms" => {
                let v = value(arg, &mut it)?;
                o.slow_ms = Some(
                    v.parse()
                        .map_err(|_| format!("{arg}: bad number {v:?}"))?,
                );
            }
            "--trace" => o.trace_file = Some(value(arg, &mut it)?),
            "--require" => o.require.push(value(arg, &mut it)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

fn num(flag: &str, v: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{flag}: bad number {v:?}"))
}

fn build_engine(o: &Opts) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(ServeConfig {
        max_batch: o.batch,
        max_delay: Duration::from_millis(o.delay_ms),
        queue_capacity: o.queue,
        workers: o.workers,
        kernel_threads: o.kernel_threads,
        shards: o.shards,
        shard_strategy: o
            .shard_strategy
            .parse()
            .expect("strategy validated at flag parse"),
        default_deadline: (o.deadline_ms > 0).then(|| Duration::from_millis(o.deadline_ms)),
        exec_delay: Duration::from_millis(o.exec_delay_ms),
        trace_sample: o.trace_sample,
        slow_ms: o.slow_ms,
        plan_cache_bytes: o.plan_cache_bytes,
        mem_budget: o.mem_budget,
        feature_dtype: o.feature_dtype,
        conn_handlers: o.conn_handlers,
        max_conns: o.max_conns,
    }));
    for name in &o.models {
        // Attribute the dataset build: graph + feature tensors land in the
        // Features component; build_model scopes its own params.
        let task = {
            let _mem = fg_telemetry::MemScope::enter(fg_telemetry::MemComponent::Features);
            SbmTask::generate(o.vertices, o.classes, o.avg_deg, o.noise, o.seed)
        };
        let model = build_model(name, task.in_dim(), o.hidden, task.num_classes, o.seed);
        engine.register_model(name, model, task.graph, task.features);
    }
    engine
}

/// Turn telemetry on and install a Chrome-trace sink when `--trace FILE`
/// was given. Returns the sink so shutdown can report write failures.
#[cfg(feature = "telemetry")]
fn trace_sink_setup(o: &Opts) -> Option<Arc<fg_telemetry::ChromeTraceSink>> {
    let path = o.trace_file.as_ref()?;
    fg_telemetry::set_enabled(true);
    let sink = Arc::new(fg_telemetry::ChromeTraceSink::new(path.clone()));
    fg_telemetry::add_sink(sink.clone());
    Some(sink)
}

#[cfg(feature = "telemetry")]
fn trace_sink_finish(o: &Opts, sink: Option<Arc<fg_telemetry::ChromeTraceSink>>) {
    let (Some(path), Some(sink)) = (o.trace_file.as_ref(), sink) else {
        return;
    };
    fg_telemetry::flush();
    match sink.write_error() {
        Some(err) => eprintln!("fgserve: failed to write trace to {path}: {err}"),
        None => eprintln!("fgserve: trace written to {path}"),
    }
}

fn cmd_serve(o: &Opts) -> ExitCode {
    #[cfg(not(feature = "telemetry"))]
    if o.trace_file.is_some() {
        eprintln!("fgserve: --trace requires the telemetry feature (compiled out); ignoring");
    }
    #[cfg(feature = "telemetry")]
    let sink = trace_sink_setup(o);
    let engine = build_engine(o);
    let addr = o.addr.clone().unwrap_or_else(|| "127.0.0.1:7878".into());
    let handle = match fg_serve::serve(engine, addr.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fgserve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fgserve: listening on {} models=[{}] shards={} trace_sample={} slow_ms={}",
        handle.addr(),
        o.models.join(","),
        if o.shards >= 2 {
            format!("{}({})", o.shards, o.shard_strategy)
        } else {
            "off".into()
        },
        o.trace_sample,
        o.slow_ms.map_or("off".into(), |t| format!("{t}")),
    );
    let _ = std::io::stdout().flush();
    handle.join();
    #[cfg(feature = "telemetry")]
    trace_sink_finish(o, sink);
    ExitCode::SUCCESS
}

/// Aggregated outcome of one closed-loop bench run.
#[derive(Default)]
struct RunTally {
    completed: u64,
    shed: u64,
    mem_shed: u64,
    timed_out: u64,
    other_err: u64,
    mismatched: u64,
    lost: u64,
    /// Order-independent digest over completed reply payloads: per-reply
    /// FNV-1a folded with wrapping add, so the digest is identical no matter
    /// how replies interleave across clients. Two bench runs with the same
    /// workload against bitwise-identical servers print the same digest —
    /// CI's shard-parity gate compares a 1-shard run against a 4-shard run.
    digest: u64,
}

/// FNV-1a over one reply line.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic pseudo-random stream, distinct per (client, request, slot).
fn bench_hash(client: usize, i: usize, j: usize) -> u64 {
    let mut x = (client as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((j as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

/// Power-law seed popularity: squaring the uniform draw concentrates mass
/// near vertex 0, so a small head of hot vertices receives most requests —
/// the regime where bucketed plan keys and repeated-neighborhood sampling
/// pay off.
fn popular_vertex(client: usize, i: usize, j: usize, vertices: usize) -> usize {
    let u = bench_hash(client, i, j) as f64 / u64::MAX as f64;
    ((vertices as f64 * u * u) as usize).min(vertices - 1)
}

/// Knobs for the seeded (`INFER_SEEDS`) bench mode; `None` = plain `INFER`.
#[derive(Clone)]
struct SeedsMode {
    seeds_per_request: usize,
    fanout: Option<String>,
    sample_seed: u64,
    /// Feature columns per client-supplied seed row; `0` = no feature
    /// payload. This is the feature-heavy workload where the per-scalar
    /// ASCII parse dominates the text protocol.
    feat_cols: usize,
}

/// Deterministic feature scalar in [-1, 1), identical on both protocols
/// (the text side prints the shortest roundtripping decimal).
fn feat_value(client: usize, i: usize, row: usize, col: usize) -> f32 {
    let h = bench_hash(client, i, 1_000_000 + row * 4096 + col);
    (h as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32
}

/// Client-supplied feature rows for one request.
fn feat_rows(client: usize, i: usize, rows: usize, cols: usize) -> Dense2<f32> {
    Dense2::from_fn(rows, cols, |r, c| feat_value(client, i, r, c))
}

/// Binary-protocol bench client: same workload and tallies as the text
/// client, one frame per request. Reply payloads are digested through
/// their canonical text rendering so binary and text runs over the same
/// workload print identical digests.
fn bench_client_binary(
    addr: &str,
    model: &str,
    client: usize,
    n: usize,
    vertices: usize,
    seeds_mode: Option<SeedsMode>,
) -> std::io::Result<(RunTally, Vec<Duration>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut tally = RunTally::default();
    let mut latencies = Vec::with_capacity(n);
    let tally_err = |code: &str, tally: &mut RunTally| match code {
        "overloaded" => tally.shed += 1,
        "over-memory-budget" => tally.mem_shed += 1,
        "timeout" => tally.timed_out += 1,
        _ => tally.other_err += 1,
    };
    for i in 0..n {
        let id = format!("c{client}-r{i}");
        let t0 = Instant::now();
        let req = if let Some(mode) = &seeds_mode {
            let seeds: Vec<usize> = (0..mode.seeds_per_request)
                .map(|j| popular_vertex(client, i, j, vertices))
                .collect();
            let fanouts = mode.fanout.as_deref().map(|f| {
                f.split(',')
                    .map(|t| t.parse().expect("fanout validated at flag parse"))
                    .collect()
            });
            let feats = (mode.feat_cols > 0)
                .then(|| feat_rows(client, i, seeds.len(), mode.feat_cols));
            protocol::Request::InferSeeds {
                model: model.to_string(),
                seeds,
                fanouts,
                sample_seed: mode.sample_seed.wrapping_add(bench_hash(client, i, 99)),
                feats,
                id: Some(id.clone()),
                deadline_ms: None,
            }
        } else {
            let node = (client
                .wrapping_mul(2654435761)
                .wrapping_add(i.wrapping_mul(40503)))
                % vertices;
            protocol::Request::Infer {
                model: model.to_string(),
                node,
                id: Some(id.clone()),
                deadline_ms: None,
            }
        };
        frame::write_frame(&mut writer, &frame::encode_request(&req))?;
        let reply_frame = match frame::read_frame(&mut reader, false) {
            Ok(f) => f,
            Err(frame::FrameError::Io(_)) => {
                tally.lost += (n - i) as u64;
                break;
            }
            Err(_) => {
                tally.mismatched += 1;
                continue;
            }
        };
        let elapsed = t0.elapsed();
        match frame::decode_reply(&reply_frame) {
            Ok(frame::WireReply::Ok { id: got, resp }) if got == id => {
                tally.completed += 1;
                tally.digest = tally
                    .digest
                    .wrapping_add(fnv1a(&protocol::format_ok(Some(&id), &resp)));
                latencies.push(elapsed);
            }
            Ok(frame::WireReply::Seeds {
                id: got,
                seeds,
                resp,
            }) if got == id => {
                let expect = seeds_mode.as_ref().map_or(0, |m| m.seeds_per_request);
                if resp.results.len() == expect {
                    tally.completed += 1;
                    // Digest the SEED payload lines only, exactly like the
                    // text client: header subgraph sizes legitimately vary.
                    let mut request_digest = 0u64;
                    for line in protocol::format_seeds_ok(Some(&id), &seeds, &resp)
                        .iter()
                        .skip(1)
                    {
                        request_digest = request_digest.wrapping_add(fnv1a(&format!("{id} {line}")));
                    }
                    tally.digest = tally.digest.wrapping_add(request_digest);
                    latencies.push(elapsed);
                } else {
                    tally.mismatched += 1;
                }
            }
            Ok(frame::WireReply::Err { id: got, code, .. }) if got == id => {
                tally_err(&code, &mut tally);
            }
            _ => tally.mismatched += 1,
        }
    }
    Ok((tally, latencies))
}

fn bench_client(
    addr: &str,
    model: &str,
    client: usize,
    n: usize,
    vertices: usize,
    seeds_mode: Option<SeedsMode>,
) -> std::io::Result<(RunTally, Vec<Duration>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut tally = RunTally::default();
    let mut latencies = Vec::with_capacity(n);
    let mut line = String::new();
    for i in 0..n {
        let id = format!("c{client}-r{i}");
        let t0 = Instant::now();
        if let Some(mode) = &seeds_mode {
            let seeds: Vec<String> = (0..mode.seeds_per_request)
                .map(|j| popular_vertex(client, i, j, vertices).to_string())
                .collect();
            let fanout = mode
                .fanout
                .as_deref()
                .map_or(String::new(), |f| format!(" fanout={f}"));
            // Feature-heavy workload: every scalar crosses the wire as
            // ASCII and is re-parsed server-side — the baseline the binary
            // protocol removes.
            let feats = if mode.feat_cols > 0 {
                let rows: Vec<String> = (0..mode.seeds_per_request)
                    .map(|r| {
                        (0..mode.feat_cols)
                            .map(|c| feat_value(client, i, r, c).to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                format!(" feats={}", rows.join(";"))
            } else {
                String::new()
            };
            // Fresh sampler seed per request: every request samples a
            // different subgraph, exercising the shape-bucketed plan keys.
            let sample_seed = mode.sample_seed.wrapping_add(bench_hash(client, i, 99));
            writeln!(
                writer,
                "INFER_SEEDS {model} {}{fanout}{feats} sample_seed={sample_seed} id={id}",
                seeds.join(",")
            )?;
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                tally.lost += (n - i) as u64;
                break;
            }
            if let Ok(header) = protocol::parse_seeds_header(line.trim_end()) {
                let mut payload_ok = header.id == id;
                // Digest the SEED payload lines only: the header's
                // subgraph-size fields legitimately differ between sharded
                // and single-worker servers, the per-seed logits must not.
                let mut request_digest = 0u64;
                for _ in 0..header.count {
                    line.clear();
                    if reader.read_line(&mut line)? == 0 {
                        payload_ok = false;
                        break;
                    }
                    if protocol::parse_seed_line(line.trim_end()).is_err() {
                        payload_ok = false;
                    }
                    request_digest =
                        request_digest.wrapping_add(fnv1a(&format!("{id} {}", line.trim_end())));
                }
                let elapsed = t0.elapsed();
                if payload_ok && header.count == mode.seeds_per_request {
                    tally.completed += 1;
                    tally.digest = tally.digest.wrapping_add(request_digest);
                    latencies.push(elapsed);
                } else {
                    tally.mismatched += 1;
                }
            } else {
                match protocol::parse_reply(line.trim_end()) {
                    Ok(protocol::Reply::Err { id: got, code }) if got == id => {
                        match code.as_str() {
                            "overloaded" => tally.shed += 1,
                            "over-memory-budget" => tally.mem_shed += 1,
                            "timeout" => tally.timed_out += 1,
                            _ => tally.other_err += 1,
                        }
                    }
                    _ => tally.mismatched += 1,
                }
            }
            continue;
        }
        // Deterministic pseudo-random node pick, distinct stream per client.
        let node = (client
            .wrapping_mul(2654435761)
            .wrapping_add(i.wrapping_mul(40503)))
            % vertices;
        writeln!(writer, "INFER {model} {node} id={id}")?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            tally.lost += (n - i) as u64;
            break;
        }
        let elapsed = t0.elapsed();
        match protocol::parse_reply(line.trim_end()) {
            Ok(protocol::Reply::Ok { id: got, .. }) if got == id => {
                tally.completed += 1;
                tally.digest = tally.digest.wrapping_add(fnv1a(line.trim_end()));
                latencies.push(elapsed);
            }
            Ok(protocol::Reply::Err { id: got, code }) if got == id => match code.as_str() {
                "overloaded" => tally.shed += 1,
                "over-memory-budget" => tally.mem_shed += 1,
                "timeout" => tally.timed_out += 1,
                _ => tally.other_err += 1,
            },
            _ => tally.mismatched += 1,
        }
    }
    Ok((tally, latencies))
}

fn fetch_stats(addr: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "STATS").ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    Some(line.trim_end().to_string())
}

/// Pull `key=<u64>` out of a STATS line.
fn stats_field(stats: &str, key: &str) -> Option<u64> {
    stats
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// Pull `key=<f64>` out of a STATS line.
fn stats_field_f64(stats: &str, key: &str) -> Option<f64> {
    stats
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// Scrape one `METRICS` exposition: send the command, read until the
/// OpenMetrics `# EOF` terminator line.
fn fetch_metrics(addr: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "METRICS").ok()?;
    let mut text = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).ok()? == 0 {
            return None; // connection dropped before the terminator
        }
        text.push_str(&line);
        if line.trim_end() == "# EOF" {
            return Some(text);
        }
    }
}

/// Per-phase quantile table plus the p99 attribution line, computed from a
/// scraped exposition. Returns the lines to print (empty when no phase has
/// samples).
fn phase_report(samples: &[metrics::Sample]) -> Vec<String> {
    let lookup = |series: &str| -> Option<f64> {
        samples.iter().find(|s| s.series == series).map(|s| s.value)
    };
    let phases = [
        "queue_wait",
        "batch_form",
        "sample",
        "plan_compile",
        "execute",
        "exchange",
        "serialize",
    ];
    let mut rows = Vec::new();
    let mut p99s: Vec<(&str, f64)> = Vec::new();
    for phase in phases {
        let q = |q: &str| {
            lookup(&format!(
                "fgserve_phase_latency_ms{{phase=\"{phase}\",quantile=\"{q}\"}}"
            ))
        };
        let count = lookup(&format!(
            "fgserve_phase_latency_ms_count{{phase=\"{phase}\"}}"
        ))
        .unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        let (p50, p95, p99) = (
            q("0.5").unwrap_or(0.0),
            q("0.95").unwrap_or(0.0),
            q("0.99").unwrap_or(0.0),
        );
        rows.push(format!(
            "    {phase:<13} p50 {p50:>8.3}  p95 {p95:>8.3}  p99 {p99:>8.3}  (n={count})"
        ));
        p99s.push((phase, p99));
    }
    if rows.is_empty() {
        return rows;
    }
    let total: f64 = p99s.iter().map(|&(_, v)| v).sum();
    if total > 0.0 {
        p99s.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let attribution: Vec<String> = p99s
            .iter()
            .map(|(phase, v)| format!("{phase} {:.0}%", v / total * 100.0))
            .collect();
        rows.push(format!("  p99 attribution: {}", attribution.join("  ")));
    }
    rows.insert(0, "  phase latency ms:".into());
    rows
}

fn cmd_metrics(o: &Opts) -> ExitCode {
    let Some(addr) = o.addr.as_deref() else {
        eprintln!("fgserve metrics: --addr is required");
        return ExitCode::FAILURE;
    };
    let Some(text) = fetch_metrics(addr) else {
        eprintln!("fgserve metrics: failed to scrape METRICS from {addr}");
        return ExitCode::FAILURE;
    };
    let samples = match metrics::parse_exposition(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fgserve metrics: exposition does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fgserve metrics: {} samples from {addr}",
        samples.len()
    );
    let mut failures = Vec::new();
    for series in &o.require {
        let hit = samples
            .iter()
            .find(|s| s.series.starts_with(series.as_str()) && s.value != 0.0);
        match hit {
            Some(s) => println!("  require {series}: {} = {}", s.series, s.value),
            None => failures.push(format!(
                "no nonzero sample matching required series {series:?}"
            )),
        }
    }
    for line in phase_report(&samples) {
        println!("{line}");
    }
    if failures.is_empty() {
        println!("fgserve metrics: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fgserve metrics: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_bench(o: &Opts) -> ExitCode {
    // Embedded server unless --addr points at a running one.
    let embedded = if o.addr.is_none() {
        let engine = build_engine(o);
        match fg_serve::serve(engine, "127.0.0.1:0") {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("fgserve bench: embedded bind: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match &embedded {
        Some(h) => h.addr().to_string(),
        None => o.addr.clone().unwrap(),
    };
    let model = o.models[0].clone();
    let mut failures: Vec<String> = Vec::new();
    let mut total_shed = 0u64;
    let mut total_mem_shed = 0u64;

    for run in 1..=o.runs.max(1) {
        let per_client = o.requests / o.clients.max(1);
        let remainder = o.requests % o.clients.max(1);
        let t0 = Instant::now();
        let seeds_mode = (o.seeds_per_request > 0).then(|| SeedsMode {
            seeds_per_request: o.seeds_per_request,
            fanout: o.fanout.clone(),
            sample_seed: o.sample_seed,
            feat_cols: o.feat_cols,
        });
        let protocol = o.protocol;
        let handles: Vec<_> = (0..o.clients.max(1))
            .map(|c| {
                let addr = addr.clone();
                let model = model.clone();
                let n = per_client + usize::from(c < remainder);
                let vertices = o.vertices;
                let seeds_mode = seeds_mode.clone();
                let binary = match protocol {
                    WireProto::Text => false,
                    WireProto::Binary => true,
                    // Mixed: even-numbered clients speak binary, odd text —
                    // both protocols active on the same server at once.
                    WireProto::Mixed => c % 2 == 0,
                };
                std::thread::spawn(move || {
                    if binary {
                        bench_client_binary(&addr, &model, c, n, vertices, seeds_mode)
                    } else {
                        bench_client(&addr, &model, c, n, vertices, seeds_mode)
                    }
                })
            })
            .collect();
        let mut tally = RunTally::default();
        let recorder = LatencyRecorder::new();
        for h in handles {
            match h.join().expect("bench client panicked") {
                Ok((t, lat)) => {
                    tally.completed += t.completed;
                    tally.shed += t.shed;
                    tally.mem_shed += t.mem_shed;
                    tally.timed_out += t.timed_out;
                    tally.other_err += t.other_err;
                    tally.mismatched += t.mismatched;
                    tally.lost += t.lost;
                    tally.digest = tally.digest.wrapping_add(t.digest);
                    for d in lat {
                        recorder.record(d);
                    }
                }
                Err(e) => failures.push(format!("run {run}: client I/O error: {e}")),
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        let answered = tally.completed
            + tally.shed
            + tally.mem_shed
            + tally.timed_out
            + tally.other_err
            + tally.mismatched;
        tally.lost = (o.requests as u64).saturating_sub(answered);
        let lat = recorder.snapshot();
        println!(
            "fgserve bench run {run}/{}: {} clients x {} requests -> {addr} (model {model})",
            o.runs.max(1),
            o.clients.max(1),
            o.requests
        );
        println!(
            "  completed {}/{}  shed {}  mem_shed {}  timeout {}  failed {}  mismatched {}  lost {}",
            tally.completed, o.requests, tally.shed, tally.mem_shed, tally.timed_out,
            tally.other_err, tally.mismatched, tally.lost
        );
        println!(
            "  wall {wall:.3} s   throughput {:.1} req/s",
            tally.completed as f64 / wall
        );
        println!("  reply digest {:#018x}", tally.digest);
        println!(
            "  latency ms  p50 {:.2}  p95 {:.2}  p99 {:.2}  mean {:.2}  max {:.2}",
            lat.p50_ms, lat.p95_ms, lat.p99_ms, lat.mean_ms, lat.max_ms
        );
        let stats = fetch_stats(&addr);
        if let Some(stats) = &stats {
            println!("  server {stats}");
            // Queue/batch observability (fed by the batcher's observer).
            let depth_max = stats_field(stats, "queue_depth_max").unwrap_or(0);
            let batch_p50 = stats_field_f64(stats, "batch_p50").unwrap_or(0.0);
            let batch_max = stats_field_f64(stats, "batch_max").unwrap_or(0.0);
            println!(
                "  queue depth max {depth_max}   batch size p50 {batch_p50:.1} max {batch_max:.1}"
            );
        }
        if let Some(text) = fetch_metrics(&addr) {
            if let Ok(samples) = metrics::parse_exposition(&text) {
                for line in phase_report(&samples) {
                    println!("{line}");
                }
            }
        }
        total_shed += tally.shed;
        total_mem_shed += tally.mem_shed;

        if tally.lost > 0 || tally.mismatched > 0 {
            failures.push(format!(
                "run {run}: {} lost / {} mismatched responses",
                tally.lost, tally.mismatched
            ));
        }
        if o.expect_no_shed && tally.shed > 0 {
            failures.push(format!("run {run}: expected zero sheds, saw {}", tally.shed));
        }
        if o.expect_plan_hits && run == o.runs.max(1) {
            let hits = stats.as_deref().and_then(|s| stats_field(s, "plan_hits"));
            match hits {
                Some(h) if h > 0 => {}
                other => failures.push(format!(
                    "expected plan-cache hits > 0 on final run, got {other:?}"
                )),
            }
        }
    }
    if o.expect_shed && total_shed == 0 {
        failures.push("expected overload sheds, saw none".into());
    }
    if o.expect_mem_shed && total_mem_shed == 0 {
        failures.push("expected over-memory-budget sheds, saw none".into());
    }
    if let Some(h) = embedded {
        h.shutdown();
    }
    if failures.is_empty() {
        println!("fgserve bench: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fgserve bench: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fgserve: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "serve" => cmd_serve(&opts),
        "bench" => cmd_bench(&opts),
        "metrics" => cmd_metrics(&opts),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
