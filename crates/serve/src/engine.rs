//! The serving engine: admission control, request coalescing, a worker
//! pool executing batched full-graph inference, and the compiled-plan
//! cache.
//!
//! Data path: [`Engine::submit`] validates a request, stamps its deadline,
//! and pushes it into the bounded [`Batcher`]; when the queue is full the
//! request is **shed** with [`ServeError::Overloaded`] instead of blocking
//! the caller. Worker threads pull deadline-or-size batches, drop entries
//! whose deadline already passed ([`ServeError::Timeout`]), group the rest
//! by model, and answer each group with **one** full-graph forward pass via
//! [`fg_gnn::infer_batch`] — so the forward cost amortizes over the whole
//! batch. The [`PlanCache`] keyed by `(graph id, model, options)` keeps the
//! compiled kernel plans alive across batches: every batch after the first
//! is a plan-cache hit and skips kernel compilation entirely.
//!
//! Shutdown is graceful: [`Engine::shutdown`] closes the batcher (new
//! submits fail with [`ServeError::ShuttingDown`]), lets workers drain the
//! queue, and joins them. Dropping the engine does the same.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fg_gnn::models::Model;
use fg_gnn::{infer_batch, FeatgraphBackend, GnnGraph};
use fg_telemetry::{
    counter_add, emit_span, span, timestamp_ns, Counter, MemCharge, MemComponent, MemScope,
    TraceContext, TraceSampler, TraceScope,
};
use fg_tensor::Dense2;

use crate::batcher::{Batcher, BatcherConfig, PushError};
use crate::oneshot::Oneshot;
use crate::plan_cache::{PlanCache, PlanKey};
use crate::stats::{Phase, ServeStats, SlowEntry, SlowLog, StatsSnapshot};

/// Slow-request log retention (newest entries win).
const SLOW_LOG_CAPACITY: usize = 128;

/// Engine configuration. Defaults suit an interactive low-latency setup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dispatch a batch once this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest request waited this long.
    pub max_delay: Duration,
    /// Admission queue bound; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Kernel threads per compiled backend.
    pub kernel_threads: usize,
    /// Default per-request deadline when the request carries none;
    /// `None` disables timeouts.
    pub default_deadline: Option<Duration>,
    /// Artificial extra latency per batch execution — overload/timeout
    /// testing knob, zero in production.
    pub exec_delay: Duration,
    /// Head-sample 1 in N requests for end-to-end tracing (`0` disables
    /// sampling; `1` traces everything). Sampled requests carry their trace
    /// id through every `fg-telemetry` span they touch.
    pub trace_sample: u64,
    /// Slow-request threshold: completed requests whose serve-side latency
    /// meets or exceeds this many milliseconds get a phase breakdown in the
    /// slow log. `None` disables the log.
    pub slow_ms: Option<f64>,
    /// Byte bound on the compiled-plan cache; least-recently-used entries
    /// are evicted once the summed plan cost exceeds it. `0` = unbounded.
    pub plan_cache_bytes: u64,
    /// Whole-process accounted-memory budget: while the accountant's
    /// tracked total exceeds this, new requests are shed with
    /// [`ServeError::OverMemoryBudget`] instead of allocating. `0` =
    /// unlimited. Requires memory accounting to be compiled in (the
    /// `fg-telemetry/enabled` feature); with accounting compiled out the
    /// tracked total reads 0 and the gate never trips.
    pub mem_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            kernel_threads: 1,
            default_deadline: Some(Duration::from_millis(500)),
            exec_delay: Duration::ZERO,
            trace_sample: 0,
            slow_ms: None,
            plan_cache_bytes: 0,
            mem_budget: 0,
        }
    }
}

/// Typed serving failure, surfaced on the wire as `ERR <id> <code>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission queue full; request shed without queueing.
    Overloaded,
    /// Accounted memory exceeds [`ServeConfig::mem_budget`]; request shed
    /// before allocating anything.
    OverMemoryBudget,
    /// Deadline expired before the request executed.
    Timeout,
    /// No model registered under that name.
    UnknownModel(String),
    /// Request invalid for the target model (e.g. node out of range).
    BadRequest(String),
    /// Engine is draining; no new work accepted.
    ShuttingDown,
    /// Inference itself failed.
    Infer(String),
}

impl ServeError {
    /// Stable machine-readable code used in the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::OverMemoryBudget => "over-memory-budget",
            ServeError::Timeout => "timeout",
            ServeError::UnknownModel(_) => "unknown-model",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Infer(_) => "infer-failed",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full, request shed"),
            ServeError::OverMemoryBudget => {
                write!(f, "accounted memory over budget, request shed")
            }
            ServeError::Timeout => write!(f, "deadline expired before execution"),
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "engine shutting down"),
            ServeError::Infer(msg) => write!(f, "inference failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A single-node inference request.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// Registered model name.
    pub model: String,
    /// Node whose logits are wanted.
    pub node: usize,
    /// Per-request deadline; falls back to
    /// [`ServeConfig::default_deadline`] when `None`.
    pub deadline: Option<Duration>,
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Predicted class (argmax over logits).
    pub class: usize,
    /// Raw logits row for the requested node.
    pub logits: Vec<f32>,
}

struct Job {
    req: InferRequest,
    accepted: Instant,
    /// Wall-clock accept timestamp on the telemetry clock (0 when telemetry
    /// is disabled) — lets the worker emit the cross-thread queue-wait span.
    accept_ns: u64,
    deadline: Option<Instant>,
    trace: TraceContext,
    reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
}

/// Handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
/// Every admitted request is guaranteed a reply — workers answer dequeued
/// jobs unconditionally and shutdown drains the queue first.
pub struct Ticket {
    reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
}

impl Ticket {
    /// Block until the worker pool answers.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.reply.recv()
    }
}

/// One servable model: the graph it runs on, its input features, and the
/// trained (or initialized) parameters.
pub struct ModelEntry {
    graph_id: u64,
    graph: GnnGraph,
    features: Dense2<f32>,
    model: Box<dyn Model>,
    /// Accounting guard for the `Vec`-backed graph topology (the tensor
    /// accountant only sees aligned buffers); credited when the entry drops
    /// — replacement, unregistration, or engine shutdown alike.
    _graph_charge: MemCharge,
}

struct Shared {
    cfg: ServeConfig,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    batcher: Batcher<Job>,
    plans: PlanCache,
    stats: Arc<ServeStats>,
    sampler: TraceSampler,
    slow_log: SlowLog,
    next_graph_id: AtomicU64,
}

/// See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Start an engine with `cfg.workers` batch-execution threads.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.workers.max(1);
        let plan_cache_bytes = cfg.plan_cache_bytes;
        let stats = Arc::new(ServeStats::default());
        let shared = Arc::new(Shared {
            batcher: Batcher::with_observer(
                BatcherConfig {
                    capacity: cfg.queue_capacity,
                    max_batch: cfg.max_batch,
                    max_delay: cfg.max_delay,
                },
                Arc::clone(&stats) as _,
            ),
            sampler: TraceSampler::new(cfg.trace_sample),
            slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
            cfg,
            models: RwLock::new(HashMap::new()),
            plans: PlanCache::bounded(plan_cache_bytes),
            stats,
            next_graph_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgserve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Register `model` under `name`, replacing any previous registration.
    /// Returns the graph ID assigned to this registration (part of the
    /// plan-cache key).
    pub fn register_model(
        &self,
        name: &str,
        model: Box<dyn Model>,
        graph: GnnGraph,
        features: Dense2<f32>,
    ) -> u64 {
        let graph_id = self.shared.next_graph_id.fetch_add(1, Ordering::Relaxed);
        let graph_charge = MemCharge::new(MemComponent::GraphTopology, graph.mem_bytes());
        let entry = Arc::new(ModelEntry {
            graph_id,
            graph,
            features,
            model,
            _graph_charge: graph_charge,
        });
        let replaced = self
            .shared
            .models
            .write()
            .unwrap()
            .insert(name.to_string(), entry);
        if let Some(old) = replaced {
            // Surface what used to be a silent drop: the old entry's graph,
            // features, and parameters are released (once in-flight batches
            // holding its Arc finish).
            self.shared
                .stats
                .models_replaced
                .fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "fgserve: model {name:?} replaced (old graph id {}, new graph id {graph_id}); \
                 previous entry released",
                old.graph_id
            );
        }
        graph_id
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.shared.models.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Mint a [`TraceContext`] for one incoming request, honoring the
    /// configured 1-in-N sampling rate. Front-ends that want their own
    /// accept-side span to share the request's trace id call this before
    /// [`submit_traced`](Self::submit_traced); [`submit`](Self::submit)
    /// mints internally.
    pub fn mint_trace(&self) -> TraceContext {
        self.shared.sampler.mint()
    }

    /// Admit a request. Fails fast (without queueing) on unknown model,
    /// out-of-range node, full queue, or shutdown.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        let trace = self.mint_trace();
        self.submit_traced(req, trace)
    }

    /// [`submit`](Self::submit) with a caller-minted [`TraceContext`]
    /// (from [`mint_trace`](Self::mint_trace)) so front-end spans and
    /// worker-side spans land in the same trace tree.
    pub fn submit_traced(
        &self,
        req: InferRequest,
        trace: TraceContext,
    ) -> Result<Ticket, ServeError> {
        counter_add(Counter::ServeRequests, 1);
        // Memory-budget admission gate: shed before this request allocates
        // anything (no job, no oneshot, no queue slot) while the accounted
        // footprint is over budget.
        let budget = self.shared.cfg.mem_budget;
        if budget > 0 && fg_telemetry::mem_total_current() > budget {
            counter_add(Counter::ServeMemShed, 1);
            self.shared.stats.mem_shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::OverMemoryBudget);
        }
        let entry = self
            .shared
            .models
            .read()
            .unwrap()
            .get(&req.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let vertices = entry.graph.num_vertices();
        if req.node >= vertices {
            return Err(ServeError::BadRequest(format!(
                "node {} out of range (graph has {vertices} vertices)",
                req.node
            )));
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let reply = Arc::new(Oneshot::new());
        let job = Job {
            req,
            accepted: now,
            accept_ns: if trace.sampled { timestamp_ns() } else { 0 },
            deadline,
            trace,
            reply: Arc::clone(&reply),
        };
        match self.shared.batcher.push(job) {
            Ok(()) => {
                self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { reply })
            }
            Err(PushError::Overloaded(_)) => {
                counter_add(Counter::ServeShed, 1);
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience: [`submit`](Self::submit) then block for the reply.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Record one serialize-phase sample. The engine never sees reply
    /// serialization (it happens on the front-end's connection thread), so
    /// the front-end feeds the phase recorder through this.
    pub fn record_serialize(&self, dur: Duration) {
        self.shared.stats.record_phase(Phase::Serialize, dur);
    }

    /// Retained slow-request entries, oldest first, capped at `limit`
    /// newest when given. Empty unless [`ServeConfig::slow_ms`] is set.
    pub fn slow_requests(&self, limit: Option<usize>) -> Vec<SlowEntry> {
        self.shared.slow_log.entries(limit)
    }

    /// Slow requests ever logged (including entries since evicted).
    pub fn slow_total(&self) -> u64 {
        self.shared.slow_log.total()
    }

    /// Full Prometheus-style text exposition: the engine's always-on serve
    /// series, the memory-accounting series, plus (when compiled in and
    /// enabled) the process-wide `fg-telemetry` registry, terminated by
    /// `# EOF`.
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.stats(), &self.memory_report())
    }

    /// Compiled-plan cache entries currently held.
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plans.len()
    }

    /// Point-in-time memory breakdown backing the `MEMORY` wire command and
    /// the `fgserve_mem_*` metric series.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            components: fg_telemetry::mem_snapshot(),
            total_current: fg_telemetry::mem_total_current(),
            total_peak: fg_telemetry::mem_total_peak(),
            plan_cache_entries: self.shared.plans.len() as u64,
            plan_cache_bytes: self.shared.plans.total_bytes(),
            plan_cache_capacity: self.shared.plans.capacity(),
            plan_cache_evictions: self.shared.plans.evictions(),
            mem_budget: self.shared.cfg.mem_budget,
            mem_shed: self.shared.stats.mem_shed.load(Ordering::Relaxed),
            models_registered: self.shared.models.read().unwrap().len() as u64,
            models_replaced: self.shared.stats.models_replaced.load(Ordering::Relaxed),
            rss: fg_telemetry::read_rss(),
        }
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.batcher.close();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Whole-process memory breakdown: per-component accounted watermarks,
/// plan-cache occupancy, admission-gate state, and the OS resident-set
/// cross-check. Produced by [`Engine::memory_report`], rendered by the
/// `MEMORY` wire command and the `fgserve_mem_*` metric series.
#[derive(Debug, Clone)]
pub struct MemoryReport {
    /// Current/peak accounted bytes per component, in
    /// [`MemComponent::ALL`] order (all zeros with accounting compiled out).
    pub components: Vec<fg_telemetry::MemComponentSnapshot>,
    /// Accounted bytes currently live across every component.
    pub total_current: u64,
    /// High-water mark of `total_current`.
    pub total_peak: u64,
    /// Compiled-plan cache entries currently held.
    pub plan_cache_entries: u64,
    /// Summed plan cost of the cached entries in bytes.
    pub plan_cache_bytes: u64,
    /// Plan-cache byte bound (`0` = unbounded).
    pub plan_cache_capacity: u64,
    /// Plan-cache entries evicted to stay under the bound.
    pub plan_cache_evictions: u64,
    /// Admission-gate budget in bytes (`0` = unlimited).
    pub mem_budget: u64,
    /// Requests shed by the memory-budget gate.
    pub mem_shed: u64,
    /// Models currently registered.
    pub models_registered: u64,
    /// Registrations that replaced (and released) a previous entry.
    pub models_replaced: u64,
    /// OS resident-set reading (`None` off Linux).
    pub rss: Option<fg_telemetry::RssReading>,
}

impl MemoryReport {
    /// Render as `key=value ...` payload lines for the `MEMORY` wire reply:
    /// one `component=<name> current=<b> peak=<b>` line per component, then
    /// one `total` summary line, one `plan_cache` line, and (on Linux) one
    /// `rss` line.
    pub fn to_wire_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .components
            .iter()
            .map(|c| {
                format!(
                    "component={} current={} peak={}",
                    c.component.name(),
                    c.current,
                    c.peak
                )
            })
            .collect();
        lines.push(format!(
            "total current={} peak={} budget={} mem_shed={} models_registered={} \
             models_replaced={}",
            self.total_current,
            self.total_peak,
            self.mem_budget,
            self.mem_shed,
            self.models_registered,
            self.models_replaced,
        ));
        lines.push(format!(
            "plan_cache entries={} bytes={} capacity={} evictions={}",
            self.plan_cache_entries,
            self.plan_cache_bytes,
            self.plan_cache_capacity,
            self.plan_cache_evictions,
        ));
        if let Some(rss) = self.rss {
            lines.push(format!(
                "rss current={} peak={}",
                rss.current_bytes, rss.peak_bytes
            ));
        }
        lines
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(jobs) = shared.batcher.next_batch() {
        execute_batch(&shared, jobs);
    }
}

fn execute_batch(shared: &Shared, jobs: Vec<Job>) {
    let pulled = Instant::now();
    let pulled_ns = timestamp_ns();
    // A batch may mix jobs from several traces; parent the batch span under
    // the first sampled one so at least one trace tree shows batch context.
    let batch_trace = jobs
        .iter()
        .find(|j| j.trace.sampled)
        .map_or(TraceContext::NONE, |j| j.trace);
    let _batch_scope = TraceScope::enter(batch_trace);
    let _span = span!("serve/batch", "jobs={}", jobs.len());
    counter_add(Counter::ServeBatches, 1);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    // Queue wait elapsed on another thread; emit it as an externally-timed
    // span per sampled job so the trace tree covers accept → pull.
    for job in &jobs {
        if job.trace.sampled && job.accept_ns != 0 && pulled_ns > job.accept_ns {
            emit_span(
                "serve/queue_wait",
                Some(format!("node={}", job.req.node)),
                job.accept_ns,
                pulled_ns - job.accept_ns,
                job.trace.trace_id,
            );
        }
    }
    if !shared.cfg.exec_delay.is_zero() {
        std::thread::sleep(shared.cfg.exec_delay);
    }

    // Expire jobs whose deadline passed while they queued.
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        counter_add(Counter::ServeTimeouts, 1);
        shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
        job.reply.send(Err(ServeError::Timeout));
    }

    // Group by model so each group is one forward pass.
    let mut groups: HashMap<String, Vec<Job>> = HashMap::new();
    for job in live {
        groups.entry(job.req.model.clone()).or_default().push(job);
    }
    for (model_name, group) in groups {
        let group_start = Instant::now();
        // Phase accounting sees the group through this batch's clock:
        // batch_form covers pull → this group's start (deadline filtering,
        // grouping, earlier groups in the same batch).
        let batch_form = group_start.duration_since(pulled);
        let group_trace = group
            .iter()
            .find(|j| j.trace.sampled)
            .map_or(TraceContext::NONE, |j| j.trace);
        let _group_scope = TraceScope::enter(group_trace);
        let entry = shared.models.read().unwrap().get(&model_name).cloned();
        let Some(entry) = entry else {
            // Model was unregistered between submit and execution.
            for job in group {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(ServeError::UnknownModel(model_name.clone())));
            }
            continue;
        };
        let key = PlanKey::cpu(entry.graph_id, &model_name, shared.cfg.kernel_threads);
        let mut compile = Duration::ZERO;
        let (backend, hit) = shared.plans.get_or_insert(&key, || {
            let _compile_span = span!("serve/plan_compile", "model={model_name}");
            let t0 = Instant::now();
            let backend = FeatgraphBackend::cpu(shared.cfg.kernel_threads);
            compile = t0.elapsed();
            backend
        });
        let slot = if hit {
            &shared.stats.plan_hits
        } else {
            &shared.stats.plan_misses
        };
        slot.fetch_add(1, Ordering::Relaxed);

        let nodes: Vec<usize> = group.iter().map(|j| j.req.node).collect();
        let exec_start = Instant::now();
        let result = {
            let _infer_span = span!("serve/infer", "model={model_name} nodes={}", nodes.len());
            // Attribute the batch's tape/scratch allocations to the serve path.
            let _mem = MemScope::enter(MemComponent::ServeBatch);
            infer_batch(
                entry.model.as_ref(),
                &entry.graph,
                &entry.features,
                backend.as_ref(),
                &nodes,
            )
        };
        let execute = exec_start.elapsed();
        // Plans compile lazily per feature dim, so re-report the backend's
        // plan bytes after every batch; this also drives LRU eviction.
        shared.plans.note_cost(&key, backend.plan_mem_bytes());
        match result {
            Ok(rows) => {
                for (job, logits) in group.into_iter().zip(rows) {
                    let class = logits
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map_or(0, |(i, _)| i);
                    let total = job.accepted.elapsed();
                    // Every job in the group waited through the whole
                    // compile and forward pass, so each gets the full
                    // durations: per-request phases then sum to its own
                    // end-to-end latency.
                    let queue_wait = pulled.duration_since(job.accepted);
                    shared.stats.record_phase(Phase::QueueWait, queue_wait);
                    shared.stats.record_phase(Phase::BatchForm, batch_form);
                    shared.stats.record_phase(Phase::PlanCompile, compile);
                    shared.stats.record_phase(Phase::Execute, execute);
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.latency.record(total);
                    let total_ms = total.as_secs_f64() * 1e3;
                    if shared.cfg.slow_ms.is_some_and(|t| total_ms >= t) {
                        shared.slow_log.push(SlowEntry {
                            seq: 0,
                            trace_id: job.trace.trace_id,
                            sampled: job.trace.sampled,
                            model: model_name.clone(),
                            node: job.req.node,
                            total_ms,
                            queue_ms: queue_wait.as_secs_f64() * 1e3,
                            batch_ms: batch_form.as_secs_f64() * 1e3,
                            compile_ms: compile.as_secs_f64() * 1e3,
                            execute_ms: execute.as_secs_f64() * 1e3,
                        });
                    }
                    job.reply.send(Ok(InferResponse { class, logits }));
                }
            }
            Err(err) => {
                let msg = err.to_string();
                for job in group {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    job.reply.send(Err(ServeError::Infer(msg.clone())));
                }
            }
        }
    }
}
