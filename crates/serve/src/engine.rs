//! The serving engine: admission control, request coalescing, a worker
//! pool executing batched full-graph inference, and the compiled-plan
//! cache.
//!
//! Data path: [`Engine::submit`] validates a request, stamps its deadline,
//! and pushes it into the bounded [`Batcher`]; when the queue is full the
//! request is **shed** with [`ServeError::Overloaded`] instead of blocking
//! the caller. Worker threads pull deadline-or-size batches, drop entries
//! whose deadline already passed ([`ServeError::Timeout`]), group the rest
//! by model, and answer each group with **one** full-graph forward pass via
//! [`fg_gnn::infer_batch`] — so the forward cost amortizes over the whole
//! batch. The [`PlanCache`] keyed by `(graph id, model, options)` keeps the
//! compiled kernel plans alive across batches: every batch after the first
//! is a plan-cache hit and skips kernel compilation entirely.
//!
//! Shutdown is graceful: [`Engine::shutdown`] closes the batcher (new
//! submits fail with [`ServeError::ShuttingDown`]), lets workers drain the
//! queue, and joins them. Dropping the engine does the same.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fg_gnn::models::Model;
use fg_gnn::{infer_batch, FeatgraphBackend, GnnGraph};
use fg_telemetry::{counter_add, histogram_record, span, Counter, Histogram};
use fg_tensor::Dense2;

use crate::batcher::{Batcher, BatcherConfig, PushError};
use crate::oneshot::Oneshot;
use crate::plan_cache::{PlanCache, PlanKey};
use crate::stats::{ServeStats, StatsSnapshot};

/// Engine configuration. Defaults suit an interactive low-latency setup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dispatch a batch once this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest request waited this long.
    pub max_delay: Duration,
    /// Admission queue bound; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Kernel threads per compiled backend.
    pub kernel_threads: usize,
    /// Default per-request deadline when the request carries none;
    /// `None` disables timeouts.
    pub default_deadline: Option<Duration>,
    /// Artificial extra latency per batch execution — overload/timeout
    /// testing knob, zero in production.
    pub exec_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            kernel_threads: 1,
            default_deadline: Some(Duration::from_millis(500)),
            exec_delay: Duration::ZERO,
        }
    }
}

/// Typed serving failure, surfaced on the wire as `ERR <id> <code>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission queue full; request shed without queueing.
    Overloaded,
    /// Deadline expired before the request executed.
    Timeout,
    /// No model registered under that name.
    UnknownModel(String),
    /// Request invalid for the target model (e.g. node out of range).
    BadRequest(String),
    /// Engine is draining; no new work accepted.
    ShuttingDown,
    /// Inference itself failed.
    Infer(String),
}

impl ServeError {
    /// Stable machine-readable code used in the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::Timeout => "timeout",
            ServeError::UnknownModel(_) => "unknown-model",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Infer(_) => "infer-failed",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full, request shed"),
            ServeError::Timeout => write!(f, "deadline expired before execution"),
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "engine shutting down"),
            ServeError::Infer(msg) => write!(f, "inference failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A single-node inference request.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// Registered model name.
    pub model: String,
    /// Node whose logits are wanted.
    pub node: usize,
    /// Per-request deadline; falls back to
    /// [`ServeConfig::default_deadline`] when `None`.
    pub deadline: Option<Duration>,
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Predicted class (argmax over logits).
    pub class: usize,
    /// Raw logits row for the requested node.
    pub logits: Vec<f32>,
}

struct Job {
    req: InferRequest,
    accepted: Instant,
    deadline: Option<Instant>,
    reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
}

/// Handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
/// Every admitted request is guaranteed a reply — workers answer dequeued
/// jobs unconditionally and shutdown drains the queue first.
pub struct Ticket {
    reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
}

impl Ticket {
    /// Block until the worker pool answers.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.reply.recv()
    }
}

/// One servable model: the graph it runs on, its input features, and the
/// trained (or initialized) parameters.
pub struct ModelEntry {
    graph_id: u64,
    graph: GnnGraph,
    features: Dense2<f32>,
    model: Box<dyn Model>,
}

struct Shared {
    cfg: ServeConfig,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    batcher: Batcher<Job>,
    plans: PlanCache,
    stats: ServeStats,
    next_graph_id: AtomicU64,
}

/// See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Start an engine with `cfg.workers` batch-execution threads.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            batcher: Batcher::new(BatcherConfig {
                capacity: cfg.queue_capacity,
                max_batch: cfg.max_batch,
                max_delay: cfg.max_delay,
            }),
            cfg,
            models: RwLock::new(HashMap::new()),
            plans: PlanCache::new(),
            stats: ServeStats::default(),
            next_graph_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgserve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Register `model` under `name`, replacing any previous registration.
    /// Returns the graph ID assigned to this registration (part of the
    /// plan-cache key).
    pub fn register_model(
        &self,
        name: &str,
        model: Box<dyn Model>,
        graph: GnnGraph,
        features: Dense2<f32>,
    ) -> u64 {
        let graph_id = self.shared.next_graph_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(ModelEntry {
            graph_id,
            graph,
            features,
            model,
        });
        self.shared
            .models
            .write()
            .unwrap()
            .insert(name.to_string(), entry);
        graph_id
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.shared.models.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Admit a request. Fails fast (without queueing) on unknown model,
    /// out-of-range node, full queue, or shutdown.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        counter_add(Counter::ServeRequests, 1);
        let entry = self
            .shared
            .models
            .read()
            .unwrap()
            .get(&req.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let vertices = entry.graph.num_vertices();
        if req.node >= vertices {
            return Err(ServeError::BadRequest(format!(
                "node {} out of range (graph has {vertices} vertices)",
                req.node
            )));
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let reply = Arc::new(Oneshot::new());
        let job = Job {
            req,
            accepted: now,
            deadline,
            reply: Arc::clone(&reply),
        };
        match self.shared.batcher.push(job) {
            Ok(()) => {
                self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { reply })
            }
            Err(PushError::Overloaded(_)) => {
                counter_add(Counter::ServeShed, 1);
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience: [`submit`](Self::submit) then block for the reply.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Compiled-plan cache entries currently held.
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plans.len()
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.batcher.close();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(jobs) = shared.batcher.next_batch() {
        execute_batch(&shared, jobs);
    }
}

fn execute_batch(shared: &Shared, jobs: Vec<Job>) {
    let _span = span!("serve/batch", "jobs={}", jobs.len());
    counter_add(Counter::ServeBatches, 1);
    histogram_record(Histogram::ServeBatchSize, jobs.len() as u64);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    if !shared.cfg.exec_delay.is_zero() {
        std::thread::sleep(shared.cfg.exec_delay);
    }

    // Expire jobs whose deadline passed while they queued.
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        counter_add(Counter::ServeTimeouts, 1);
        shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
        job.reply.send(Err(ServeError::Timeout));
    }

    // Group by model so each group is one forward pass.
    let mut groups: HashMap<String, Vec<Job>> = HashMap::new();
    for job in live {
        groups.entry(job.req.model.clone()).or_default().push(job);
    }
    for (model_name, group) in groups {
        let entry = shared.models.read().unwrap().get(&model_name).cloned();
        let Some(entry) = entry else {
            // Model was unregistered between submit and execution.
            for job in group {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Err(ServeError::UnknownModel(model_name.clone())));
            }
            continue;
        };
        let key = PlanKey::cpu(entry.graph_id, &model_name, shared.cfg.kernel_threads);
        let (backend, hit) = shared
            .plans
            .get_or_insert(&key, || FeatgraphBackend::cpu(shared.cfg.kernel_threads));
        let slot = if hit {
            &shared.stats.plan_hits
        } else {
            &shared.stats.plan_misses
        };
        slot.fetch_add(1, Ordering::Relaxed);

        let nodes: Vec<usize> = group.iter().map(|j| j.req.node).collect();
        let result = {
            let _infer_span = span!("serve/infer", "model={model_name} nodes={}", nodes.len());
            infer_batch(
                entry.model.as_ref(),
                &entry.graph,
                &entry.features,
                backend.as_ref(),
                &nodes,
            )
        };
        match result {
            Ok(rows) => {
                for (job, logits) in group.into_iter().zip(rows) {
                    let class = logits
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map_or(0, |(i, _)| i);
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.latency.record(job.accepted.elapsed());
                    job.reply.send(Ok(InferResponse { class, logits }));
                }
            }
            Err(err) => {
                let msg = err.to_string();
                for job in group {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    job.reply.send(Err(ServeError::Infer(msg.clone())));
                }
            }
        }
    }
}
