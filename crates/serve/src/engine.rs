//! The serving engine: admission control, request coalescing, a worker
//! pool executing batched full-graph inference and per-request sampled
//! inference, and the compiled-plan cache.
//!
//! Data path: [`Engine::submit`] validates a request, stamps its deadline,
//! and pushes it into the bounded [`Batcher`]; when the queue is full the
//! request is **shed** with [`ServeError::Overloaded`] instead of blocking
//! the caller. Worker threads pull deadline-or-size batches, drop entries
//! whose deadline already passed ([`ServeError::Timeout`]), group the rest
//! by model, and answer each group with **one** full-graph forward pass via
//! [`fg_gnn::infer_batch`] — so the forward cost amortizes over the whole
//! batch. The [`PlanCache`] keyed by `(graph id, model, options)` keeps the
//! compiled kernel plans alive across batches: every batch after the first
//! is a plan-cache hit and skips kernel compilation entirely.
//!
//! **Sampled serving** ([`Engine::submit_seeds`]) rides the same queue:
//! each seeded request expands a fanout-bounded neighborhood of its seed
//! vertices ([`fg_graph::sample_subgraph`]), gathers the visited feature
//! rows, and runs the model on the induced subgraph — cost proportional to
//! the neighborhood, not the graph. Every request samples a different
//! subgraph, so plans cannot be cached per graph; instead the cache key
//! buckets the subgraph's `|V|`/`|E|` into powers of two
//! ([`PlanKey::cpu_sampled`]) and caches the tuned **schedule** (partition
//! count) for the bucket — repeated seed queries with different seed sets
//! hit the cache and skip the autotune probe.
//!
//! Shutdown is graceful: [`Engine::shutdown`] closes the batcher (new
//! submits fail with [`ServeError::ShuttingDown`]), lets workers drain the
//! queue, and joins them. Dropping the engine does the same.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fg_gnn::models::Model;
use fg_gnn::sampled::prepare_seeds;
use fg_gnn::{infer_batch, infer_sharded, FeatgraphBackend, GnnGraph, ShardRun, ShardedGraph};
use fg_graph::{SampleConfig, ShardStrategy, VId, FULL_FANOUT};
use fg_telemetry::{
    counter_add, emit_span, histogram_record, span, timestamp_ns, Counter, Histogram, MemCharge,
    MemComponent, MemScope, TraceContext, TraceSampler, TraceScope,
};
use fg_tensor::{Dense2, FeatureDtype, FeatureTensor};

use crate::batcher::{Batcher, BatcherConfig, PushError};
use crate::oneshot::Oneshot;
use crate::plan_cache::{PlanCache, PlanKey};
use crate::stats::{ConnSnapshot, ConnStats, Phase, ServeStats, SlowEntry, SlowLog, StatsSnapshot};

/// Slow-request log retention (newest entries win).
const SLOW_LOG_CAPACITY: usize = 128;

/// Hops sampled when a seeded request names no fanouts: every built-in
/// model is 2-layer, so a 2-hop neighborhood feeds every aggregation.
pub const DEFAULT_SAMPLE_HOPS: usize = 2;

/// Nominal byte cost of a cached sampled schedule (the entry is a handful
/// of words; what matters is that it is charged at insert so the byte bound
/// sees cold bursts).
const SAMPLED_SCHEDULE_COST: u64 = 64;

/// Engine configuration. Defaults suit an interactive low-latency setup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dispatch a batch once this many requests are queued.
    pub max_batch: usize,
    /// Dispatch a partial batch once the oldest request waited this long.
    pub max_delay: Duration,
    /// Admission queue bound; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Kernel threads per compiled backend.
    pub kernel_threads: usize,
    /// Shard workers per registered graph: `>= 2` splits every registered
    /// graph's destinations across this many per-shard worker threads with
    /// a halo exchange between layers ([`fg_gnn::infer_sharded`]); `0` or
    /// `1` serves single-worker. Sharded CPU inference is bitwise
    /// identical to single-worker inference.
    pub shards: usize,
    /// How destinations are placed on shards when `shards >= 2`.
    pub shard_strategy: ShardStrategy,
    /// Default per-request deadline when the request carries none;
    /// `None` disables timeouts.
    pub default_deadline: Option<Duration>,
    /// Artificial extra latency per batch execution — overload/timeout
    /// testing knob, zero in production.
    pub exec_delay: Duration,
    /// Head-sample 1 in N requests for end-to-end tracing (`0` disables
    /// sampling; `1` traces everything). Sampled requests carry their trace
    /// id through every `fg-telemetry` span they touch.
    pub trace_sample: u64,
    /// Slow-request threshold: completed requests whose serve-side latency
    /// meets or exceeds this many milliseconds get a phase breakdown in the
    /// slow log. `None` disables the log.
    pub slow_ms: Option<f64>,
    /// Byte bound on the compiled-plan cache; least-recently-used entries
    /// are evicted once the summed plan cost exceeds it. `0` = unbounded.
    pub plan_cache_bytes: u64,
    /// Whole-process accounted-memory budget: while the accountant's
    /// tracked total exceeds this, new requests are shed with
    /// [`ServeError::OverMemoryBudget`] instead of allocating. `0` =
    /// unlimited. Requires memory accounting to be compiled in (the
    /// `fg-telemetry/enabled` feature); with accounting compiled out the
    /// tracked total reads 0 and the gate never trips.
    pub mem_budget: u64,
    /// Storage precision for registered feature matrices: `F32` keeps the
    /// rows verbatim (results stay bitwise identical to an engine without
    /// this knob); `F16`/`Bf16` quantize at registration, halving feature
    /// bytes — kernels still accumulate in f32, widening on load.
    pub feature_dtype: FeatureDtype,
    /// Connection-handler threads in the TCP front-end's fixed pool
    /// (`0` = auto-size from available parallelism). The embedded engine
    /// ignores this; `fg-serve`'s readiness-polled acceptor consumes it.
    pub conn_handlers: usize,
    /// Concurrent-connection admission bound for the TCP front-end: accepts
    /// beyond this are shed immediately (counted in
    /// `fgserve_conn_admission_shed_total`) instead of queueing behind the
    /// handler pool. `0` = unlimited.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 2,
            kernel_threads: 1,
            shards: 1,
            shard_strategy: ShardStrategy::Range,
            default_deadline: Some(Duration::from_millis(500)),
            exec_delay: Duration::ZERO,
            trace_sample: 0,
            slow_ms: None,
            plan_cache_bytes: 0,
            mem_budget: 0,
            feature_dtype: FeatureDtype::F32,
            conn_handlers: 0,
            max_conns: 256,
        }
    }
}

/// Typed serving failure, surfaced on the wire as `ERR <id> <code>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission queue full; request shed without queueing.
    Overloaded,
    /// Accounted memory exceeds [`ServeConfig::mem_budget`]; request shed
    /// before allocating anything.
    OverMemoryBudget,
    /// Deadline expired before the request executed.
    Timeout,
    /// No model registered under that name.
    UnknownModel(String),
    /// Request invalid for the target model (e.g. node out of range).
    BadRequest(String),
    /// Engine is draining; no new work accepted.
    ShuttingDown,
    /// Inference itself failed.
    Infer(String),
}

impl ServeError {
    /// Stable machine-readable code used in the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::OverMemoryBudget => "over-memory-budget",
            ServeError::Timeout => "timeout",
            ServeError::UnknownModel(_) => "unknown-model",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Infer(_) => "infer-failed",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "queue full, request shed"),
            ServeError::OverMemoryBudget => {
                write!(f, "accounted memory over budget, request shed")
            }
            ServeError::Timeout => write!(f, "deadline expired before execution"),
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "engine shutting down"),
            ServeError::Infer(msg) => write!(f, "inference failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A single-node inference request.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// Registered model name.
    pub model: String,
    /// Node whose logits are wanted.
    pub node: usize,
    /// Per-request deadline; falls back to
    /// [`ServeConfig::default_deadline`] when `None`.
    pub deadline: Option<Duration>,
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Predicted class (argmax over logits).
    pub class: usize,
    /// Raw logits row for the requested node.
    pub logits: Vec<f32>,
}

/// A seeded (sampled-subgraph) inference request: answer `seeds` by running
/// the model on a fanout-bounded neighborhood instead of the full graph.
#[derive(Debug, Clone)]
pub struct InferSeedsRequest {
    /// Registered model name.
    pub model: String,
    /// Seed vertices whose logits are wanted (duplicates allowed; each seed
    /// gets its own reply row, in input order).
    pub seeds: Vec<usize>,
    /// Per-hop in-neighbor caps, seed-side first. `None` = full fanout over
    /// [`DEFAULT_SAMPLE_HOPS`] hops, which reproduces full-graph logits for
    /// the seeds bit-for-bit.
    pub fanouts: Option<Vec<usize>>,
    /// RNG seed for the neighbor sampler (same value + same seeds = same
    /// subgraph).
    pub sample_seed: u64,
    /// Client-supplied feature rows overriding the registered features for
    /// the seed vertices only — one row per seed, in seed order, with the
    /// model's registered feature width. The request runs on the sampled
    /// path (neighbor rows still come from the registered matrix), with the
    /// seeds' gathered rows replaced by these before the forward pass.
    pub feats: Option<Dense2<f32>>,
    /// Per-request deadline; falls back to
    /// [`ServeConfig::default_deadline`] when `None`.
    pub deadline: Option<Duration>,
}

/// A successful seeded reply: one [`InferResponse`] per requested seed, in
/// request order, plus the size of the subgraph that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedsResponse {
    /// Per-seed results, in request order.
    pub results: Vec<InferResponse>,
    /// Vertices in the sampled subgraph.
    pub sub_vertices: usize,
    /// Edges in the sampled subgraph.
    pub sub_edges: usize,
}

enum Payload {
    Node {
        node: usize,
        reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
    },
    Seeds {
        seeds: Vec<usize>,
        fanouts: Vec<usize>,
        sample_seed: u64,
        feats: Option<Dense2<f32>>,
        reply: Arc<Oneshot<Result<SeedsResponse, ServeError>>>,
    },
}

impl Payload {
    /// Short description for span details.
    fn desc(&self) -> String {
        match self {
            Payload::Node { node, .. } => format!("node={node}"),
            Payload::Seeds { seeds, .. } => format!("seeds={}", seeds.len()),
        }
    }
}

struct Job {
    model: String,
    payload: Payload,
    accepted: Instant,
    /// Wall-clock accept timestamp on the telemetry clock (0 when telemetry
    /// is disabled) — lets the worker emit the cross-thread queue-wait span.
    accept_ns: u64,
    deadline: Option<Instant>,
    trace: TraceContext,
}

impl Job {
    /// Answer the request with `err`, whatever its payload shape.
    fn fail(self, err: ServeError) {
        match self.payload {
            Payload::Node { reply, .. } => {
                reply.send(Err(err));
            }
            Payload::Seeds { reply, .. } => {
                reply.send(Err(err));
            }
        }
    }
}

/// Handle to one in-flight request; [`Ticket::wait`] blocks for the reply.
/// Every admitted request is guaranteed a reply — workers answer dequeued
/// jobs unconditionally and shutdown drains the queue first.
pub struct Ticket {
    reply: Arc<Oneshot<Result<InferResponse, ServeError>>>,
}

impl Ticket {
    /// Block until the worker pool answers.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.reply.recv()
    }
}

/// Handle to one in-flight seeded request; [`SeedsTicket::wait`] blocks for
/// the reply. Same reply guarantee as [`Ticket`].
pub struct SeedsTicket {
    reply: Arc<Oneshot<Result<SeedsResponse, ServeError>>>,
}

impl SeedsTicket {
    /// Block until the worker pool answers.
    pub fn wait(self) -> Result<SeedsResponse, ServeError> {
        self.reply.recv()
    }
}

/// A compiled-plan cache entry: full-graph workloads cache the backend
/// itself (its plan table holds the compiled kernels); sampled workloads
/// cache the tuned schedule for a subgraph shape bucket (the backend is
/// rebuilt per request around it — plan compilation against a small
/// subgraph is cheap, the autotune probe is what's worth reusing).
enum CachedPlan {
    Full(FeatgraphBackend),
    Sampled { partitions: usize },
    /// One backend per shard. Backends cache compiled plans keyed by matrix
    /// shape, and two shard-local graphs can share a shape — each shard must
    /// own its backend or plan lookups would cross shards.
    Sharded(Vec<FeatgraphBackend>),
}

/// One servable model: the graph it runs on, its input features, and the
/// trained (or initialized) parameters.
pub struct ModelEntry {
    graph_id: u64,
    graph: GnnGraph,
    features: FeatureTensor,
    model: Box<dyn Model>,
    /// Shard slices + halo-exchange plan, built once at registration when
    /// the engine is configured with `shards >= 2`.
    sharded: Option<ShardedEntry>,
    /// Accounting guard for the `Vec`-backed graph topology (the tensor
    /// accountant only sees aligned buffers); credited when the entry drops
    /// — replacement, unregistration, or engine shutdown alike.
    _graph_charge: MemCharge,
}

/// Per-model shard state: the sliced graph plus monotone per-shard traffic
/// counters (rows routed to each shard's owned partition, bytes each shard
/// gathered from remote shards during halo exchange).
struct ShardedEntry {
    graph: ShardedGraph,
    rows_routed: Vec<AtomicU64>,
    exchange_bytes: Vec<AtomicU64>,
    /// Accounting guard for shard topology + exchange plans.
    _charge: MemCharge,
}

impl ShardedEntry {
    fn build(graph: &GnnGraph, shards: usize, strategy: ShardStrategy) -> Self {
        let sharded = ShardedGraph::build(graph.fwd(), shards, strategy);
        let n = sharded.num_shards();
        for s in 0..n {
            histogram_record(Histogram::ShardEdges, sharded.plan().shard(s).num_edges() as u64);
        }
        let charge = MemCharge::new(MemComponent::ShardPlan, sharded.mem_bytes());
        ShardedEntry {
            graph: sharded,
            rows_routed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            exchange_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            _charge: charge,
        }
    }

    /// Fold one sharded forward pass into the per-shard counters and the
    /// seed-routing histogram.
    fn record_run(&self, nodes: &[usize], run: &ShardRun) {
        let plan = self.graph.plan();
        let mut counts = vec![0u64; plan.num_shards()];
        for &node in nodes {
            counts[plan.owner_of(node as VId)] += 1;
        }
        for (s, &routed) in counts.iter().enumerate() {
            if routed > 0 {
                self.rows_routed[s].fetch_add(routed, Ordering::Relaxed);
                histogram_record(Histogram::ShardSeeds, routed);
            }
            let bytes = run.shard_exchange_bytes[s];
            if bytes > 0 {
                self.exchange_bytes[s].fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Summed local-vertex and local-edge counts over the shards owning at
    /// least one of `nodes` — the sharded analogue of a sampled request's
    /// subgraph size.
    fn touched_sizes(&self, nodes: &[usize]) -> (usize, usize) {
        let plan = self.graph.plan();
        let mut touched = vec![false; plan.num_shards()];
        for &node in nodes {
            touched[plan.owner_of(node as VId)] = true;
        }
        let mut vertices = 0;
        let mut edges = 0;
        for (s, hit) in touched.iter().enumerate() {
            if *hit {
                let shard = plan.shard(s);
                vertices += shard.locals().len();
                edges += shard.num_edges();
            }
        }
        (vertices, edges)
    }
}

/// One line of the `SHARDS` wire report: topology and traffic figures for a
/// single shard of a single registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLine {
    /// Registered model name.
    pub model: String,
    /// Shard index, `0..shards`.
    pub shard: usize,
    /// Placement strategy name (`range` / `degree`).
    pub strategy: String,
    /// Destination vertices this shard owns.
    pub owned: u64,
    /// Owned plus halo vertices (rows the shard materializes).
    pub locals: u64,
    /// Halo vertices read from remote shards between layers.
    pub halo: u64,
    /// Edges in the shard-local graph.
    pub edges: u64,
    /// Answered rows routed to this shard's owned partition (monotone).
    pub rows_routed: u64,
    /// Bytes this shard gathered from remote shards during halo exchange
    /// (monotone).
    pub exchange_bytes: u64,
    /// Accounted bytes for the shard's topology and exchange plan.
    pub mem_bytes: u64,
}

impl ShardLine {
    /// Render as one `key=value` wire line (inverse of
    /// [`parse_wire`](Self::parse_wire)).
    pub fn to_wire(&self) -> String {
        format!(
            "model={} shard={} strategy={} owned={} locals={} halo={} edges={} rows_routed={} \
             exchange_bytes={} mem_bytes={}",
            self.model,
            self.shard,
            self.strategy,
            self.owned,
            self.locals,
            self.halo,
            self.edges,
            self.rows_routed,
            self.exchange_bytes,
            self.mem_bytes
        )
    }

    /// Parse a line produced by [`to_wire`](Self::to_wire).
    pub fn parse_wire(line: &str) -> Result<ShardLine, String> {
        let mut model = None;
        let mut strategy = None;
        let mut fields = [None::<u64>; 8];
        const KEYS: [&str; 8] = [
            "shard",
            "owned",
            "locals",
            "halo",
            "edges",
            "rows_routed",
            "exchange_bytes",
            "mem_bytes",
        ];
        for token in line.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token {token:?}"))?;
            match key {
                "model" => model = Some(value.to_string()),
                "strategy" => strategy = Some(value.to_string()),
                _ => {
                    let slot = KEYS
                        .iter()
                        .position(|k| *k == key)
                        .ok_or_else(|| format!("unknown key {key:?}"))?;
                    fields[slot] = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad value for {key}: {value:?}"))?,
                    );
                }
            }
        }
        let take = |slot: usize| fields[slot].ok_or_else(|| format!("missing {}", KEYS[slot]));
        Ok(ShardLine {
            model: model.ok_or("missing model")?,
            shard: take(0)? as usize,
            strategy: strategy.ok_or("missing strategy")?,
            owned: take(1)?,
            locals: take(2)?,
            halo: take(3)?,
            edges: take(4)?,
            rows_routed: take(5)?,
            exchange_bytes: take(6)?,
            mem_bytes: take(7)?,
        })
    }
}

/// Snapshot of per-shard topology and traffic across all registered models,
/// rendered by the `SHARDS` wire verb and the `fgserve_shard_*` metric
/// series. Empty when the engine serves single-worker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardsReport {
    /// Configured shard count (`0` when serving single-worker).
    pub shards: usize,
    /// One entry per shard per registered model, models sorted by name.
    pub lines: Vec<ShardLine>,
}

impl ShardsReport {
    /// One wire line per shard per model (see [`ShardLine::to_wire`]).
    pub fn to_wire_lines(&self) -> Vec<String> {
        self.lines.iter().map(ShardLine::to_wire).collect()
    }

    /// Total bytes moved by halo exchange across all models and shards.
    pub fn total_exchange_bytes(&self) -> u64 {
        self.lines.iter().map(|l| l.exchange_bytes).sum()
    }
}

struct Shared {
    cfg: ServeConfig,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    batcher: Batcher<Job>,
    plans: PlanCache<CachedPlan>,
    stats: Arc<ServeStats>,
    conn: Arc<ConnStats>,
    sampler: TraceSampler,
    slow_log: SlowLog,
    next_graph_id: AtomicU64,
}

/// See the [module docs](self).
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Start an engine with `cfg.workers` batch-execution threads.
    pub fn new(cfg: ServeConfig) -> Self {
        let workers = cfg.workers.max(1);
        let plan_cache_bytes = cfg.plan_cache_bytes;
        let stats = Arc::new(ServeStats::default());
        let shared = Arc::new(Shared {
            batcher: Batcher::with_observer(
                BatcherConfig {
                    capacity: cfg.queue_capacity,
                    max_batch: cfg.max_batch,
                    max_delay: cfg.max_delay,
                },
                Arc::clone(&stats) as _,
            ),
            sampler: TraceSampler::new(cfg.trace_sample),
            slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
            cfg,
            models: RwLock::new(HashMap::new()),
            plans: PlanCache::bounded(plan_cache_bytes),
            stats,
            conn: Arc::new(ConnStats::default()),
            next_graph_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgserve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Register `model` under `name`, replacing any previous registration.
    /// Returns the graph ID assigned to this registration (part of the
    /// plan-cache key).
    pub fn register_model(
        &self,
        name: &str,
        model: Box<dyn Model>,
        graph: GnnGraph,
        features: Dense2<f32>,
    ) -> u64 {
        let graph_id = self.shared.next_graph_id.fetch_add(1, Ordering::Relaxed);
        let graph_charge = MemCharge::new(MemComponent::GraphTopology, graph.mem_bytes());
        let sharded = (self.shared.cfg.shards >= 2).then(|| {
            ShardedEntry::build(&graph, self.shared.cfg.shards, self.shared.cfg.shard_strategy)
        });
        // Quantize at registration per the configured storage dtype; F32
        // keeps the caller's buffer untouched (no copy, no rounding).
        let features = FeatureTensor::from_f32(self.shared.cfg.feature_dtype, features);
        let entry = Arc::new(ModelEntry {
            graph_id,
            graph,
            features,
            model,
            sharded,
            _graph_charge: graph_charge,
        });
        let replaced = self
            .shared
            .models
            .write()
            .unwrap()
            .insert(name.to_string(), entry);
        if let Some(old) = replaced {
            // Surface what used to be a silent drop: the old entry's graph,
            // features, and parameters are released (once in-flight batches
            // holding its Arc finish).
            self.shared
                .stats
                .models_replaced
                .fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "fgserve: model {name:?} replaced (old graph id {}, new graph id {graph_id}); \
                 previous entry released",
                old.graph_id
            );
        }
        graph_id
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.shared.models.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Mint a [`TraceContext`] for one incoming request, honoring the
    /// configured 1-in-N sampling rate. Front-ends that want their own
    /// accept-side span to share the request's trace id call this before
    /// [`submit_traced`](Self::submit_traced); [`submit`](Self::submit)
    /// mints internally.
    pub fn mint_trace(&self) -> TraceContext {
        self.shared.sampler.mint()
    }

    /// Admit a request. Fails fast (without queueing) on unknown model,
    /// out-of-range node, full queue, or shutdown.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        let trace = self.mint_trace();
        self.submit_traced(req, trace)
    }

    /// [`submit`](Self::submit) with a caller-minted [`TraceContext`]
    /// (from [`mint_trace`](Self::mint_trace)) so front-end spans and
    /// worker-side spans land in the same trace tree.
    pub fn submit_traced(
        &self,
        req: InferRequest,
        trace: TraceContext,
    ) -> Result<Ticket, ServeError> {
        counter_add(Counter::ServeRequests, 1);
        // Memory-budget admission gate: shed before this request allocates
        // anything (no job, no oneshot, no queue slot) while the accounted
        // footprint is over budget.
        let budget = self.shared.cfg.mem_budget;
        if budget > 0 && fg_telemetry::mem_total_current() > budget {
            counter_add(Counter::ServeMemShed, 1);
            self.shared.stats.mem_shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::OverMemoryBudget);
        }
        let entry = self
            .shared
            .models
            .read()
            .unwrap()
            .get(&req.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let vertices = entry.graph.num_vertices();
        if req.node >= vertices {
            return Err(ServeError::BadRequest(format!(
                "node {} out of range (graph has {vertices} vertices)",
                req.node
            )));
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let reply = Arc::new(Oneshot::new());
        let job = Job {
            model: req.model,
            payload: Payload::Node {
                node: req.node,
                reply: Arc::clone(&reply),
            },
            accepted: now,
            accept_ns: if trace.sampled { timestamp_ns() } else { 0 },
            deadline,
            trace,
        };
        match self.push_job(job) {
            Ok(()) => Ok(Ticket { reply }),
            Err(e) => Err(e),
        }
    }

    /// Admit a seeded (sampled-subgraph) request. Same admission gates as
    /// [`submit`](Self::submit); additionally rejects empty seed sets,
    /// out-of-range seeds, and empty fanout lists before queueing.
    pub fn submit_seeds(&self, req: InferSeedsRequest) -> Result<SeedsTicket, ServeError> {
        let trace = self.mint_trace();
        self.submit_seeds_traced(req, trace)
    }

    /// [`submit_seeds`](Self::submit_seeds) with a caller-minted
    /// [`TraceContext`].
    pub fn submit_seeds_traced(
        &self,
        req: InferSeedsRequest,
        trace: TraceContext,
    ) -> Result<SeedsTicket, ServeError> {
        counter_add(Counter::ServeRequests, 1);
        let budget = self.shared.cfg.mem_budget;
        if budget > 0 && fg_telemetry::mem_total_current() > budget {
            counter_add(Counter::ServeMemShed, 1);
            self.shared.stats.mem_shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::OverMemoryBudget);
        }
        let entry = self
            .shared
            .models
            .read()
            .unwrap()
            .get(&req.model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        if req.seeds.is_empty() {
            return Err(ServeError::BadRequest("no seed vertices".into()));
        }
        let vertices = entry.graph.num_vertices();
        if let Some(&node) = req.seeds.iter().find(|&&s| s >= vertices) {
            return Err(ServeError::BadRequest(format!(
                "seed {node} out of range (graph has {vertices} vertices)"
            )));
        }
        let fanouts = match req.fanouts {
            Some(f) if f.is_empty() => {
                return Err(ServeError::BadRequest("empty fanout list".into()));
            }
            Some(f) => f,
            None => vec![FULL_FANOUT; DEFAULT_SAMPLE_HOPS],
        };
        if let Some(feats) = &req.feats {
            if feats.rows() != req.seeds.len() {
                return Err(ServeError::BadRequest(format!(
                    "feats has {} rows for {} seeds",
                    feats.rows(),
                    req.seeds.len()
                )));
            }
            if feats.cols() != entry.features.cols() {
                return Err(ServeError::BadRequest(format!(
                    "feats width {} does not match model feature width {}",
                    feats.cols(),
                    entry.features.cols()
                )));
            }
            if let Some(bad) = feats.as_slice().iter().find(|v| !v.is_finite()) {
                return Err(ServeError::BadRequest(format!(
                    "non-finite feature value {bad}"
                )));
            }
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let reply = Arc::new(Oneshot::new());
        let job = Job {
            model: req.model,
            payload: Payload::Seeds {
                seeds: req.seeds,
                fanouts,
                sample_seed: req.sample_seed,
                feats: req.feats,
                reply: Arc::clone(&reply),
            },
            accepted: now,
            accept_ns: if trace.sampled { timestamp_ns() } else { 0 },
            deadline,
            trace,
        };
        match self.push_job(job) {
            Ok(()) => Ok(SeedsTicket { reply }),
            Err(e) => Err(e),
        }
    }

    /// Queue one validated job, updating accept/shed accounting.
    fn push_job(&self, job: Job) -> Result<(), ServeError> {
        match self.shared.batcher.push(job) {
            Ok(()) => {
                self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Overloaded(_)) => {
                counter_add(Counter::ServeShed, 1);
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience: [`submit`](Self::submit) then block for the reply.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Convenience: [`submit_seeds`](Self::submit_seeds) then block.
    pub fn infer_seeds(&self, req: InferSeedsRequest) -> Result<SeedsResponse, ServeError> {
        self.submit_seeds(req)?.wait()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Record one serialize-phase sample. The engine never sees reply
    /// serialization (it happens on the front-end's connection thread), so
    /// the front-end feeds the phase recorder through this.
    pub fn record_serialize(&self, dur: Duration) {
        self.shared.stats.record_phase(Phase::Serialize, dur);
    }

    /// Retained slow-request entries, oldest first, capped at `limit`
    /// newest when given. Empty unless [`ServeConfig::slow_ms`] is set.
    pub fn slow_requests(&self, limit: Option<usize>) -> Vec<SlowEntry> {
        self.shared.slow_log.entries(limit)
    }

    /// Slow requests ever logged (including entries since evicted).
    pub fn slow_total(&self) -> u64 {
        self.shared.slow_log.total()
    }

    /// Full Prometheus-style text exposition: the engine's always-on serve
    /// series, the memory-accounting series, plus (when compiled in and
    /// enabled) the process-wide `fg-telemetry` registry, terminated by
    /// `# EOF`.
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(
            &self.stats(),
            &self.memory_report(),
            &self.shards_report(),
            &self.conn_stats().snapshot(),
        )
    }

    /// Connection counters for the TCP front-end. The engine owns the
    /// struct (so `METRICS` can render it from any front-end, including
    /// none); the acceptor and handler pool increment it.
    pub fn conn_stats(&self) -> Arc<ConnStats> {
        Arc::clone(&self.shared.conn)
    }

    /// Storage dtype the engine quantizes registered features to.
    pub fn feature_dtype(&self) -> FeatureDtype {
        self.shared.cfg.feature_dtype
    }

    /// The configuration this engine was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Point-in-time connection-counter snapshot (all zeros when no TCP
    /// front-end is attached).
    pub fn conn_snapshot(&self) -> ConnSnapshot {
        self.shared.conn.snapshot()
    }

    /// Point-in-time per-shard topology and traffic breakdown backing the
    /// `SHARDS` wire command and the `fgserve_shard_*` metric series. Empty
    /// (zero shards, no lines) when the engine serves single-worker.
    pub fn shards_report(&self) -> ShardsReport {
        let models = self.shared.models.read().unwrap();
        let mut names: Vec<&String> = models.keys().collect();
        names.sort();
        let mut report = ShardsReport {
            shards: if self.shared.cfg.shards >= 2 {
                self.shared.cfg.shards
            } else {
                0
            },
            lines: Vec::new(),
        };
        for name in names {
            let entry = &models[name];
            let Some(sharded) = entry.sharded.as_ref() else {
                continue;
            };
            let plan = sharded.graph.plan();
            for s in 0..sharded.graph.num_shards() {
                let shard = plan.shard(s);
                report.lines.push(ShardLine {
                    model: name.clone(),
                    shard: s,
                    strategy: plan.strategy().name().to_string(),
                    owned: shard.owned().len() as u64,
                    locals: shard.locals().len() as u64,
                    halo: shard.halo().len() as u64,
                    edges: shard.num_edges() as u64,
                    rows_routed: sharded.rows_routed[s].load(Ordering::Relaxed),
                    exchange_bytes: sharded.exchange_bytes[s].load(Ordering::Relaxed),
                    mem_bytes: sharded.graph.shard_mem_bytes(s),
                });
            }
        }
        report
    }

    /// Compiled-plan cache entries currently held.
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plans.len()
    }

    /// Point-in-time memory breakdown backing the `MEMORY` wire command and
    /// the `fgserve_mem_*` metric series.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            components: fg_telemetry::mem_snapshot(),
            total_current: fg_telemetry::mem_total_current(),
            total_peak: fg_telemetry::mem_total_peak(),
            plan_cache_entries: self.shared.plans.len() as u64,
            plan_cache_bytes: self.shared.plans.total_bytes(),
            plan_cache_capacity: self.shared.plans.capacity(),
            plan_cache_evictions: self.shared.plans.evictions(),
            mem_budget: self.shared.cfg.mem_budget,
            mem_shed: self.shared.stats.mem_shed.load(Ordering::Relaxed),
            models_registered: self.shared.models.read().unwrap().len() as u64,
            models_replaced: self.shared.stats.models_replaced.load(Ordering::Relaxed),
            rss: fg_telemetry::read_rss(),
        }
    }

    /// Stop accepting work, drain the queue, and join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.batcher.close();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Whole-process memory breakdown: per-component accounted watermarks,
/// plan-cache occupancy, admission-gate state, and the OS resident-set
/// cross-check. Produced by [`Engine::memory_report`], rendered by the
/// `MEMORY` wire command and the `fgserve_mem_*` metric series.
#[derive(Debug, Clone)]
pub struct MemoryReport {
    /// Current/peak accounted bytes per component, in
    /// [`MemComponent::ALL`] order (all zeros with accounting compiled out).
    pub components: Vec<fg_telemetry::MemComponentSnapshot>,
    /// Accounted bytes currently live across every component.
    pub total_current: u64,
    /// High-water mark of `total_current`.
    pub total_peak: u64,
    /// Compiled-plan cache entries currently held.
    pub plan_cache_entries: u64,
    /// Summed plan cost of the cached entries in bytes.
    pub plan_cache_bytes: u64,
    /// Plan-cache byte bound (`0` = unbounded).
    pub plan_cache_capacity: u64,
    /// Plan-cache entries evicted to stay under the bound.
    pub plan_cache_evictions: u64,
    /// Admission-gate budget in bytes (`0` = unlimited).
    pub mem_budget: u64,
    /// Requests shed by the memory-budget gate.
    pub mem_shed: u64,
    /// Models currently registered.
    pub models_registered: u64,
    /// Registrations that replaced (and released) a previous entry.
    pub models_replaced: u64,
    /// OS resident-set reading (`None` off Linux).
    pub rss: Option<fg_telemetry::RssReading>,
}

impl MemoryReport {
    /// Render as `key=value ...` payload lines for the `MEMORY` wire reply:
    /// one `component=<name> current=<b> peak=<b>` line per component, then
    /// one `total` summary line, one `plan_cache` line, and (on Linux) one
    /// `rss` line.
    pub fn to_wire_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .components
            .iter()
            .map(|c| {
                format!(
                    "component={} current={} peak={}",
                    c.component.name(),
                    c.current,
                    c.peak
                )
            })
            .collect();
        lines.push(format!(
            "total current={} peak={} budget={} mem_shed={} models_registered={} \
             models_replaced={}",
            self.total_current,
            self.total_peak,
            self.mem_budget,
            self.mem_shed,
            self.models_registered,
            self.models_replaced,
        ));
        lines.push(format!(
            "plan_cache entries={} bytes={} capacity={} evictions={}",
            self.plan_cache_entries,
            self.plan_cache_bytes,
            self.plan_cache_capacity,
            self.plan_cache_evictions,
        ));
        if let Some(rss) = self.rss {
            lines.push(format!(
                "rss current={} peak={}",
                rss.current_bytes, rss.peak_bytes
            ));
        }
        lines
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(jobs) = shared.batcher.next_batch() {
        execute_batch(&shared, jobs);
    }
}

fn execute_batch(shared: &Shared, jobs: Vec<Job>) {
    let pulled = Instant::now();
    let pulled_ns = timestamp_ns();
    // A batch may mix jobs from several traces; parent the batch span under
    // the first sampled one so at least one trace tree shows batch context.
    let batch_trace = jobs
        .iter()
        .find(|j| j.trace.sampled)
        .map_or(TraceContext::NONE, |j| j.trace);
    let _batch_scope = TraceScope::enter(batch_trace);
    let _span = span!("serve/batch", "jobs={}", jobs.len());
    counter_add(Counter::ServeBatches, 1);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    // Queue wait elapsed on another thread; emit it as an externally-timed
    // span per sampled job so the trace tree covers accept → pull.
    for job in &jobs {
        if job.trace.sampled && job.accept_ns != 0 && pulled_ns > job.accept_ns {
            emit_span(
                "serve/queue_wait",
                Some(job.payload.desc()),
                job.accept_ns,
                pulled_ns - job.accept_ns,
                job.trace.trace_id,
            );
        }
    }
    if !shared.cfg.exec_delay.is_zero() {
        std::thread::sleep(shared.cfg.exec_delay);
    }

    // Expire jobs whose deadline passed while they queued.
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        counter_add(Counter::ServeTimeouts, 1);
        shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
        // A timed-out request still gets its terminal phase on the books:
        // everything it did was wait in the queue. Without this, shed-by-
        // deadline traffic was invisible to per-phase attribution (the
        // timeout counter moved but no queue_wait samples arrived with it).
        shared
            .stats
            .record_phase(Phase::QueueWait, now.duration_since(job.accepted));
        job.fail(ServeError::Timeout);
    }

    // Group by model so full-graph requests of a group share one forward
    // pass (seeded requests in the group run per-request on their own
    // subgraph afterwards).
    let mut groups: HashMap<String, Vec<Job>> = HashMap::new();
    for job in live {
        groups.entry(job.model.clone()).or_default().push(job);
    }
    for (model_name, group) in groups {
        let group_start = Instant::now();
        // Phase accounting sees the group through this batch's clock:
        // batch_form covers pull → this group's start (deadline filtering,
        // grouping, earlier groups in the same batch).
        let batch_form = group_start.duration_since(pulled);
        let group_trace = group
            .iter()
            .find(|j| j.trace.sampled)
            .map_or(TraceContext::NONE, |j| j.trace);
        let _group_scope = TraceScope::enter(group_trace);
        let entry = shared.models.read().unwrap().get(&model_name).cloned();
        let Some(entry) = entry else {
            // Model was unregistered between submit and execution.
            for job in group {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.fail(ServeError::UnknownModel(model_name.clone()));
            }
            continue;
        };
        let (node_jobs, seed_jobs): (Vec<Job>, Vec<Job>) = group
            .into_iter()
            .partition(|j| matches!(j.payload, Payload::Node { .. }));
        if !node_jobs.is_empty() {
            execute_node_group(shared, &model_name, &entry, node_jobs, pulled, batch_form);
        }
        for job in seed_jobs {
            execute_seeds_job(shared, &model_name, &entry, job, pulled, batch_form);
        }
    }
}

/// One batched full-graph forward pass answering every node job in the
/// group.
fn execute_node_group(
    shared: &Shared,
    model_name: &str,
    entry: &ModelEntry,
    group: Vec<Job>,
    pulled: Instant,
    batch_form: Duration,
) {
    let nodes: Vec<usize> = group
        .iter()
        .map(|j| match j.payload {
            Payload::Node { node, .. } => node,
            Payload::Seeds { .. } => unreachable!("seeds job in node group"),
        })
        .collect();
    let mut compile = Duration::ZERO;
    let (result, execute, exchange) = if let Some(sharded) = entry.sharded.as_ref() {
        run_sharded_rows(shared, model_name, entry, sharded, &nodes, &mut compile)
    } else {
        let key = PlanKey::cpu(entry.graph_id, model_name, shared.cfg.kernel_threads)
            .with_dtype(entry.features.dtype());
        let (plan, hit) = shared.plans.get_or_insert(&key, || {
            let _compile_span = span!("serve/plan_compile", "model={model_name}");
            let t0 = Instant::now();
            let backend = FeatgraphBackend::cpu(shared.cfg.kernel_threads);
            compile = t0.elapsed();
            // Plans compile lazily per feature dim; the real cost lands via
            // note_cost after each batch.
            (CachedPlan::Full(backend), 0)
        });
        let slot = if hit {
            &shared.stats.plan_hits
        } else {
            &shared.stats.plan_misses
        };
        slot.fetch_add(1, Ordering::Relaxed);
        let CachedPlan::Full(backend) = &*plan else {
            // Full-graph, sampled, and sharded keys live in disjoint options
            // namespaces.
            unreachable!("full-graph plan key resolved to a non-full plan");
        };

        let exec_start = Instant::now();
        let result = {
            let _infer_span = span!("serve/infer", "model={model_name} nodes={}", nodes.len());
            // Attribute the batch's tape/scratch allocations to the serve path.
            let _mem = MemScope::enter(MemComponent::ServeBatch);
            // F32 storage borrows the registered buffer directly; half
            // storage widens once per batch group (the materialized copy is
            // scratch, charged to the serve batch).
            let widened;
            let features: &Dense2<f32> = match entry.features.as_f32() {
                Some(f) => f,
                None => {
                    widened = entry.features.to_f32();
                    &widened
                }
            };
            infer_batch(entry.model.as_ref(), &entry.graph, features, backend, &nodes)
        };
        let execute = exec_start.elapsed();
        // Plans compile lazily per feature dim, so re-report the backend's
        // plan bytes after every batch; this also drives LRU eviction.
        shared.plans.note_cost(&key, backend.plan_mem_bytes());
        (result, execute, Duration::ZERO)
    };
    match result {
        Ok(rows) => {
            for (job, logits) in group.into_iter().zip(rows) {
                let class = argmax(&logits);
                let total = job.accepted.elapsed();
                // Every job in the group waited through the whole
                // compile and forward pass, so each gets the full
                // durations: per-request phases then sum to its own
                // end-to-end latency.
                let queue_wait = pulled.duration_since(job.accepted);
                shared.stats.record_phase(Phase::QueueWait, queue_wait);
                shared.stats.record_phase(Phase::BatchForm, batch_form);
                shared.stats.record_phase(Phase::PlanCompile, compile);
                shared.stats.record_phase(Phase::Execute, execute);
                shared.stats.record_phase(Phase::Exchange, exchange);
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                shared.stats.latency.record(total);
                let total_ms = total.as_secs_f64() * 1e3;
                if shared.cfg.slow_ms.is_some_and(|t| total_ms >= t) {
                    shared.slow_log.push(SlowEntry {
                        seq: 0,
                        trace_id: job.trace.trace_id,
                        sampled: job.trace.sampled,
                        model: model_name.to_string(),
                        node: nodes_first(&job),
                        total_ms,
                        queue_ms: queue_wait.as_secs_f64() * 1e3,
                        batch_ms: batch_form.as_secs_f64() * 1e3,
                        sample_ms: 0.0,
                        compile_ms: compile.as_secs_f64() * 1e3,
                        execute_ms: (execute + exchange).as_secs_f64() * 1e3,
                    });
                }
                match job.payload {
                    Payload::Node { reply, .. } => {
                        reply.send(Ok(InferResponse { class, logits }));
                    }
                    Payload::Seeds { .. } => unreachable!("seeds job in node group"),
                }
            }
        }
        Err(err) => {
            let msg = err.to_string();
            for job in group {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                job.fail(ServeError::Infer(msg.clone()));
            }
        }
    }
}

/// Scatter-gather coordination for one sharded forward pass: fetch (or
/// build) the per-shard backend set, run [`infer_sharded`] across the shard
/// workers, and fold the run into the entry's per-shard counters. Returns
/// the row results plus the execute time split into compute
/// (wall − exchange) and halo-exchange components so the two phases stay
/// additive in latency attribution.
fn run_sharded_rows(
    shared: &Shared,
    model_name: &str,
    entry: &ModelEntry,
    sharded: &ShardedEntry,
    nodes: &[usize],
    compile: &mut Duration,
) -> (
    Result<Vec<Vec<f32>>, fg_gnn::InferError>,
    Duration,
    Duration,
) {
    let num_shards = sharded.graph.num_shards();
    let key = PlanKey::cpu_sharded(
        entry.graph_id,
        model_name,
        shared.cfg.kernel_threads,
        num_shards,
        sharded.graph.plan().strategy(),
    )
    .with_dtype(entry.features.dtype());
    let (plan, hit) = shared.plans.get_or_insert(&key, || {
        let _compile_span = span!("serve/plan_compile", "model={model_name} shards={num_shards}");
        let t0 = Instant::now();
        let backends: Vec<FeatgraphBackend> = (0..num_shards)
            .map(|_| FeatgraphBackend::cpu(shared.cfg.kernel_threads))
            .collect();
        *compile = t0.elapsed();
        // Plans compile lazily per feature dim; the real cost lands via
        // note_cost after each batch.
        (CachedPlan::Sharded(backends), 0)
    });
    let slot = if hit {
        &shared.stats.plan_hits
    } else {
        &shared.stats.plan_misses
    };
    slot.fetch_add(1, Ordering::Relaxed);
    let CachedPlan::Sharded(backends) = &*plan else {
        // Full-graph, sampled, and sharded keys live in disjoint options
        // namespaces.
        unreachable!("sharded plan key resolved to a non-sharded plan");
    };

    let exec_start = Instant::now();
    let run = {
        let _infer_span = span!(
            "serve/infer",
            "model={model_name} nodes={} shards={num_shards}",
            nodes.len()
        );
        // Attribute the batch's tape/scratch allocations to the serve path.
        let _mem = MemScope::enter(MemComponent::ServeBatch);
        let widened;
        let features: &Dense2<f32> = match entry.features.as_f32() {
            Some(f) => f,
            None => {
                widened = entry.features.to_f32();
                &widened
            }
        };
        infer_sharded(entry.model.as_ref(), &sharded.graph, features, backends, nodes)
    };
    let execute = exec_start.elapsed();
    shared
        .plans
        .note_cost(&key, backends.iter().map(|b| b.plan_mem_bytes()).sum());
    match run {
        Ok(run) => {
            // The slowest shard's exchange wait bounds the pass's exchange
            // cost; subtracting it keeps Execute + Exchange additive.
            let exchange = Duration::from_nanos(run.exchange_ns_max());
            sharded.record_run(nodes, &run);
            (Ok(run.results), execute.saturating_sub(exchange), exchange)
        }
        Err(err) => (Err(err), execute, Duration::ZERO),
    }
}

/// One seeded request: sample the neighborhood, gather features, run the
/// model on the induced subgraph, and scatter only the seed rows back.
fn execute_seeds_job(
    shared: &Shared,
    model_name: &str,
    entry: &ModelEntry,
    job: Job,
    pulled: Instant,
    batch_form: Duration,
) {
    let Payload::Seeds {
        seeds,
        fanouts,
        sample_seed,
        feats,
        reply,
    } = job.payload
    else {
        unreachable!("node job in seeds path");
    };

    // Sharded routing: under full fanout every vertex keeps all of its
    // in-edges, so answering seeds from their owner shards is bitwise
    // identical to the single-worker path. Capped fanouts stay on the
    // sampled path — the sampler's RNG keying makes capped results depend
    // on which vertices share a request, which shard-splitting would change.
    // Requests carrying their own seed features also stay on the sampled
    // path: the override rewrites gathered rows, which the sharded pass
    // (reading the registered matrix in place) cannot do.
    if let Some(sharded) = entry.sharded.as_ref() {
        if feats.is_none() && fanouts.iter().all(|&f| f == FULL_FANOUT) {
            let mut compile = Duration::ZERO;
            let (result, execute, exchange) =
                run_sharded_rows(shared, model_name, entry, sharded, &seeds, &mut compile);
            match result {
                Ok(rows) => {
                    let results: Vec<InferResponse> = rows
                        .into_iter()
                        .map(|logits| InferResponse {
                            class: argmax(&logits),
                            logits,
                        })
                        .collect();
                    let (sub_vertices, sub_edges) = sharded.touched_sizes(&seeds);
                    let total = job.accepted.elapsed();
                    let queue_wait = pulled.duration_since(job.accepted);
                    shared.stats.record_phase(Phase::QueueWait, queue_wait);
                    shared.stats.record_phase(Phase::BatchForm, batch_form);
                    shared.stats.record_phase(Phase::PlanCompile, compile);
                    shared.stats.record_phase(Phase::Execute, execute);
                    shared.stats.record_phase(Phase::Exchange, exchange);
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.latency.record(total);
                    let total_ms = total.as_secs_f64() * 1e3;
                    if shared.cfg.slow_ms.is_some_and(|t| total_ms >= t) {
                        shared.slow_log.push(SlowEntry {
                            seq: 0,
                            trace_id: job.trace.trace_id,
                            sampled: job.trace.sampled,
                            model: model_name.to_string(),
                            node: seeds.first().copied().unwrap_or(0),
                            total_ms,
                            queue_ms: queue_wait.as_secs_f64() * 1e3,
                            batch_ms: batch_form.as_secs_f64() * 1e3,
                            sample_ms: 0.0,
                            compile_ms: compile.as_secs_f64() * 1e3,
                            execute_ms: (execute + exchange).as_secs_f64() * 1e3,
                        });
                    }
                    reply.send(Ok(SeedsResponse {
                        results,
                        sub_vertices,
                        sub_edges,
                    }));
                }
                Err(err) => {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    reply.send(Err(ServeError::Infer(err.to_string())));
                }
            }
            return;
        }
    }

    let cfg = SampleConfig::new(fanouts, sample_seed);

    // Sample phase: neighborhood expansion + reindex + feature gather.
    let sample_start = Instant::now();
    let prepared = {
        let _sample_span = span!("serve/sample", "model={model_name} seeds={}", seeds.len());
        prepare_seeds(&entry.graph, &seeds, &cfg)
    };
    let (sub, sub_gnn) = match prepared {
        Ok(p) => p,
        Err(err) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            reply.send(Err(ServeError::Infer(err.to_string())));
            return;
        }
    };
    // The subgraph and its index maps live until the reply is built;
    // account them so MEMORY answers show per-request sampling footprint.
    let _sampling_charge = MemCharge::new(MemComponent::Sampling, sub.mem_bytes());
    // Gather widens half-precision storage to f32 in the same pass that
    // materializes the subgraph's rows — no second conversion sweep.
    let mut gathered = entry.features.gather_rows_f32(sub.locals());
    if let Some(feats) = &feats {
        // Client-supplied rows replace the registered features for the
        // seeds only; sampled neighbors keep the stored rows.
        for (i, &local) in sub.seed_locals().iter().enumerate() {
            gathered.row_mut(local as usize).copy_from_slice(feats.row(i));
        }
    }
    let sample = sample_start.elapsed();

    // Schedule lookup: subgraphs of similar size share a tuned partition
    // count via the shape-bucketed key; only bucket-cold requests pay the
    // autotune probe.
    let key = PlanKey::cpu_sampled(
        entry.graph_id,
        model_name,
        shared.cfg.kernel_threads,
        sub.num_vertices(),
        sub.num_edges(),
    )
    .with_dtype(entry.features.dtype());
    let mut compile = Duration::ZERO;
    let (plan, hit) = shared.plans.get_or_insert(&key, || {
        let _compile_span = span!("serve/plan_compile", "model={model_name} sampled");
        let t0 = Instant::now();
        let partitions =
            FeatgraphBackend::auto_partitions(sub_gnn.fwd(), entry.features.cols());
        compile = t0.elapsed();
        (CachedPlan::Sampled { partitions }, SAMPLED_SCHEDULE_COST)
    });
    let slot = if hit {
        &shared.stats.plan_hits
    } else {
        &shared.stats.plan_misses
    };
    slot.fetch_add(1, Ordering::Relaxed);
    let partitions = match &*plan {
        CachedPlan::Sampled { partitions } => *partitions,
        // Full-graph, sampled, and sharded keys live in disjoint options
        // namespaces.
        _ => unreachable!("sampled plan key resolved to a non-sampled plan"),
    };
    let backend = FeatgraphBackend::cpu_with_partitions(shared.cfg.kernel_threads, partitions);

    let seed_locals: Vec<usize> = sub.seed_locals().iter().map(|&l| l as usize).collect();
    let exec_start = Instant::now();
    let result = {
        let _infer_span = span!(
            "serve/infer",
            "model={model_name} seeds={} sub_v={} sub_e={}",
            seeds.len(),
            sub.num_vertices(),
            sub.num_edges()
        );
        let _mem = MemScope::enter(MemComponent::ServeBatch);
        infer_batch(
            entry.model.as_ref(),
            &sub_gnn,
            &gathered,
            &backend,
            &seed_locals,
        )
    };
    let execute = exec_start.elapsed();
    match result {
        Ok(rows) => {
            let results: Vec<InferResponse> = rows
                .into_iter()
                .map(|logits| InferResponse {
                    class: argmax(&logits),
                    logits,
                })
                .collect();
            let total = job.accepted.elapsed();
            let queue_wait = pulled.duration_since(job.accepted);
            shared.stats.record_phase(Phase::QueueWait, queue_wait);
            shared.stats.record_phase(Phase::BatchForm, batch_form);
            shared.stats.record_phase(Phase::Sample, sample);
            shared.stats.record_phase(Phase::PlanCompile, compile);
            shared.stats.record_phase(Phase::Execute, execute);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared.stats.latency.record(total);
            let total_ms = total.as_secs_f64() * 1e3;
            if shared.cfg.slow_ms.is_some_and(|t| total_ms >= t) {
                shared.slow_log.push(SlowEntry {
                    seq: 0,
                    trace_id: job.trace.trace_id,
                    sampled: job.trace.sampled,
                    model: model_name.to_string(),
                    node: seeds.first().copied().unwrap_or(0),
                    total_ms,
                    queue_ms: queue_wait.as_secs_f64() * 1e3,
                    batch_ms: batch_form.as_secs_f64() * 1e3,
                    sample_ms: sample.as_secs_f64() * 1e3,
                    compile_ms: compile.as_secs_f64() * 1e3,
                    execute_ms: execute.as_secs_f64() * 1e3,
                });
            }
            reply.send(Ok(SeedsResponse {
                results,
                sub_vertices: sub.num_vertices(),
                sub_edges: sub.num_edges(),
            }));
        }
        Err(err) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            reply.send(Err(ServeError::Infer(err.to_string())));
        }
    }
}

/// Index of the largest logit (ties break low, matching training's argmax).
fn argmax(logits: &[f32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

/// The node a slow-log entry should name for a node job.
fn nodes_first(job: &Job) -> usize {
    match &job.payload {
        Payload::Node { node, .. } => *node,
        Payload::Seeds { seeds, .. } => seeds.first().copied().unwrap_or(0),
    }
}
