//! Bounded multi-producer batching queue with a deadline-or-size dispatch
//! trigger, built on `Mutex` + `Condvar` (no async runtime).
//!
//! Producers [`Batcher::push`] individual items; consumers block in
//! [`Batcher::next_batch`] until either
//!
//! * **size trigger** — at least `max_batch` items are queued (fires
//!   immediately, preempting any pending deadline), or
//! * **deadline trigger** — the *oldest* queued item has waited `max_delay`
//!   (a partial batch is dispatched rather than stalling the head request).
//!
//! The queue is bounded: once `capacity` items are waiting, `push` fails
//! fast with [`PushError::Overloaded`] instead of blocking the producer —
//! that is the overload-shedding contract the engine surfaces as a typed
//! error. [`Batcher::close`] initiates a graceful drain: queued items are
//! still handed out in batches, and `next_batch` returns `None` only once
//! the queue is empty.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fg_telemetry::{gauge_set, histogram_record, Gauge, Histogram};

/// Observer of queue dynamics, called by the batcher with its lock held —
/// implementations must be cheap and must not call back into the batcher.
/// This is how always-on engine stats see depth/batch-size without the
/// batcher depending on the stats types (or on telemetry being compiled
/// in).
pub trait QueueObserver: Send + Sync {
    /// Queue depth changed (after a push or a batch take).
    fn on_depth(&self, _depth: usize) {}
    /// A batch of `size` items was dispatched.
    fn on_batch(&self, _size: usize) {}
}

/// Dispatch and capacity knobs for a [`Batcher`].
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Maximum queued (not yet dispatched) items before `push` sheds.
    pub capacity: usize,
    /// Size trigger: dispatch as soon as this many items are queued.
    pub max_batch: usize,
    /// Deadline trigger: dispatch a partial batch once the oldest item has
    /// waited this long.
    pub max_delay: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            capacity: 1024,
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Why a [`Batcher::push`] was rejected. The item is handed back so the
/// caller can reply to it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item was shed.
    Overloaded(T),
    /// The batcher was closed; no new work is accepted.
    Closed(T),
}

struct Entry<T> {
    enqueued: Instant,
    item: T,
}

struct State<T> {
    queue: VecDeque<Entry<T>>,
    closed: bool,
}

/// See the [module docs](self).
pub struct Batcher<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cfg: BatcherConfig,
    observer: Option<Arc<dyn QueueObserver>>,
}

impl<T> Batcher<T> {
    /// Create an empty batcher. `max_batch` and `capacity` are clamped to
    /// at least 1.
    pub fn new(cfg: BatcherConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Like [`new`](Self::new), with a [`QueueObserver`] notified on every
    /// depth change and batch dispatch.
    pub fn with_observer(cfg: BatcherConfig, observer: Arc<dyn QueueObserver>) -> Self {
        Self::build(cfg, Some(observer))
    }

    fn build(cfg: BatcherConfig, observer: Option<Arc<dyn QueueObserver>>) -> Self {
        let cfg = BatcherConfig {
            capacity: cfg.capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            max_delay: cfg.max_delay,
        };
        Batcher {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cfg,
            observer,
        }
    }

    /// Enqueue one item, failing fast when full or closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.queue.len() >= self.cfg.capacity {
            return Err(PushError::Overloaded(item));
        }
        st.queue.push_back(Entry {
            enqueued: Instant::now(),
            item,
        });
        gauge_set(Gauge::ServeQueueDepth, st.queue.len() as f64);
        if let Some(obs) = &self.observer {
            obs.on_depth(st.queue.len());
        }
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a batch is ready (size or deadline trigger) or the
    /// batcher is closed *and* drained, in which case `None` is returned.
    /// Batches never exceed `max_batch` items and preserve arrival order.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.queue.len() >= self.cfg.max_batch || (st.closed && !st.queue.is_empty()) {
                return Some(self.take_batch(&mut st));
            }
            if st.closed {
                return None;
            }
            if st.queue.is_empty() {
                st = self.ready.wait(st).unwrap();
                continue;
            }
            let deadline = st.queue.front().unwrap().enqueued + self.cfg.max_delay;
            let now = Instant::now();
            if now >= deadline {
                return Some(self.take_batch(&mut st));
            }
            // Sleep until the head deadline, the size trigger, or close —
            // wakeups re-evaluate every condition above.
            let (guard, _) = self.ready.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    fn take_batch(&self, st: &mut State<T>) -> Vec<T> {
        let n = st.queue.len().min(self.cfg.max_batch);
        let batch: Vec<T> = st.queue.drain(..n).map(|e| e.item).collect();
        gauge_set(Gauge::ServeQueueDepth, st.queue.len() as f64);
        histogram_record(Histogram::ServeBatchSize, batch.len() as u64);
        if let Some(obs) = &self.observer {
            obs.on_depth(st.queue.len());
            obs.on_batch(batch.len());
        }
        if !st.queue.is_empty() {
            // Leftover items may already satisfy a trigger; hand them to
            // another waiting worker instead of letting them ride out a
            // fresh timeout.
            self.ready.notify_one();
        }
        batch
    }

    /// Stop accepting new items and wake every waiter. Already-queued items
    /// are still dispatched (graceful drain).
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (excludes dispatched batches).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn cfg(capacity: usize, max_batch: usize, max_delay_ms: u64) -> BatcherConfig {
        BatcherConfig {
            capacity,
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
        }
    }

    #[test]
    fn deadline_trigger_fires_with_partial_batch() {
        let b = Batcher::new(cfg(64, 16, 20));
        b.push(1u32).unwrap();
        b.push(2).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch, vec![1, 2], "partial batch dispatched in order");
        assert!(
            waited >= Duration::from_millis(10),
            "returned after {waited:?}, before the deadline could fire"
        );
    }

    #[test]
    fn size_trigger_preempts_deadline() {
        // With an hour-long deadline only the size trigger can fire.
        let b = Arc::new(Batcher::new(cfg(64, 4, 3_600_000)));
        let consumer = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.next_batch())
        };
        for i in 0..4u32 {
            b.push(i).unwrap();
        }
        let batch = consumer.join().unwrap().unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
    }

    #[test]
    fn batches_never_exceed_max_batch() {
        let b = Batcher::new(cfg(64, 3, 0));
        for i in 0..8u32 {
            b.push(i).unwrap();
        }
        let mut seen = Vec::new();
        while seen.len() < 8 {
            let batch = b.next_batch().unwrap();
            assert!(batch.len() <= 3);
            seen.extend(batch);
        }
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shedding_kicks_in_at_capacity() {
        let b = Batcher::new(cfg(3, 8, 1_000));
        for i in 0..3u32 {
            b.push(i).unwrap();
        }
        match b.push(99) {
            Err(PushError::Overloaded(item)) => assert_eq!(item, 99),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Draining makes room again.
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 3);
        b.push(99).unwrap();
    }

    #[test]
    fn close_drains_then_returns_none() {
        let b = Batcher::new(cfg(64, 2, 3_600_000));
        for i in 0..5u32 {
            b.push(i).unwrap();
        }
        b.close();
        assert!(matches!(b.push(6), Err(PushError::Closed(6))));
        let mut seen = Vec::new();
        while let Some(batch) = b.next_batch() {
            seen.extend(batch);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "queued items drain after close");
        assert!(b.next_batch().is_none(), "stays closed");
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let b = Arc::new(Batcher::<u32>::new(cfg(64, 8, 3_600_000)));
        let consumer = {
            let b = Arc::clone(&b);
            thread::spawn(move || b.next_batch())
        };
        thread::sleep(Duration::from_millis(20));
        b.close();
        assert!(consumer.join().unwrap().is_none());
    }

    #[test]
    fn observer_sees_depth_and_batch_sizes() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Default)]
        struct Probe {
            max_depth: AtomicU64,
            batches: Mutex<Vec<usize>>,
        }
        impl QueueObserver for Probe {
            fn on_depth(&self, depth: usize) {
                self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
            }
            fn on_batch(&self, size: usize) {
                self.batches.lock().unwrap().push(size);
            }
        }

        let probe = Arc::new(Probe::default());
        let b = Batcher::with_observer(cfg(64, 3, 0), Arc::clone(&probe) as _);
        for i in 0..5u32 {
            b.push(i).unwrap();
        }
        assert_eq!(probe.max_depth.load(Ordering::Relaxed), 5);
        let mut seen = 0;
        while seen < 5 {
            seen += b.next_batch().unwrap().len();
        }
        assert_eq!(*probe.batches.lock().unwrap(), vec![3, 2]);
    }

    #[test]
    fn multi_producer_multi_consumer_loses_nothing() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 250;
        let b = Arc::new(Batcher::new(cfg(usize::MAX, 16, 1)));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = b.next_batch() {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        b.push((p, i)).unwrap();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        b.close();
        let mut all: Vec<(usize, usize)> = Vec::new();
        for h in consumers {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "no item lost or duplicated");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "no duplicates");
    }
}
