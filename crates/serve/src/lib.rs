//! # fg-serve — batched, backpressured GNN inference serving
//!
//! An embedded inference engine over the `fg-gnn` stack: concurrent
//! single-node requests are coalesced into batches on a
//! **deadline-or-size** trigger, answered by **one** full-graph forward
//! pass per batch, and executed against a **compiled-plan cache** so every
//! batch after the first skips kernel compilation. No async runtime — the
//! batching queue, reply channels, and worker pool are hand-rolled on
//! `std::sync` primitives, matching the workspace's no-external-deps rule.
//!
//! ```text
//!  clients ──INFER──▶ admission ──▶ [bounded queue] ──▶ worker pool
//!                        │shed           │deadline-or-size   │
//!                        ▼               ▼ batches           ▼
//!                  ERR overloaded   Batcher<Job>     infer_batch (1 fwd pass)
//!                                                        │
//!                                   PlanCache(graph,model,opts) ─▶ kernels
//! ```
//!
//! Layers:
//!
//! * [`batcher`] — bounded MPSC queue with deadline-or-size dispatch and
//!   overload shedding.
//! * [`engine`] — admission control, per-request deadlines, worker pool,
//!   graceful drain, typed [`engine::ServeError`]s.
//! * [`plan_cache`] — `(graph id, model, options)` → compiled backend,
//!   optionally **byte-bounded** with LRU eviction
//!   ([`engine::ServeConfig::plan_cache_bytes`]).
//! * [`stats`] — always-on p50/p95/p99 latency, **per-phase**
//!   (queue-wait / batch-form / sample / plan-compile / execute /
//!   exchange / serialize) quantiles, queue-depth/batch-size
//!   distributions, event counters, and
//!   the slow-request log (`fg-telemetry` counters/gauges/histograms ride
//!   along when the `telemetry` feature is on).
//! * [`metrics`] — Prometheus-style text exposition behind the `METRICS`
//!   wire command (always-on `fgserve_*` series plus the telemetry
//!   registry).
//! * [`protocol`] / [`server`] — line-oriented TCP front-end for the
//!   `fgserve` binary.
//!
//! Observability: every request gets a trace id from a 1-in-N
//! [`fg_telemetry::TraceSampler`] ([`engine::ServeConfig::trace_sample`]);
//! sampled requests thread that id through the front-end, batcher, worker,
//! and kernel spans, producing one coherent Chrome-trace tree per request.
//!
//! Memory: the engine rides on `fg-telemetry`'s byte-level accountant —
//! graph topology, features, model params, batch scratch, and plan-cache
//! cost are attributed per component, surfaced via the `MEMORY` wire
//! command and `fgserve_mem_*` metric series
//! ([`engine::Engine::memory_report`]), and optionally enforced by the
//! [`engine::ServeConfig::mem_budget`] admission gate, which sheds with
//! [`engine::ServeError::OverMemoryBudget`] before allocating.

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod frame;
pub mod metrics;
pub mod oneshot;
pub mod plan_cache;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod protocol;
pub mod server;
pub mod stats;

pub use batcher::{Batcher, BatcherConfig, PushError, QueueObserver};
pub use engine::{
    Engine, InferRequest, InferResponse, InferSeedsRequest, MemoryReport, SeedsResponse,
    SeedsTicket, ServeConfig, ServeError, ShardLine, ShardsReport, Ticket, DEFAULT_SAMPLE_HOPS,
};
pub use plan_cache::{PlanCache, PlanKey};
pub use server::{serve, ServerHandle};
pub use stats::{ConnSnapshot, ConnStats, LatencySnapshot, Phase, SlowEntry, StatsSnapshot};
