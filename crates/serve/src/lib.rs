//! # fg-serve — batched, backpressured GNN inference serving
//!
//! An embedded inference engine over the `fg-gnn` stack: concurrent
//! single-node requests are coalesced into batches on a
//! **deadline-or-size** trigger, answered by **one** full-graph forward
//! pass per batch, and executed against a **compiled-plan cache** so every
//! batch after the first skips kernel compilation. No async runtime — the
//! batching queue, reply channels, and worker pool are hand-rolled on
//! `std::sync` primitives, matching the workspace's no-external-deps rule.
//!
//! ```text
//!  clients ──INFER──▶ admission ──▶ [bounded queue] ──▶ worker pool
//!                        │shed           │deadline-or-size   │
//!                        ▼               ▼ batches           ▼
//!                  ERR overloaded   Batcher<Job>     infer_batch (1 fwd pass)
//!                                                        │
//!                                   PlanCache(graph,model,opts) ─▶ kernels
//! ```
//!
//! Layers:
//!
//! * [`batcher`] — bounded MPSC queue with deadline-or-size dispatch and
//!   overload shedding.
//! * [`engine`] — admission control, per-request deadlines, worker pool,
//!   graceful drain, typed [`engine::ServeError`]s.
//! * [`plan_cache`] — `(graph id, model, options)` → compiled backend.
//! * [`stats`] — always-on p50/p95/p99 latency and event counters
//!   (`fg-telemetry` counters/gauges/histograms ride along when the
//!   `telemetry` feature is on).
//! * [`protocol`] / [`server`] — line-oriented TCP front-end for the
//!   `fgserve` binary.

#![warn(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod oneshot;
pub mod plan_cache;
pub mod protocol;
pub mod server;
pub mod stats;

pub use batcher::{Batcher, BatcherConfig, PushError};
pub use engine::{Engine, InferRequest, InferResponse, ServeConfig, ServeError, Ticket};
pub use plan_cache::{PlanCache, PlanKey};
pub use server::{serve, ServerHandle};
pub use stats::{LatencySnapshot, StatsSnapshot};
