//! TCP front-end: a readiness-polled acceptor multiplexing every
//! connection over one epoll instance, serviced by a **fixed pool** of
//! connection handlers — no thread-per-connection.
//!
//! On Linux the acceptor thread owns a [`crate::poll::Poller`]: the
//! listener is registered level-triggered, every accepted connection
//! `EPOLLONESHOT` — a readiness event removes the connection from the
//! shared map and queues its token for the handler pool, and the oneshot
//! registration guarantees no second handler can pick the same connection
//! up until the first one re-arms it. Handlers drain the socket with
//! nonblocking reads, process every *complete* message in the buffer
//! (blocking writes for replies), then re-insert the connection and re-arm.
//! Admission control happens at accept: beyond
//! [`crate::engine::ServeConfig::max_conns`] live connections, new accepts
//! are shed immediately (counted, connection closed) instead of piling
//! onto the handler pool. Off Linux the same per-connection state machine
//! runs on a blocking thread-per-connection fallback.
//!
//! Both wire protocols share the front-end. A connection's first bytes
//! pick its mode: the [`crate::frame::MAGIC`] prefix selects the binary
//! frame protocol for the connection's lifetime, anything else is parsed
//! as text lines ([`crate::protocol`]). Replies always use the requesting
//! connection's protocol. Malformed input — unparsable text line,
//! undecodable frame payload — produces a typed error reply and the
//! connection stays usable; only unrecoverable framing damage (wrong
//! magic mid-stream, oversized declared length) closes it.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use fg_telemetry::{span, TraceScope};

use crate::engine::{Engine, InferRequest, InferSeedsRequest};
use crate::frame::{self, Frame, FrameError, WireReply, HEADER_LEN, MAGIC, MAX_PAYLOAD};
use crate::protocol::{self, Request};
use crate::stats::ConnStats;

/// Read chunk size for the handler drain loop.
const READ_CHUNK: usize = 64 * 1024;

/// Hard cap on buffered-but-unconsumed bytes per connection: one maximal
/// frame plus its header, with headroom for a pipelined follow-up header.
const MAX_BUFFER: usize = MAX_PAYLOAD as usize + 2 * HEADER_LEN;

/// A running server; dropping it does **not** stop the acceptor — call
/// [`shutdown`](Self::shutdown) or [`join`](Self::join).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Block until the acceptor exits (i.e. until a `SHUTDOWN` arrives or
    /// [`shutdown`](Self::shutdown) is called from another thread).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting connections and gracefully drain the engine.
    pub fn shutdown(mut self) {
        request_stop(&self.stop, self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.engine.shutdown();
    }
}

/// Ask the acceptor to exit: set the flag, then poke the listener with a
/// throwaway connection so the blocking `accept`/`epoll_wait` wakes up.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

/// Bind `addr` and serve `engine` until shut down. Pass port 0 to let the
/// OS pick; read the result from [`ServerHandle::addr`].
pub fn serve<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("fgserve-acceptor".into())
            .spawn(move || run_front_end(listener, engine, stop))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        engine,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Handler-pool size: configured value, or one handler per available core
/// (bounded) when the config says auto.
fn handler_pool_size(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16)
}

// ---- per-connection state machine --------------------------------------

/// Wire mode, fixed by the connection's first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proto {
    /// Not enough bytes seen yet to sniff.
    Unknown,
    /// Line-oriented text protocol.
    Text,
    /// Length-prefixed binary frame protocol.
    Binary,
}

/// One live connection: its socket, negotiated protocol, and any bytes
/// read but not yet forming a complete message.
struct ConnState {
    stream: TcpStream,
    proto: Proto,
    buf: Vec<u8>,
}

/// What servicing decided about the connection's future.
#[derive(Debug, PartialEq, Eq)]
enum ConnAction {
    /// Keep the connection; wait for more input.
    Keep,
    /// Close it (EOF, IO error, or unrecoverable framing damage).
    Close,
    /// Client asked the whole server to shut down.
    Shutdown,
}

/// Drain readable bytes without blocking, process every complete message,
/// and say what to do with the connection. Shared by the epoll handlers
/// and the fallback threads (which call it after a blocking read instead
/// of the nonblocking drain).
fn service_conn(engine: &Engine, conn: &mut ConnState, conn_stats: &ConnStats) -> ConnAction {
    let mut saw_eof = false;
    if conn.stream.set_nonblocking(true).is_err() {
        return ConnAction::Close;
    }
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if conn.buf.len() > MAX_BUFFER {
                    // A message this large can never become valid; drop the
                    // connection rather than buffering unboundedly.
                    let _ = conn.stream.set_nonblocking(false);
                    return ConnAction::Close;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                saw_eof = true;
                break;
            }
        }
    }
    if conn.stream.set_nonblocking(false).is_err() {
        return ConnAction::Close;
    }
    match process_buffer(engine, conn, conn_stats) {
        ConnAction::Keep if saw_eof => ConnAction::Close,
        other => other,
    }
}

/// Consume every complete message currently buffered. Partial trailing
/// input stays in `conn.buf` for the next readiness event.
fn process_buffer(engine: &Engine, conn: &mut ConnState, conn_stats: &ConnStats) -> ConnAction {
    loop {
        if conn.proto == Proto::Unknown {
            if conn.buf.len() >= MAGIC.len() {
                if conn.buf[..MAGIC.len()] == MAGIC {
                    conn.proto = Proto::Binary;
                    conn_stats.binary_conns.fetch_add(1, Ordering::Relaxed);
                } else {
                    conn.proto = Proto::Text;
                    conn_stats.text_conns.fetch_add(1, Ordering::Relaxed);
                }
            } else if conn.buf.contains(&b'\n') {
                // A complete line shorter than the magic is necessarily
                // text.
                conn.proto = Proto::Text;
                conn_stats.text_conns.fetch_add(1, Ordering::Relaxed);
            } else {
                return ConnAction::Keep;
            }
        }
        let action = match conn.proto {
            Proto::Text => match next_line(&mut conn.buf) {
                None => return ConnAction::Keep,
                Some(line) => handle_text_line(engine, &line, &mut conn.stream, conn_stats),
            },
            Proto::Binary => match next_frame(&mut conn.buf) {
                FrameStep::Incomplete => return ConnAction::Keep,
                FrameStep::Frame(frame) => {
                    handle_frame(engine, frame, &mut conn.stream, conn_stats)
                }
                FrameStep::Broken(err) => {
                    // Framing is unrecoverable: answer once, then close.
                    conn_stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    let reply = WireReply::Err {
                        id: "-".into(),
                        code: "bad-frame".into(),
                        detail: err.to_string(),
                    };
                    let _ = frame::write_frame(&mut conn.stream, &frame::encode_reply(&reply));
                    ConnAction::Close
                }
            },
            Proto::Unknown => unreachable!("sniffed above"),
        };
        if action != ConnAction::Keep {
            return action;
        }
    }
}

/// Split one `\n`-terminated line off the front of `buf` (CR stripped).
fn next_line(buf: &mut Vec<u8>) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let rest = buf.split_off(pos + 1);
    let mut line = std::mem::replace(buf, rest);
    line.pop(); // the \n
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Some(String::from_utf8_lossy(&line).into_owned())
}

/// One step of binary frame extraction from a byte buffer.
enum FrameStep {
    /// Header or payload not fully buffered yet.
    Incomplete,
    /// A complete frame, consumed from the buffer.
    Frame(Frame),
    /// Framing damage — the stream cannot be resynchronized.
    Broken(FrameError),
}

/// Pop one complete frame off the front of `buf`, validating the header.
fn next_frame(buf: &mut Vec<u8>) -> FrameStep {
    if buf.len() < HEADER_LEN {
        return FrameStep::Incomplete;
    }
    if buf[..4] != MAGIC {
        return FrameStep::Broken(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
        return FrameStep::Broken(FrameError::Malformed(
            "non-zero reserved header bytes".into(),
        ));
    }
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_PAYLOAD {
        return FrameStep::Broken(FrameError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return FrameStep::Incomplete;
    }
    let ty = buf[4];
    let rest = buf.split_off(total);
    let mut frame_bytes = std::mem::replace(buf, rest);
    frame_bytes.drain(..HEADER_LEN);
    FrameStep::Frame(Frame {
        ty,
        payload: frame_bytes,
    })
}

// ---- request dispatch ---------------------------------------------------

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writeln!(writer, "{line}")?;
    writer.flush()
}

/// Multi-line declared-count body shared by MEMORY/SHARDS (text bytes are
/// identical on both protocols).
fn counted_body(header: &str, tag: &str, lines: &[String]) -> String {
    let mut out = format!("{header} {}\n", lines.len());
    for line in lines {
        out.push_str(tag);
        out.push(' ');
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn slowlog_body(engine: &Engine, limit: Option<usize>) -> String {
    let entries = engine.slow_requests(limit);
    let mut out = format!("SLOWLOG {}\n", entries.len());
    for entry in &entries {
        out.push_str(&entry.to_wire_line());
        out.push('\n');
    }
    out
}

/// Serve one parsed text line, writing the reply in text form.
fn handle_text_line(
    engine: &Engine,
    line: &str,
    writer: &mut TcpStream,
    conn_stats: &ConnStats,
) -> ConnAction {
    if line.trim().is_empty() {
        return ConnAction::Keep;
    }
    let written = match protocol::parse_request(line) {
        Err(msg) => {
            conn_stats.bad_lines.fetch_add(1, Ordering::Relaxed);
            write_line(writer, &protocol::format_bad_request(&msg))
        }
        Ok(Request::Shutdown) => {
            let _ = write_line(writer, "BYE");
            return ConnAction::Shutdown;
        }
        Ok(Request::Ping) => write_line(writer, "PONG"),
        Ok(Request::Stats) => {
            let _span = span!("serve/request", "verb=STATS");
            write_line(writer, &format!("STATS {}", engine.stats().to_wire_line()))
        }
        Ok(Request::Metrics) => {
            // Multi-line reply; the exposition already ends with the
            // "# EOF" terminator line clients read up to.
            let text = engine.metrics_text();
            writer.write_all(text.as_bytes()).and_then(|_| writer.flush())
        }
        Ok(Request::Memory) => {
            let _span = span!("serve/request", "verb=MEMORY");
            let body = counted_body("MEMORY", "MEM", &engine.memory_report().to_wire_lines());
            writer.write_all(body.as_bytes()).and_then(|_| writer.flush())
        }
        Ok(Request::Shards) => {
            let _span = span!("serve/request", "verb=SHARDS");
            let body = counted_body("SHARDS", "SHARD", &engine.shards_report().to_wire_lines());
            writer.write_all(body.as_bytes()).and_then(|_| writer.flush())
        }
        Ok(Request::SlowLog { limit }) => {
            let body = slowlog_body(engine, limit);
            writer.write_all(body.as_bytes()).and_then(|_| writer.flush())
        }
        Ok(req @ Request::Infer { .. }) => {
            let deadline = req.deadline();
            let Request::Infer { model, node, id, .. } = req else {
                unreachable!()
            };
            // Mint the trace before submitting so this front-end span
            // and every engine/kernel span below it share one trace id.
            let trace = engine.mint_trace();
            let _scope = TraceScope::enter(trace);
            let _span = span!(
                "serve/request",
                "model={model} node={node} trace={:#x}",
                trace.trace_id
            );
            let result = engine
                .submit_traced(
                    InferRequest {
                        model,
                        node,
                        deadline,
                    },
                    trace,
                )
                .and_then(|ticket| ticket.wait());
            // Serialize phase: reply formatting plus the socket write.
            let ser_start = Instant::now();
            let reply = match result {
                Ok(resp) => protocol::format_ok(id.as_deref(), &resp),
                Err(err) => protocol::format_err(id.as_deref(), &err),
            };
            let written = write_line(writer, &reply);
            engine.record_serialize(ser_start.elapsed());
            written
        }
        Ok(req @ Request::InferSeeds { .. }) => {
            let deadline = req.deadline();
            let Request::InferSeeds {
                model,
                seeds,
                fanouts,
                sample_seed,
                feats,
                id,
                ..
            } = req
            else {
                unreachable!()
            };
            let trace = engine.mint_trace();
            let _scope = TraceScope::enter(trace);
            let _span = span!(
                "serve/request",
                "model={model} seeds={} trace={:#x}",
                seeds.len(),
                trace.trace_id
            );
            let result = engine
                .submit_seeds_traced(
                    InferSeedsRequest {
                        model,
                        seeds: seeds.clone(),
                        fanouts,
                        sample_seed,
                        feats,
                        deadline,
                    },
                    trace,
                )
                .and_then(|ticket| ticket.wait());
            // Serialize phase: reply formatting plus the socket write.
            let ser_start = Instant::now();
            let out = match result {
                Ok(resp) => {
                    // Declared-count multi-line reply, MEMORY-style.
                    let mut out = String::new();
                    for line in protocol::format_seeds_ok(id.as_deref(), &seeds, &resp) {
                        out.push_str(&line);
                        out.push('\n');
                    }
                    out
                }
                Err(err) => format!("{}\n", protocol::format_err(id.as_deref(), &err)),
            };
            let written = writer.write_all(out.as_bytes()).and_then(|_| writer.flush());
            engine.record_serialize(ser_start.elapsed());
            written
        }
    };
    if written.is_err() {
        ConnAction::Close
    } else {
        ConnAction::Keep
    }
}

/// Serve one binary frame, writing the reply as a frame.
fn handle_frame(
    engine: &Engine,
    frame: Frame,
    writer: &mut TcpStream,
    conn_stats: &ConnStats,
) -> ConnAction {
    let req = match frame::decode_request(&frame) {
        Ok(req) => req,
        Err(err) => {
            // Structurally bad payload inside an intact frame: typed error,
            // connection stays alive.
            conn_stats.bad_frames.fetch_add(1, Ordering::Relaxed);
            let reply = WireReply::Err {
                id: "-".into(),
                code: "bad-request".into(),
                detail: err.to_string(),
            };
            return write_reply(writer, &reply, ConnAction::Keep);
        }
    };
    let (reply, action) = match req {
        Request::Shutdown => (WireReply::Bye, ConnAction::Shutdown),
        Request::Ping => (WireReply::Pong, ConnAction::Keep),
        Request::Stats => {
            let _span = span!("serve/request", "verb=STATS");
            (
                WireReply::Text(format!("STATS {}\n", engine.stats().to_wire_line())),
                ConnAction::Keep,
            )
        }
        Request::Metrics => (WireReply::Text(engine.metrics_text()), ConnAction::Keep),
        Request::Memory => {
            let _span = span!("serve/request", "verb=MEMORY");
            (
                WireReply::Text(counted_body(
                    "MEMORY",
                    "MEM",
                    &engine.memory_report().to_wire_lines(),
                )),
                ConnAction::Keep,
            )
        }
        Request::Shards => {
            let _span = span!("serve/request", "verb=SHARDS");
            (
                WireReply::Text(counted_body(
                    "SHARDS",
                    "SHARD",
                    &engine.shards_report().to_wire_lines(),
                )),
                ConnAction::Keep,
            )
        }
        Request::SlowLog { limit } => (
            WireReply::Text(slowlog_body(engine, limit)),
            ConnAction::Keep,
        ),
        Request::Infer {
            model,
            node,
            id,
            deadline_ms,
        } => {
            let deadline = deadline_ms.map(std::time::Duration::from_millis);
            let trace = engine.mint_trace();
            let _scope = TraceScope::enter(trace);
            let _span = span!(
                "serve/request",
                "model={model} node={node} trace={:#x}",
                trace.trace_id
            );
            let result = engine
                .submit_traced(
                    InferRequest {
                        model,
                        node,
                        deadline,
                    },
                    trace,
                )
                .and_then(|ticket| ticket.wait());
            let id = id.unwrap_or_else(|| "-".into());
            let reply = match result {
                Ok(resp) => WireReply::Ok { id, resp },
                Err(err) => WireReply::Err {
                    id,
                    code: err.code().into(),
                    detail: err.to_string(),
                },
            };
            (reply, ConnAction::Keep)
        }
        Request::InferSeeds {
            model,
            seeds,
            fanouts,
            sample_seed,
            feats,
            id,
            deadline_ms,
        } => {
            let deadline = deadline_ms.map(std::time::Duration::from_millis);
            let trace = engine.mint_trace();
            let _scope = TraceScope::enter(trace);
            let _span = span!(
                "serve/request",
                "model={model} seeds={} trace={:#x}",
                seeds.len(),
                trace.trace_id
            );
            let result = engine
                .submit_seeds_traced(
                    InferSeedsRequest {
                        model,
                        seeds: seeds.clone(),
                        fanouts,
                        sample_seed,
                        feats,
                        deadline,
                    },
                    trace,
                )
                .and_then(|ticket| ticket.wait());
            let id = id.unwrap_or_else(|| "-".into());
            let reply = match result {
                Ok(resp) => WireReply::Seeds { id, seeds, resp },
                Err(err) => WireReply::Err {
                    id,
                    code: err.code().into(),
                    detail: err.to_string(),
                },
            };
            (reply, ConnAction::Keep)
        }
    };
    // Serialize phase: frame encode plus the socket write.
    let ser_start = Instant::now();
    let action = write_reply(writer, &reply, action);
    engine.record_serialize(ser_start.elapsed());
    action
}

fn write_reply(writer: &mut TcpStream, reply: &WireReply, on_ok: ConnAction) -> ConnAction {
    match frame::write_frame(writer, &frame::encode_reply(reply)) {
        Ok(()) => on_ok,
        Err(_) => ConnAction::Close,
    }
}

// ---- Linux: epoll acceptor + fixed handler pool -------------------------

#[cfg(target_os = "linux")]
mod epoll_front {
    use super::*;
    use crate::poll::Poller;
    use std::collections::VecDeque;
    use std::os::fd::AsRawFd;

    /// Token 0 is the listener; connections start at 1.
    const LISTENER_TOKEN: u64 = 0;

    struct FrontEnd {
        poller: Poller,
        conns: Mutex<HashMap<u64, ConnState>>,
        queue: Mutex<VecDeque<u64>>,
        queue_cv: Condvar,
        stop: Arc<AtomicBool>,
        engine: Arc<Engine>,
        conn_stats: Arc<ConnStats>,
        addr: SocketAddr,
    }

    pub(super) fn run(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
        let addr = listener.local_addr().expect("listener addr");
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fgserve: epoll unavailable ({e}); falling back to blocking accept");
                return super::fallback_front::run(listener, engine, stop);
            }
        };
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        poller
            .add(listener.as_raw_fd(), LISTENER_TOKEN, false)
            .expect("register listener");
        let conn_stats = engine.conn_stats();
        let fe = Arc::new(FrontEnd {
            poller,
            conns: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop,
            engine,
            conn_stats,
            addr,
        });
        let handlers = handler_pool_size(fe.engine.config().conn_handlers);
        let mut pool = Vec::with_capacity(handlers);
        for i in 0..handlers {
            let fe = Arc::clone(&fe);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("fgserve-handler-{i}"))
                    .spawn(move || handler_loop(&fe))
                    .expect("spawn handler"),
            );
        }

        let mut next_token: u64 = 1;
        let mut events = Vec::with_capacity(64);
        while !fe.stop.load(Ordering::SeqCst) {
            events.clear();
            // Bounded wait so a stop requested between events is noticed
            // even if the poke connection raced ahead of the flag store.
            if fe.poller.wait(&mut events, 250).is_err() {
                break;
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    accept_ready(&fe, &listener, &mut next_token);
                } else {
                    // Oneshot registration: this token cannot fire again
                    // until a handler re-arms it, so each queue entry maps
                    // to exactly one service pass.
                    let depth = {
                        let mut q = fe.queue.lock().unwrap();
                        q.push_back(ev.token);
                        q.len()
                    };
                    fe.conn_stats.on_dispatch_depth(depth);
                    fe.queue_cv.notify_one();
                }
            }
        }
        // Drain: wake every handler so they observe stop and exit.
        fe.queue_cv.notify_all();
        for h in pool {
            let _ = h.join();
        }
    }

    fn accept_ready(fe: &Arc<FrontEnd>, listener: &TcpListener, next_token: &mut u64) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if fe.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let max = fe.engine.config().max_conns;
                    if max > 0 && fe.conn_stats.active.load(Ordering::Relaxed) >= max as u64 {
                        // Admission shed: close before the handler pool ever
                        // sees the connection.
                        fe.conn_stats
                            .admission_shed
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    // Request/reply messages are small; Nagle + delayed ACK
                    // would add tens of milliseconds per round trip.
                    let _ = stream.set_nodelay(true);
                    let token = *next_token;
                    *next_token += 1;
                    let fd = stream.as_raw_fd();
                    fe.conn_stats.accepted.fetch_add(1, Ordering::Relaxed);
                    fe.conn_stats.active.fetch_add(1, Ordering::Relaxed);
                    fe.conns.lock().unwrap().insert(
                        token,
                        ConnState {
                            stream,
                            proto: Proto::Unknown,
                            buf: Vec::new(),
                        },
                    );
                    if fe.poller.add(fd, token, true).is_err() {
                        close_conn(fe, token);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn close_conn(fe: &Arc<FrontEnd>, token: u64) {
        if let Some(conn) = fe.conns.lock().unwrap().remove(&token) {
            fe.poller.delete(conn.stream.as_raw_fd());
        }
        fe.conn_stats.active.fetch_sub(1, Ordering::Relaxed);
        fe.conn_stats.closed.fetch_add(1, Ordering::Relaxed);
    }

    fn handler_loop(fe: &Arc<FrontEnd>) {
        loop {
            let token = {
                let mut q = fe.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        fe.conn_stats
                            .dispatch_depth
                            .store(q.len() as u64, Ordering::Relaxed);
                        break Some(t);
                    }
                    if fe.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    q = fe.queue_cv.wait(q).unwrap();
                }
            };
            let Some(token) = token else { return };
            // Take ownership: the oneshot registration is spent, so no other
            // handler can race for this connection.
            let Some(mut conn) = fe.conns.lock().unwrap().remove(&token) else {
                continue;
            };
            match service_conn(&fe.engine, &mut conn, &fe.conn_stats) {
                ConnAction::Keep => {
                    let fd = conn.stream.as_raw_fd();
                    // Re-insert before re-arming: once the registration is
                    // live again an event may fire immediately, and the
                    // dispatching handler must find the connection in the
                    // map.
                    fe.conns.lock().unwrap().insert(token, conn);
                    if fe.poller.rearm(fd, token).is_err() {
                        close_conn(fe, token);
                    }
                }
                ConnAction::Close => {
                    fe.poller.delete(conn.stream.as_raw_fd());
                    drop(conn);
                    fe.conn_stats.active.fetch_sub(1, Ordering::Relaxed);
                    fe.conn_stats.closed.fetch_add(1, Ordering::Relaxed);
                }
                ConnAction::Shutdown => {
                    fe.poller.delete(conn.stream.as_raw_fd());
                    drop(conn);
                    fe.conn_stats.active.fetch_sub(1, Ordering::Relaxed);
                    fe.conn_stats.closed.fetch_add(1, Ordering::Relaxed);
                    request_stop(&fe.stop, fe.addr);
                    fe.queue_cv.notify_all();
                }
            }
        }
    }
}

// ---- fallback: blocking accept, thread-per-connection -------------------

mod fallback_front {
    use super::*;

    pub(super) fn run(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
        let addr = listener.local_addr().expect("listener addr");
        // The epoll path may hand over a nonblocking listener.
        let _ = listener.set_nonblocking(false);
        let conn_stats = engine.conn_stats();
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let max = engine.config().max_conns;
            if max > 0 && conn_stats.active.load(Ordering::Relaxed) >= max as u64 {
                conn_stats.admission_shed.fetch_add(1, Ordering::Relaxed);
                drop(stream);
                continue;
            }
            let _ = stream.set_nodelay(true);
            conn_stats.accepted.fetch_add(1, Ordering::Relaxed);
            conn_stats.active.fetch_add(1, Ordering::Relaxed);
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let conn_stats = Arc::clone(&conn_stats);
            let _ = std::thread::Builder::new()
                .name("fgserve-conn".into())
                .spawn(move || {
                    let mut conn = ConnState {
                        stream,
                        proto: Proto::Unknown,
                        buf: Vec::new(),
                    };
                    let mut chunk = [0u8; READ_CHUNK];
                    let outcome = loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => break ConnAction::Close,
                            Ok(n) => {
                                conn.buf.extend_from_slice(&chunk[..n]);
                                if conn.buf.len() > MAX_BUFFER {
                                    break ConnAction::Close;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => break ConnAction::Close,
                        }
                        match process_buffer(&engine, &mut conn, &conn_stats) {
                            ConnAction::Keep => {}
                            other => break other,
                        }
                        if stop.load(Ordering::SeqCst) {
                            break ConnAction::Close;
                        }
                    };
                    conn_stats.active.fetch_sub(1, Ordering::Relaxed);
                    conn_stats.closed.fetch_add(1, Ordering::Relaxed);
                    if outcome == ConnAction::Shutdown {
                        request_stop(&stop, addr);
                    }
                });
        }
    }
}

fn run_front_end(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
    #[cfg(target_os = "linux")]
    {
        epoll_front::run(listener, engine, stop)
    }
    #[cfg(not(target_os = "linux"))]
    {
        fallback_front::run(listener, engine, stop)
    }
}
