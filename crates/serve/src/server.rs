//! Blocking TCP front-end over `std::net`: one acceptor thread, one thread
//! per connection, one reply per request line (in order; `METRICS`,
//! `MEMORY`, and `SLOWLOG` replies span multiple lines with explicit
//! terminators/counts, everything else is a single line).
//!
//! The server owns an `Arc<Engine>`; `SHUTDOWN` (or
//! [`ServerHandle::shutdown`]) stops the acceptor, drains the engine, and
//! answers `BYE`. Connection threads are detached — in-flight requests
//! still get replies because engine shutdown drains the queue before
//! joining its workers.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use fg_telemetry::{span, TraceScope};

use crate::engine::{Engine, InferRequest, InferSeedsRequest};
use crate::protocol::{self, Request};

/// A running server; dropping it does **not** stop the acceptor — call
/// [`shutdown`](Self::shutdown) or [`join`](Self::join).
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Block until the acceptor exits (i.e. until a `SHUTDOWN` arrives or
    /// [`shutdown`](Self::shutdown) is called from another thread).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting connections and gracefully drain the engine.
    pub fn shutdown(mut self) {
        request_stop(&self.stop, self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.engine.shutdown();
    }
}

/// Ask the acceptor to exit: set the flag, then poke the listener with a
/// throwaway connection so the blocking `accept` wakes up.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

/// Bind `addr` and serve `engine` until shut down. Pass port 0 to let the
/// OS pick; read the result from [`ServerHandle::addr`].
pub fn serve<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("fgserve-acceptor".into())
            .spawn(move || accept_loop(listener, engine, stop))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        engine,
        stop,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: TcpListener, engine: Arc<Engine>, stop: Arc<AtomicBool>) {
    let addr = listener.local_addr().expect("listener addr");
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Request/reply lines are tiny; Nagle + delayed ACK would add tens
        // of milliseconds per round trip.
        let _ = stream.set_nodelay(true);
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let _ = std::thread::Builder::new()
            .name("fgserve-conn".into())
            .spawn(move || {
                if handle_connection(stream, &engine, &stop) == ConnOutcome::ShutdownRequested {
                    request_stop(&stop, addr);
                }
            });
    }
}

#[derive(PartialEq)]
enum ConnOutcome {
    Closed,
    ShutdownRequested,
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writeln!(writer, "{line}")?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool) -> ConnOutcome {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return ConnOutcome::Closed,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let written = match protocol::parse_request(&line) {
            Err(msg) => write_line(&mut writer, &protocol::format_bad_request(&msg)),
            Ok(Request::Ping) => write_line(&mut writer, "PONG"),
            Ok(Request::Stats) => {
                let _span = span!("serve/request", "verb=STATS");
                write_line(&mut writer, &format!("STATS {}", engine.stats().to_wire_line()))
            }
            Ok(Request::Metrics) => {
                // Multi-line reply; the exposition already ends with the
                // "# EOF" terminator line clients read up to.
                let text = engine.metrics_text();
                writer
                    .write_all(text.as_bytes())
                    .and_then(|_| writer.flush())
            }
            Ok(Request::Memory) => {
                let _span = span!("serve/request", "verb=MEMORY");
                let lines = engine.memory_report().to_wire_lines();
                let mut out = format!("MEMORY {}\n", lines.len());
                for line in &lines {
                    out.push_str("MEM ");
                    out.push_str(line);
                    out.push('\n');
                }
                writer
                    .write_all(out.as_bytes())
                    .and_then(|_| writer.flush())
            }
            Ok(Request::Shards) => {
                let _span = span!("serve/request", "verb=SHARDS");
                let lines = engine.shards_report().to_wire_lines();
                let mut out = format!("SHARDS {}\n", lines.len());
                for line in &lines {
                    out.push_str("SHARD ");
                    out.push_str(line);
                    out.push('\n');
                }
                writer
                    .write_all(out.as_bytes())
                    .and_then(|_| writer.flush())
            }
            Ok(Request::SlowLog { limit }) => {
                let entries = engine.slow_requests(limit);
                let mut out = format!("SLOWLOG {}\n", entries.len());
                for entry in &entries {
                    out.push_str(&entry.to_wire_line());
                    out.push('\n');
                }
                writer
                    .write_all(out.as_bytes())
                    .and_then(|_| writer.flush())
            }
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "BYE");
                return ConnOutcome::ShutdownRequested;
            }
            Ok(req @ Request::Infer { .. }) => {
                let deadline = req.deadline();
                let Request::Infer { model, node, id, .. } = req else {
                    unreachable!()
                };
                // Mint the trace before submitting so this front-end span
                // and every engine/kernel span below it share one trace id.
                let trace = engine.mint_trace();
                let _scope = TraceScope::enter(trace);
                let _span = span!(
                    "serve/request",
                    "model={model} node={node} trace={:#x}",
                    trace.trace_id
                );
                let result = engine
                    .submit_traced(
                        InferRequest {
                            model,
                            node,
                            deadline,
                        },
                        trace,
                    )
                    .and_then(|ticket| ticket.wait());
                // Serialize phase: reply formatting plus the socket write.
                let ser_start = Instant::now();
                let reply = match result {
                    Ok(resp) => protocol::format_ok(id.as_deref(), &resp),
                    Err(err) => protocol::format_err(id.as_deref(), &err),
                };
                let written = write_line(&mut writer, &reply);
                engine.record_serialize(ser_start.elapsed());
                written
            }
            Ok(req @ Request::InferSeeds { .. }) => {
                let deadline = req.deadline();
                let Request::InferSeeds {
                    model,
                    seeds,
                    fanouts,
                    sample_seed,
                    id,
                    ..
                } = req
                else {
                    unreachable!()
                };
                let trace = engine.mint_trace();
                let _scope = TraceScope::enter(trace);
                let _span = span!(
                    "serve/request",
                    "model={model} seeds={} trace={:#x}",
                    seeds.len(),
                    trace.trace_id
                );
                let result = engine
                    .submit_seeds_traced(
                        InferSeedsRequest {
                            model,
                            seeds: seeds.clone(),
                            fanouts,
                            sample_seed,
                            deadline,
                        },
                        trace,
                    )
                    .and_then(|ticket| ticket.wait());
                // Serialize phase: reply formatting plus the socket write.
                let ser_start = Instant::now();
                let out = match result {
                    Ok(resp) => {
                        // Declared-count multi-line reply, MEMORY-style.
                        let mut out = String::new();
                        for line in protocol::format_seeds_ok(id.as_deref(), &seeds, &resp) {
                            out.push_str(&line);
                            out.push('\n');
                        }
                        out
                    }
                    Err(err) => format!("{}\n", protocol::format_err(id.as_deref(), &err)),
                };
                let written = writer
                    .write_all(out.as_bytes())
                    .and_then(|_| writer.flush());
                engine.record_serialize(ser_start.elapsed());
                written
            }
        };
        if written.is_err() {
            break;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    ConnOutcome::Closed
}
