//! # fg-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! FeatGraph paper. Shared measurement code lives here; the `fgbench` binary
//! drives full sweeps and prints paper-style rows, and `benches/` holds
//! criterion benches (one per experiment) at reduced sizes.
//!
//! Graphs are the Table II stand-ins scaled down by `--scale` (vertex count
//! divided, average degree preserved — see `fg_graph::datasets`); absolute
//! times therefore differ from the paper's full-size numbers, but the
//! *relative* behaviour (who wins, by what factor, where crossovers fall) is
//! what each experiment reproduces. EXPERIMENTS.md records paper-vs-measured
//! for every row.

pub mod cpu_kernels;
pub mod gpu_kernels;
pub mod perf;
pub mod report;
pub mod runner;

pub use runner::{BenchConfig, KernelKind};

/// Default vertex-count divisor for CLI sweeps (keeps the full Table III/IV
/// sweep under ~half an hour on one core).
pub const DEFAULT_SCALE: usize = 96;

/// Default feature lengths, matching the paper's sweep.
pub const DEFAULT_LENGTHS: [usize; 5] = [32, 64, 128, 256, 512];
