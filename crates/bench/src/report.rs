//! Paper-style table formatting.

/// Format a seconds value like the paper's Table III (2 decimal places).
pub fn fmt_secs(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:10.3}"),
        None => format!("{:>10}", "-"),
    }
}

/// Format a milliseconds value like Table IV (1 decimal place).
pub fn fmt_ms(ms: Option<f64>) -> String {
    match ms {
        Some(v) => format!("{v:10.2}"),
        None => format!("{:>10}", "-"),
    }
}

/// Print a header row: label column plus one column per feature length.
pub fn header(label: &str, lengths: &[usize]) {
    print!("{label:<12}");
    for d in lengths {
        print!("{d:>10}");
    }
    println!();
}

/// A speedup string ("3.2x").
pub fn speedup(base: f64, improved: f64) -> String {
    if improved <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}x", base / improved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(None).trim(), "-");
        assert!(fmt_secs(Some(1.2345)).contains("1.234"));
        assert!(fmt_ms(Some(12.345)).contains("12.35"));
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "-");
    }
}
