//! CPU kernel measurements: FeatGraph vs Ligra vs MKL-like (Table III,
//! Figs. 10/11/14, Table V).

use featgraph::cpu::sddmm::{CpuSddmmOptions, Traversal};
use featgraph::cpu::spmm::CpuSpmmOptions;
use featgraph::{Fds, GraphTensors, Reducer, Target, Udf};
use fg_graph::Graph;
use fg_ligra::EdgeMapOptions;
use fg_tensor::Dense2;

use crate::runner::{features, time_samples, weights, KernelKind, Samples, MLP_D1};

/// Effective cache the partitioning heuristic targets on *this* host. The
/// paper's c5.9xlarge has a 25 MB LLC; this container exposes a 2 MB private
/// L2 in front of a huge shared host L3, so L2 is the level partitioning
/// pays off against (measured in Fig. 14's grid).
pub const EFFECTIVE_LLC_BYTES: usize = 2 * 1024 * 1024;

/// CPU systems compared in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuSystem {
    /// Ligra-style engine (`fg-ligra`).
    Ligra,
    /// MKL-like vendor library (`fg-sparselib`); GCN aggregation only.
    Mkl,
    /// FeatGraph.
    FeatGraph,
}

impl CpuSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CpuSystem::Ligra => "Ligra",
            CpuSystem::Mkl => "MKL",
            CpuSystem::FeatGraph => "FeatGraph",
        }
    }
}

/// Measure one cell of Table III: mean seconds for `system` running `kind`
/// at feature length `d` with `threads` workers. Returns `None` where the
/// paper has no number (MKL only supports vanilla SpMM). Thin wrapper over
/// [`cpu_kernel_samples`] for callers that only need a point estimate.
pub fn cpu_kernel_secs(
    system: CpuSystem,
    kind: KernelKind,
    graph: &Graph,
    d: usize,
    threads: usize,
    runs: usize,
) -> Option<f64> {
    cpu_kernel_samples(system, kind, graph, d, threads, runs).map(|s| s.mean())
}

/// Per-run timing samples for one Table III cell (see [`cpu_kernel_secs`]).
pub fn cpu_kernel_samples(
    system: CpuSystem,
    kind: KernelKind,
    graph: &Graph,
    d: usize,
    threads: usize,
    runs: usize,
) -> Option<Samples> {
    let n = graph.num_vertices();
    match (system, kind) {
        (CpuSystem::Mkl, KernelKind::GcnAggregation) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(n, d);
            Some(time_samples(runs, || {
                fg_sparselib::mkl_like::csrmm(graph, &x, &mut out, threads)
            }))
        }
        (CpuSystem::Mkl, _) => None, // not in the library's API
        (CpuSystem::Ligra, KernelKind::GcnAggregation) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(n, d);
            let opts = EdgeMapOptions {
                threads,
                ..Default::default()
            };
            Some(time_samples(runs, || {
                fg_ligra::kernels::gcn_aggregation(graph, &x, &mut out, &opts)
            }))
        }
        (CpuSystem::Ligra, KernelKind::MlpAggregation) => {
            let x = features(n, MLP_D1);
            let w = weights(MLP_D1, d);
            let mut out = Dense2::zeros(n, d);
            let opts = EdgeMapOptions {
                threads,
                ..Default::default()
            };
            Some(time_samples(runs, || {
                fg_ligra::kernels::mlp_aggregation(graph, &x, &w, &mut out, &opts)
            }))
        }
        (CpuSystem::Ligra, KernelKind::DotAttention) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(graph.num_edges(), 1);
            let opts = EdgeMapOptions {
                threads,
                ..Default::default()
            };
            Some(time_samples(runs, || {
                fg_ligra::kernels::dot_attention(graph, &x, &mut out, &opts)
            }))
        }
        (CpuSystem::FeatGraph, _) => Some(featgraph_cpu_samples(
            kind,
            graph,
            d,
            threads,
            runs,
            FeatgraphCpuConfig::default(),
        )),
    }
}

/// Template/FDS knobs for the FeatGraph CPU measurement (the Fig. 11/14
/// ablations override these).
#[derive(Debug, Clone, Copy)]
pub struct FeatgraphCpuConfig {
    /// Explicit graph partitions (`None` = cache heuristic).
    pub graph_partitions: Option<usize>,
    /// Explicit feature tiles (`None` = `max(1, d/128)`).
    pub feature_tiles: Option<usize>,
    /// SDDMM traversal order.
    pub traversal: Traversal,
}

impl Default for FeatgraphCpuConfig {
    fn default() -> Self {
        Self {
            graph_partitions: None,
            feature_tiles: None,
            traversal: Traversal::Hilbert,
        }
    }
}

/// Default feature-tile count. Tiling trades extra adjacency traversals for
/// smaller feature working sets (Fig. 6b), so it only pays when the feature
/// matrix is large relative to both the cache *and* the adjacency; graph
/// partitioning carries the rest. The sweep defaults therefore tile only
/// wide features, leaving Fig. 11/14 and the autotuner to explore the rest
/// of the space.
pub fn default_feature_tiles(graph: &Graph, d: usize) -> usize {
    let feature_bytes = graph.num_vertices() * d * std::mem::size_of::<f32>();
    let adjacency_bytes = graph.in_csr().index_bytes();
    if feature_bytes > EFFECTIVE_LLC_BYTES && feature_bytes > 2 * adjacency_bytes {
        (d / 256).clamp(1, 8)
    } else {
        1
    }
}

/// Graph-partition count targeting [`EFFECTIVE_LLC_BYTES`].
pub fn default_graph_partitions(graph: &Graph, tile_cols: usize) -> usize {
    fg_graph::partition::partitions_for_cache(
        graph.num_vertices(),
        tile_cols.max(1),
        std::mem::size_of::<f32>(),
        EFFECTIVE_LLC_BYTES,
    )
}

/// Measure FeatGraph's CPU kernel with explicit scheduling knobs; mean
/// seconds (wrapper over [`featgraph_cpu_samples`]).
pub fn featgraph_cpu_secs(
    kind: KernelKind,
    graph: &Graph,
    d: usize,
    threads: usize,
    runs: usize,
    cfg: FeatgraphCpuConfig,
) -> f64 {
    featgraph_cpu_samples(kind, graph, d, threads, runs, cfg).mean()
}

/// Per-run timing samples for FeatGraph's CPU kernel with explicit
/// scheduling knobs.
pub fn featgraph_cpu_samples(
    kind: KernelKind,
    graph: &Graph,
    d: usize,
    threads: usize,
    runs: usize,
    cfg: FeatgraphCpuConfig,
) -> Samples {
    let n = graph.num_vertices();
    let tiles = cfg
        .feature_tiles
        .unwrap_or_else(|| default_feature_tiles(graph, d));
    match kind {
        KernelKind::GcnAggregation => {
            let udf = Udf::copy_src(d);
            let fds = Fds::cpu_tiled(tiles);
            let parts = cfg
                .graph_partitions
                .unwrap_or_else(|| default_graph_partitions(graph, d / tiles.max(1)));
            let opts = CpuSpmmOptions::with_threads(parts, threads);
            let kernel =
                featgraph::spmm_with_options(graph, &udf, Reducer::Sum, &fds, Target::Cpu, Some(&opts), None)
                    .expect("compile");
            let x = features(n, d);
            let inputs = GraphTensors::vertex_only(&x);
            let mut out = Dense2::zeros(n, d);
            time_samples(runs, || {
                kernel.run(&inputs, &mut out).expect("run");
            })
        }
        KernelKind::MlpAggregation => {
            let udf = Udf::mlp(MLP_D1, d);
            let fds = Fds::cpu_tiled2(tiles, 1);
            // sources feed the MLP at width d1
            let parts = cfg
                .graph_partitions
                .unwrap_or_else(|| default_graph_partitions(graph, MLP_D1));
            let opts = CpuSpmmOptions::with_threads(parts, threads);
            let kernel =
                featgraph::spmm_with_options(graph, &udf, Reducer::Max, &fds, Target::Cpu, Some(&opts), None)
                    .expect("compile");
            let x = features(n, MLP_D1);
            let w = weights(MLP_D1, d);
            let params = [&w];
            let inputs = GraphTensors::with_params(&x, &params);
            let mut out = Dense2::zeros(n, d);
            time_samples(runs, || {
                kernel.run(&inputs, &mut out).expect("run");
            })
        }
        KernelKind::DotAttention => {
            let udf = Udf::dot(d);
            let fds = Fds::cpu_tiled(tiles);
            let opts = CpuSddmmOptions {
                traversal: cfg.traversal,
                threads,
            };
            let kernel =
                featgraph::sddmm_with_options(graph, &udf, &fds, Target::Cpu, Some(&opts), None)
                    .expect("compile");
            let x = features(n, d);
            let inputs = GraphTensors::vertex_only(&x);
            let mut out = Dense2::zeros(graph.num_edges(), 1);
            time_samples(runs, || {
                kernel.run(&inputs, &mut out).expect("run");
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    #[test]
    fn all_systems_produce_a_time_for_gcn() {
        let g = generators::uniform(300, 6, 1);
        for sys in [CpuSystem::Ligra, CpuSystem::Mkl, CpuSystem::FeatGraph] {
            let t = cpu_kernel_secs(sys, KernelKind::GcnAggregation, &g, 16, 1, 1);
            assert!(t.unwrap() > 0.0, "{sys:?}");
        }
    }

    #[test]
    fn mkl_covers_only_vanilla_spmm() {
        let g = generators::uniform(100, 4, 2);
        assert!(cpu_kernel_secs(CpuSystem::Mkl, KernelKind::MlpAggregation, &g, 16, 1, 1).is_none());
        assert!(cpu_kernel_secs(CpuSystem::Mkl, KernelKind::DotAttention, &g, 16, 1, 1).is_none());
    }

    #[test]
    fn featgraph_runs_all_three_kernels() {
        let g = generators::uniform(200, 5, 3);
        for kind in [
            KernelKind::GcnAggregation,
            KernelKind::MlpAggregation,
            KernelKind::DotAttention,
        ] {
            let t = featgraph_cpu_secs(kind, &g, 32, 1, 1, FeatgraphCpuConfig::default());
            assert!(t > 0.0, "{kind:?}");
        }
    }
}
