//! Machine-readable performance reports and the regression gate.
//!
//! Every `fgbench` command can emit a versioned JSON report (`--json <path>`)
//! capturing per-run timing samples, the telemetry counter/gauge/histogram
//! snapshot, and a roofline attribution of the simulated GPU kernels.
//! `fgbench compare` diffs two reports and fails on regressions that exceed
//! both the configured threshold and the measured run-to-run noise.
//!
//! The offline workspace has no serde, so the schema is written and read with
//! a small hand-rolled JSON layer ([`Json`]): a pretty-printer for stable,
//! diffable committed baselines and a recursive-descent parser for `compare`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use fg_graph::Graph;

use crate::runner::Samples;

/// Version stamp embedded in every report; bump on breaking schema changes.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Minimal JSON value: writer + recursive-descent parser
// ---------------------------------------------------------------------------

/// A JSON value. Objects keep insertion order so reports serialize
/// deterministically (committed baselines diff cleanly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // JSON has no Infinity/NaN literal; map them to null.
            Json::Num(n) if !n.is_finite() => out.push_str("null"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at the byte we
                    // consumed; strings in our reports are mostly ASCII.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

/// Host description, so reports from different machines aren't compared
/// blindly.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Hardware threads available to the process.
    pub host_threads: usize,
}

impl MachineInfo {
    /// Describe the current host.
    pub fn current() -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

/// Shape of one benchmark graph, as actually generated at the run's scale.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphInfo {
    /// Dataset name (Table II).
    pub dataset: String,
    /// Vertex count at this scale.
    pub vertices: usize,
    /// Edge count at this scale.
    pub edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
}

impl GraphInfo {
    /// Describe a generated graph.
    pub fn of(dataset: &str, graph: &Graph) -> Self {
        let v = graph.num_vertices();
        Self {
            dataset: dataset.to_string(),
            vertices: v,
            edges: graph.num_edges(),
            avg_degree: if v == 0 { 0.0 } else { graph.num_edges() as f64 / v as f64 },
        }
    }
}

/// Summary statistics plus the raw per-run samples of one measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Number of timed runs.
    pub runs: usize,
    /// Fastest run.
    pub min: f64,
    /// Slowest run.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Interpolated median — the statistic `compare` diffs.
    pub median: f64,
    /// Sample standard deviation — feeds the noise threshold.
    pub stddev: f64,
    /// Raw per-run values, in run order.
    pub samples: Vec<f64>,
}

impl SampleStats {
    /// Summarize a sample set.
    pub fn of(samples: &Samples) -> Self {
        Self {
            runs: samples.len(),
            min: samples.min(),
            max: samples.max(),
            mean: samples.mean(),
            median: samples.median(),
            stddev: samples.stddev(),
            samples: samples.secs.clone(),
        }
    }
}

/// One timed cell: a kernel/system/dataset/feature-length combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable identifier, e.g. `table3/gcn/ogbn-proteins/FeatGraph/d64`.
    /// `compare` matches entries across reports by this string.
    pub id: String,
    /// Unit of the samples: `"s"` or `"ms"`.
    pub unit: String,
    /// Timing statistics.
    pub stats: SampleStats,
}

/// Histogram snapshot row (per-partition work distribution).
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    /// Histogram name.
    pub name: String,
    /// Recorded observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median observation (bucket-interpolated).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Load imbalance: max / mean.
    pub imbalance: f64,
}

/// Roofline attribution of one simulated GPU kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Kernel name.
    pub kernel: String,
    /// Launches folded into this row.
    pub launches: u64,
    /// Total simulated milliseconds.
    pub time_ms: f64,
    /// FP32 operations executed.
    pub flops: u64,
    /// DRAM bytes moved (transactions × transaction size).
    pub dram_bytes: u64,
    /// Arithmetic intensity FLOPs/byte; `None` when no DRAM traffic.
    pub arithmetic_intensity: Option<f64>,
    /// Attained GFLOP/s over the kernel's simulated time.
    pub attained_gflops: f64,
    /// Attained DRAM GB/s.
    pub attained_gbs: f64,
    /// Roofline ceiling at this intensity: `min(peak, AI × bandwidth)`.
    pub roofline_gflops: f64,
    /// Attained / ceiling, in `[0, 1]`.
    pub attained_fraction: f64,
    /// True when the kernel sits left of the ridge point (bandwidth-bound).
    pub memory_bound: bool,
}

impl RooflineRow {
    /// Build a row from a gpusim rollup.
    pub fn of(r: &fg_gpusim::KernelRollup) -> Self {
        let ai = r.arithmetic_intensity();
        Self {
            kernel: r.kernel.to_string(),
            launches: r.launches,
            time_ms: r.time_ms,
            flops: r.flops(),
            dram_bytes: r.dram_bytes(),
            arithmetic_intensity: ai.is_finite().then_some(ai),
            attained_gflops: r.attained_gflops(),
            attained_gbs: r.attained_gbs(),
            roofline_gflops: r.roofline_gflops(),
            attained_fraction: r.attained_fraction(),
            memory_bound: r.memory_bound(),
        }
    }
}

/// A complete benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// The fgbench subcommand that produced this report.
    pub command: String,
    /// Vertex-count divisor the sweep ran at.
    pub scale: usize,
    /// Host description.
    pub machine: MachineInfo,
    /// Graphs the sweep generated.
    pub graphs: Vec<GraphInfo>,
    /// Timed cells.
    pub entries: Vec<Entry>,
    /// Telemetry counters at the end of the run (sorted by name).
    pub counters: Vec<(String, u64)>,
    /// Telemetry gauges at the end of the run (sorted by name).
    pub gauges: Vec<(String, f64)>,
    /// Telemetry histograms at the end of the run.
    pub histograms: Vec<HistRow>,
    /// Per-kernel GPU roofline attribution.
    pub roofline: Vec<RooflineRow>,
    /// Peak accounted memory footprint: `<component>_peak_bytes` rows from
    /// the fg-telemetry accountant plus `total_peak_bytes` and (on Linux)
    /// `rss_peak_bytes`. All zeros when accounting is compiled out.
    pub memory: Vec<(String, u64)>,
}

impl Report {
    /// Start an empty report for one command.
    pub fn new(command: &str, scale: usize) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            command: command.to_string(),
            scale,
            machine: MachineInfo::current(),
            graphs: Vec::new(),
            entries: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            roofline: Vec::new(),
            memory: Vec::new(),
        }
    }

    /// Record a graph, once per dataset name.
    pub fn push_graph(&mut self, dataset: &str, graph: &Graph) {
        if !self.graphs.iter().any(|g| g.dataset == dataset) {
            self.graphs.push(GraphInfo::of(dataset, graph));
        }
    }

    /// Record one timed cell.
    pub fn push(&mut self, id: String, unit: &str, samples: &Samples) {
        self.entries.push(Entry { id, unit: unit.to_string(), stats: SampleStats::of(samples) });
    }

    /// Record a single deterministic measurement (GPU simulator times).
    pub fn push_single(&mut self, id: String, unit: &str, value: f64) {
        self.push(id, unit, &Samples::single(value));
    }

    /// Capture the current telemetry counters/gauges/histograms and the
    /// gpusim per-kernel rollups into the report.
    pub fn snapshot_telemetry(&mut self) {
        self.counters = fg_telemetry::counters_snapshot()
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        self.gauges = fg_telemetry::gauges_snapshot()
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        self.histograms = fg_telemetry::histograms_snapshot()
            .into_iter()
            .map(|(name, h)| HistRow {
                name: name.to_string(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
                imbalance: h.imbalance(),
            })
            .collect();
        self.roofline = fg_gpusim::kernel_rollups().iter().map(RooflineRow::of).collect();
        self.snapshot_memory();
    }

    /// Capture the accountant's per-component peak footprint (and the OS
    /// RSS peak when readable) into the report.
    pub fn snapshot_memory(&mut self) {
        self.memory = fg_telemetry::mem_snapshot()
            .into_iter()
            .map(|c| (format!("{}_peak_bytes", c.component.name()), c.peak))
            .collect();
        self.memory.push(("total_peak_bytes".into(), fg_telemetry::mem_total_peak()));
        if let Some(rss) = fg_telemetry::read_rss() {
            self.memory.push(("rss_peak_bytes".into(), rss.peak_bytes));
        }
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let num = |v: f64| Json::Num(v);
        let uint = |v: u64| Json::Num(v as f64);
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(e.id.clone())),
                    ("unit".into(), Json::Str(e.unit.clone())),
                    ("runs".into(), uint(e.stats.runs as u64)),
                    ("min".into(), num(e.stats.min)),
                    ("max".into(), num(e.stats.max)),
                    ("mean".into(), num(e.stats.mean)),
                    ("median".into(), num(e.stats.median)),
                    ("stddev".into(), num(e.stats.stddev)),
                    (
                        "samples".into(),
                        Json::Arr(e.stats.samples.iter().map(|&s| num(s)).collect()),
                    ),
                ])
            })
            .collect();
        let graphs = self
            .graphs
            .iter()
            .map(|g| {
                Json::Obj(vec![
                    ("dataset".into(), Json::Str(g.dataset.clone())),
                    ("vertices".into(), uint(g.vertices as u64)),
                    ("edges".into(), uint(g.edges as u64)),
                    ("avg_degree".into(), num(g.avg_degree)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(h.name.clone())),
                    ("count".into(), uint(h.count)),
                    ("sum".into(), uint(h.sum)),
                    ("min".into(), uint(h.min)),
                    ("max".into(), uint(h.max)),
                    ("p50".into(), uint(h.p50)),
                    ("p90".into(), uint(h.p90)),
                    ("p99".into(), uint(h.p99)),
                    ("imbalance".into(), num(h.imbalance)),
                ])
            })
            .collect();
        let roofline = self
            .roofline
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("kernel".into(), Json::Str(r.kernel.clone())),
                    ("launches".into(), uint(r.launches)),
                    ("time_ms".into(), num(r.time_ms)),
                    ("flops".into(), uint(r.flops)),
                    ("dram_bytes".into(), uint(r.dram_bytes)),
                    (
                        "arithmetic_intensity".into(),
                        r.arithmetic_intensity.map_or(Json::Null, num),
                    ),
                    ("attained_gflops".into(), num(r.attained_gflops)),
                    ("attained_gbs".into(), num(r.attained_gbs)),
                    ("roofline_gflops".into(), num(r.roofline_gflops)),
                    ("attained_fraction".into(), num(r.attained_fraction)),
                    ("memory_bound".into(), Json::Bool(r.memory_bound)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), uint(self.schema_version)),
            ("command".into(), Json::Str(self.command.clone())),
            ("scale".into(), uint(self.scale as u64)),
            (
                "machine".into(),
                Json::Obj(vec![
                    ("os".into(), Json::Str(self.machine.os.clone())),
                    ("arch".into(), Json::Str(self.machine.arch.clone())),
                    ("host_threads".into(), uint(self.machine.host_threads as u64)),
                ]),
            ),
            ("graphs".into(), Json::Arr(graphs)),
            ("entries".into(), Json::Arr(entries)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), uint(*v))).collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), num(*v))).collect()),
            ),
            ("histograms".into(), Json::Arr(histograms)),
            ("roofline".into(), Json::Arr(roofline)),
            (
                "memory".into(),
                Json::Obj(self.memory.iter().map(|(k, v)| (k.clone(), uint(*v))).collect()),
            ),
        ])
        .render()
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let req = |key: &str| root.get(key).ok_or_else(|| format!("missing field '{key}'"));
        let schema_version =
            req("schema_version")?.as_u64().ok_or("schema_version must be an integer")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "report schema v{schema_version} is newer than supported v{SCHEMA_VERSION}"
            ));
        }
        let machine = req("machine")?;
        let machine = MachineInfo {
            os: machine.get("os").and_then(Json::as_str).unwrap_or_default().to_string(),
            arch: machine.get("arch").and_then(Json::as_str).unwrap_or_default().to_string(),
            host_threads: machine
                .get("host_threads")
                .and_then(Json::as_u64)
                .unwrap_or(1) as usize,
        };
        let graphs = req("graphs")?
            .as_arr()
            .ok_or("graphs must be an array")?
            .iter()
            .map(|g| {
                Ok(GraphInfo {
                    dataset: g
                        .get("dataset")
                        .and_then(Json::as_str)
                        .ok_or("graph missing dataset")?
                        .to_string(),
                    vertices: g.get("vertices").and_then(Json::as_u64).unwrap_or(0) as usize,
                    edges: g.get("edges").and_then(Json::as_u64).unwrap_or(0) as usize,
                    avg_degree: g.get("avg_degree").and_then(Json::as_f64).unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let entries = req("entries")?
            .as_arr()
            .ok_or("entries must be an array")?
            .iter()
            .map(|e| {
                // The writer maps non-finite stats to JSON null (there is no
                // NaN/Inf literal). Read null back as NaN so a corrupt or
                // degenerate stat stays visibly degenerate instead of
                // masquerading as a legitimate 0.0; a *missing* key still
                // defaults to 0.0 for old-report compatibility.
                let f = |key: &str| match e.get(key) {
                    Some(Json::Null) => f64::NAN,
                    other => other.and_then(Json::as_f64).unwrap_or(0.0),
                };
                Ok(Entry {
                    id: e.get("id").and_then(Json::as_str).ok_or("entry missing id")?.to_string(),
                    unit: e.get("unit").and_then(Json::as_str).unwrap_or("s").to_string(),
                    stats: SampleStats {
                        runs: e.get("runs").and_then(Json::as_u64).unwrap_or(0) as usize,
                        min: f("min"),
                        max: f("max"),
                        mean: f("mean"),
                        median: f("median"),
                        stddev: f("stddev"),
                        samples: e
                            .get("samples")
                            .and_then(Json::as_arr)
                            // Keep positions: a null sample (a non-finite
                            // value at write time) parses as NaN rather than
                            // silently vanishing and shifting `runs` out of
                            // sync with `samples.len()`.
                            .map(|a| {
                                a.iter().map(|v| v.as_f64().unwrap_or(f64::NAN)).collect()
                            })
                            .unwrap_or_default(),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let pairs = |key: &str| -> Vec<(String, Json)> {
            match root.get(key) {
                Some(Json::Obj(fields)) => fields.clone(),
                _ => Vec::new(),
            }
        };
        let counters = pairs("counters")
            .into_iter()
            .filter_map(|(k, v)| v.as_u64().map(|v| (k, v)))
            .collect();
        // Missing in pre-memory reports; parses to an empty table.
        let memory = pairs("memory")
            .into_iter()
            .filter_map(|(k, v)| v.as_u64().map(|v| (k, v)))
            .collect();
        let gauges = pairs("gauges")
            .into_iter()
            .filter_map(|(k, v)| v.as_f64().map(|v| (k, v)))
            .collect();
        let histograms = root
            .get("histograms")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|h| {
                let u = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
                Some(HistRow {
                    name: h.get("name").and_then(Json::as_str)?.to_string(),
                    count: u("count"),
                    sum: u("sum"),
                    min: u("min"),
                    max: u("max"),
                    p50: u("p50"),
                    p90: u("p90"),
                    p99: u("p99"),
                    imbalance: h.get("imbalance").and_then(Json::as_f64).unwrap_or(0.0),
                })
            })
            .collect();
        let roofline = root
            .get("roofline")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| {
                let f = |key: &str| r.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                Some(RooflineRow {
                    kernel: r.get("kernel").and_then(Json::as_str)?.to_string(),
                    launches: r.get("launches").and_then(Json::as_u64).unwrap_or(0),
                    time_ms: f("time_ms"),
                    flops: r.get("flops").and_then(Json::as_u64).unwrap_or(0),
                    dram_bytes: r.get("dram_bytes").and_then(Json::as_u64).unwrap_or(0),
                    arithmetic_intensity: r
                        .get("arithmetic_intensity")
                        .and_then(Json::as_f64),
                    attained_gflops: f("attained_gflops"),
                    attained_gbs: f("attained_gbs"),
                    roofline_gflops: f("roofline_gflops"),
                    attained_fraction: f("attained_fraction"),
                    memory_bound: r
                        .get("memory_bound")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                })
            })
            .collect();
        Ok(Report {
            schema_version,
            command: req("command")?.as_str().ok_or("command must be a string")?.to_string(),
            scale: req("scale")?.as_u64().ok_or("scale must be an integer")? as usize,
            machine,
            graphs,
            entries,
            counters,
            gauges,
            histograms,
            roofline,
            memory,
        })
    }

    /// Write the report to a file.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Fold a sub-report into this one (`fgbench all` builds one merged
    /// report out of per-subcommand reports). Entries append, graphs dedup
    /// by dataset, counters sum, and the gauge/histogram/roofline rows are
    /// replaced by the latest snapshot per name (their internal state can't
    /// be re-aggregated from summaries).
    pub fn merge(&mut self, sub: &Report) {
        for g in &sub.graphs {
            if !self.graphs.iter().any(|m| m.dataset == g.dataset) {
                self.graphs.push(g.clone());
            }
        }
        self.entries.extend(sub.entries.iter().cloned());
        for (name, v) in &sub.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mv)) => *mv += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &sub.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mv)) => *mv = *v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for h in &sub.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => *m = h.clone(),
                None => self.histograms.push(h.clone()),
            }
        }
        for r in &sub.roofline {
            match self.roofline.iter_mut().find(|m| m.kernel == r.kernel) {
                Some(m) => *m = r.clone(),
                None => self.roofline.push(r.clone()),
            }
        }
        for (name, v) in &sub.memory {
            // Peaks are process-wide watermarks; keep the max across
            // sub-reports.
            match self.memory.iter_mut().find(|(n, _)| n == name) {
                Some((_, mv)) => *mv = (*mv).max(*v),
                None => self.memory.push((name.clone(), *v)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

// ---------------------------------------------------------------------------
// Compare / regression gate
// ---------------------------------------------------------------------------

/// Outcome of comparing one entry across two reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Current median slower than baseline beyond threshold and noise.
    Regression,
    /// Current median faster than baseline beyond threshold and noise.
    Improvement,
    /// Delta within the noise/threshold band.
    WithinNoise,
    /// Entry only present in the current report.
    Added,
    /// Entry only present in the baseline report.
    Removed,
    /// The pair cannot be meaningfully diffed: a median is NaN/Inf (written
    /// as JSON null), the noise band is degenerate, or the baseline median
    /// is zero/near-zero so a relative delta has no basis. Warned about,
    /// never counted as a regression or an improvement.
    Incomparable,
}

impl Verdict {
    /// Short tag for table output.
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESS",
            Verdict::Improvement => "improve",
            Verdict::WithinNoise => "ok",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
            Verdict::Incomparable => "INCOMP",
        }
    }
}

/// One row of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Entry id.
    pub id: String,
    /// Baseline median (`None` for [`Verdict::Added`]).
    pub base_median: Option<f64>,
    /// Current median (`None` for [`Verdict::Removed`]).
    pub cur_median: Option<f64>,
    /// Median delta in percent of the baseline (positive = slower).
    pub delta_pct: f64,
    /// Run-to-run noise band in percent (2σ of the combined spread).
    pub noise_pct: f64,
    /// Effective threshold applied: `max(fail_pct, noise_pct)`.
    pub threshold_pct: f64,
    /// Classification.
    pub verdict: Verdict,
}

/// Result of diffing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-entry rows, in current-report order then removed entries.
    pub rows: Vec<CompareRow>,
    /// The `--fail-on-regress` floor used.
    pub fail_pct: f64,
}

/// Baseline medians at or below this are treated as "no basis for a
/// relative delta": dividing by them would turn timing jitter (or an
/// outright zero from a degenerate run) into arbitrarily large percentages.
pub const MIN_BASELINE_MEDIAN: f64 = 1e-12;

impl Comparison {
    /// Number of regressions.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regression).count()
    }

    /// Number of entries that could not be meaningfully compared.
    pub fn incomparables(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict == Verdict::Incomparable).count()
    }

    /// True when any entry regressed.
    pub fn has_regressions(&self) -> bool {
        self.regressions() > 0
    }

    /// Render a fixed-width summary table.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        let id_w = self.rows.iter().map(|r| r.id.len()).max().unwrap_or(2).max(2);
        let _ = writeln!(
            out,
            "{:<id_w$}  {:>12}  {:>12}  {:>8}  {:>8}  verdict",
            "id", "base", "current", "delta%", "thresh%"
        );
        for r in &self.rows {
            let fmt = |v: Option<f64>| match v {
                Some(v) if v.is_finite() => format!("{v:>12.6}"),
                _ => format!("{:>12}", "-"),
            };
            let pct = |v: f64, signed: bool| {
                if v.is_finite() {
                    if signed { format!("{v:>+8.1}") } else { format!("{v:>8.1}") }
                } else {
                    format!("{:>8}", "-")
                }
            };
            let _ = writeln!(
                out,
                "{:<id_w$}  {}  {}  {}  {}  {}",
                r.id,
                fmt(r.base_median),
                fmt(r.cur_median),
                pct(r.delta_pct, true),
                pct(r.threshold_pct, false),
                r.verdict.tag()
            );
        }
        let incomp = self.incomparables();
        let _ = writeln!(
            out,
            "{} entries compared, {} regression(s) at max({}%, noise){}",
            self.rows.len(),
            self.regressions(),
            self.fail_pct,
            if incomp > 0 {
                format!(", {incomp} incomparable (zero or non-finite medians)")
            } else {
                String::new()
            }
        );
        out
    }
}

/// Diff two reports entry-by-entry.
///
/// The regression test is noise-aware: an entry only counts as a regression
/// (or an improvement) when the median delta exceeds both `fail_pct` and a
/// 2σ band derived from the per-run spread of *both* reports:
///
/// ```text
/// noise_pct = 100 · 2·sqrt(σ_base² + σ_cur²) / median_base
/// ```
///
/// Deterministic single-sample entries (σ = 0) therefore gate purely on
/// `fail_pct`, while noisy wall-clock entries get a wider band.
///
/// Entries whose medians cannot support that arithmetic — NaN/Inf (stored
/// as JSON null), or a baseline median at or below
/// [`MIN_BASELINE_MEDIAN`] — come back as [`Verdict::Incomparable`]; they
/// are surfaced in the table and the summary but never gate the build.
pub fn compare(base: &Report, cur: &Report, fail_pct: f64) -> Comparison {
    let mut rows = Vec::new();
    for entry in &cur.entries {
        let Some(base_entry) = base.entries.iter().find(|b| b.id == entry.id) else {
            rows.push(CompareRow {
                id: entry.id.clone(),
                base_median: None,
                cur_median: Some(entry.stats.median),
                delta_pct: 0.0,
                noise_pct: 0.0,
                threshold_pct: fail_pct,
                verdict: Verdict::Added,
            });
            continue;
        };
        let b = &base_entry.stats;
        let c = &entry.stats;
        // A relative delta needs a finite pair of medians, a finite noise
        // estimate, and a baseline median meaningfully above zero to divide
        // by. Anything else — a null (NaN/Inf) median read back from JSON, a
        // zero-cost baseline entry, a NaN stddev — is reported as
        // `Incomparable` instead of silently classifying as `WithinNoise`
        // with a fabricated 0% delta.
        let comparable = b.median.is_finite()
            && c.median.is_finite()
            && b.stddev.is_finite()
            && c.stddev.is_finite()
            && b.median > MIN_BASELINE_MEDIAN;
        if !comparable {
            rows.push(CompareRow {
                id: entry.id.clone(),
                base_median: Some(b.median),
                cur_median: Some(c.median),
                delta_pct: f64::NAN,
                noise_pct: f64::NAN,
                threshold_pct: fail_pct,
                verdict: Verdict::Incomparable,
            });
            continue;
        }
        let delta_pct = 100.0 * (c.median - b.median) / b.median;
        let noise_pct =
            100.0 * 2.0 * (b.stddev * b.stddev + c.stddev * c.stddev).sqrt() / b.median;
        let threshold_pct = fail_pct.max(noise_pct);
        let verdict = if delta_pct > threshold_pct {
            Verdict::Regression
        } else if delta_pct < -threshold_pct {
            Verdict::Improvement
        } else {
            Verdict::WithinNoise
        };
        rows.push(CompareRow {
            id: entry.id.clone(),
            base_median: Some(b.median),
            cur_median: Some(c.median),
            delta_pct,
            noise_pct,
            threshold_pct,
            verdict,
        });
    }
    for entry in &base.entries {
        if !cur.entries.iter().any(|c| c.id == entry.id) {
            rows.push(CompareRow {
                id: entry.id.clone(),
                base_median: Some(entry.stats.median),
                cur_median: None,
                delta_pct: 0.0,
                noise_pct: 0.0,
                threshold_pct: fail_pct,
                verdict: Verdict::Removed,
            });
        }
    }
    Comparison { rows, fail_pct }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, samples: Vec<f64>) -> Entry {
        Entry {
            id: id.to_string(),
            unit: "s".to_string(),
            stats: SampleStats::of(&Samples::from_secs(samples)),
        }
    }

    fn report_with(entries: Vec<Entry>) -> Report {
        let mut r = Report::new("table3", 24);
        r.entries = entries;
        r
    }

    #[test]
    fn json_report_round_trips() {
        let mut r = Report::new("table3", 24);
        r.graphs.push(GraphInfo {
            dataset: "ogbn-proteins".into(),
            vertices: 5_000,
            edges: 100_000,
            avg_degree: 20.0,
        });
        r.entries.push(entry("table3/gcn/ogbn-proteins/FeatGraph/d64", vec![0.5, 0.625, 0.75]));
        r.counters = vec![("edges_processed".into(), 123_456), ("spmm_calls".into(), 7)];
        r.gauges = vec![("threads".into(), 8.0)];
        r.histograms.push(HistRow {
            name: "spmm_partition_edges".into(),
            count: 64,
            sum: 100_000,
            min: 900,
            max: 2_400,
            p50: 1_536,
            p90: 2_048,
            p99: 2_400,
            imbalance: 1.54,
        });
        r.roofline.push(RooflineRow {
            kernel: "spmm_feature_parallel".into(),
            launches: 10,
            time_ms: 1.5,
            flops: 1_000_000_000,
            dram_bytes: 100_000_000,
            arithmetic_intensity: Some(10.0),
            attained_gflops: 666.7,
            attained_gbs: 66.7,
            roofline_gflops: 7065.6,
            attained_fraction: 0.094,
            memory_bound: false,
        });
        let text = r.to_json();
        let parsed = Report::from_json(&text).expect("parse");
        assert_eq!(parsed, r);
        // and the serialization itself is stable
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn infinite_intensity_serializes_as_null() {
        let mut r = Report::new("table4", 24);
        r.roofline.push(RooflineRow {
            kernel: "no_dram".into(),
            launches: 1,
            time_ms: 1.0,
            flops: 100,
            dram_bytes: 0,
            arithmetic_intensity: None,
            attained_gflops: 0.0001,
            attained_gbs: 0.0,
            roofline_gflops: 7065.6,
            attained_fraction: 0.0,
            memory_bound: false,
        });
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed.roofline[0].arithmetic_intensity, None);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Report::from_json("{").is_err());
        assert!(Report::from_json("{}").is_err()); // missing required fields
        assert!(Report::from_json("[1, 2]").is_err());
        let future = r#"{"schema_version": 999, "command": "x", "scale": 1,
            "machine": {}, "graphs": [], "entries": []}"#;
        assert!(Report::from_json(future).unwrap_err().contains("newer"));
    }

    #[test]
    fn compare_flags_a_2x_slowdown_as_regression() {
        let base = report_with(vec![entry("k", vec![1.0, 1.01, 0.99])]);
        let cur = report_with(vec![entry("k", vec![2.0, 2.02, 1.98])]);
        let cmp = compare(&base, &cur, 10.0);
        assert_eq!(cmp.rows.len(), 1);
        assert_eq!(cmp.rows[0].verdict, Verdict::Regression);
        assert!((cmp.rows[0].delta_pct - 100.0).abs() < 1.0);
        assert!(cmp.has_regressions());
    }

    #[test]
    fn compare_flags_a_speedup_as_improvement() {
        let base = report_with(vec![entry("k", vec![2.0, 2.0, 2.0])]);
        let cur = report_with(vec![entry("k", vec![1.0, 1.0, 1.0])]);
        let cmp = compare(&base, &cur, 10.0);
        assert_eq!(cmp.rows[0].verdict, Verdict::Improvement);
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn compare_absorbs_deltas_inside_the_noise_band() {
        // 20% slower, but the baseline itself swings ±30%: within noise.
        let base = report_with(vec![entry("k", vec![0.7, 1.0, 1.3])]);
        let cur = report_with(vec![entry("k", vec![1.2, 1.2, 1.2])]);
        let cmp = compare(&base, &cur, 10.0);
        assert_eq!(cmp.rows[0].verdict, Verdict::WithinNoise);
        assert!(cmp.rows[0].noise_pct > cmp.fail_pct);
        // Deterministic entries (stddev 0) gate purely on fail_pct.
        let base = report_with(vec![entry("d", vec![1.0])]);
        let cur = report_with(vec![entry("d", vec![1.05])]);
        assert_eq!(compare(&base, &cur, 10.0).rows[0].verdict, Verdict::WithinNoise);
        assert_eq!(compare(&base, &cur, 2.0).rows[0].verdict, Verdict::Regression);
    }

    #[test]
    fn compare_tracks_added_and_removed_entries() {
        let base = report_with(vec![entry("old", vec![1.0])]);
        let cur = report_with(vec![entry("new", vec![1.0])]);
        let cmp = compare(&base, &cur, 10.0);
        let verdicts: Vec<_> = cmp.rows.iter().map(|r| (r.id.as_str(), r.verdict)).collect();
        assert_eq!(verdicts, vec![("new", Verdict::Added), ("old", Verdict::Removed)]);
        assert!(!cmp.has_regressions()); // membership changes never gate
        let table = cmp.format_table();
        assert!(table.contains("added") && table.contains("removed"));
    }

    #[test]
    fn zero_baseline_median_is_incomparable_not_ok() {
        // Regression test: before Verdict::Incomparable existed, a zero
        // baseline median short-circuited delta_pct to 0.0 and the row came
        // back `WithinNoise` ("ok") no matter how different the current
        // median was — a 0 → 5.0 s swing passed the gate silently.
        let base = report_with(vec![entry("k", vec![0.0, 0.0, 0.0])]);
        let cur = report_with(vec![entry("k", vec![5.0, 5.0, 5.0])]);
        let cmp = compare(&base, &cur, 10.0);
        assert_eq!(cmp.rows[0].verdict, Verdict::Incomparable);
        assert!(cmp.rows[0].delta_pct.is_nan(), "no fabricated 0% delta");
        assert_eq!(cmp.incomparables(), 1);
        assert!(!cmp.has_regressions(), "incomparable entries never gate");
        // near-zero is just as degenerate as exactly zero
        let base = report_with(vec![entry("k", vec![1e-15])]);
        let cur = report_with(vec![entry("k", vec![1.0])]);
        assert_eq!(compare(&base, &cur, 10.0).rows[0].verdict, Verdict::Incomparable);
    }

    #[test]
    fn non_finite_medians_are_incomparable() {
        // NaN median on either side: NaN comparisons are all false, so the
        // old classifier fell through to `WithinNoise` — garbage read as
        // "ok". Inf baseline produced delta_pct = NaN with the same result.
        let sick = |v: f64| {
            let mut e = entry("k", vec![1.0]);
            e.stats.median = v;
            report_with(vec![e])
        };
        let healthy = report_with(vec![entry("k", vec![1.0])]);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cmp = compare(&sick(bad), &healthy, 10.0);
            assert_eq!(cmp.rows[0].verdict, Verdict::Incomparable, "baseline median {bad}");
            let cmp = compare(&healthy, &sick(bad), 10.0);
            assert_eq!(cmp.rows[0].verdict, Verdict::Incomparable, "current median {bad}");
        }
        // the table renders the degenerate row without +NaN noise
        let cmp = compare(&sick(f64::NAN), &healthy, 10.0);
        let table = cmp.format_table();
        assert!(table.contains("INCOMP"), "{table}");
        assert!(!table.contains("NaN"), "{table}");
        assert!(table.contains("incomparable"), "{table}");
    }

    #[test]
    fn null_medians_round_trip_as_nan_not_zero() {
        // Regression test: the writer maps non-finite numbers to JSON null
        // (there is no NaN literal), and the parser used to read null back
        // via unwrap_or(0.0) — a corrupt median re-entered the gate as a
        // legitimate-looking 0.0 baseline. It must come back NaN and then
        // classify as Incomparable.
        let mut e = entry("k", vec![1.0, 2.0]);
        e.stats.median = f64::NAN;
        let text = report_with(vec![e]).to_json();
        assert!(text.contains("null"), "{text}");
        let parsed = Report::from_json(&text).expect("parse");
        assert!(parsed.entries[0].stats.median.is_nan(), "null must not become 0.0");
        let healthy = report_with(vec![entry("k", vec![1.0, 2.0])]);
        let cmp = compare(&parsed, &healthy, 10.0);
        assert_eq!(cmp.rows[0].verdict, Verdict::Incomparable);
    }

    #[test]
    fn null_samples_keep_their_position_through_a_round_trip() {
        // Non-finite samples serialize as null; the parser used to drop
        // them (filter_map), silently desyncing samples.len() from runs.
        let mut e = entry("k", vec![1.0, 2.0, 3.0]);
        e.stats.samples = vec![1.0, f64::INFINITY, 3.0];
        let text = report_with(vec![e]).to_json();
        let parsed = Report::from_json(&text).expect("parse");
        let s = &parsed.entries[0].stats.samples;
        assert_eq!(s.len(), 3, "null sample must not vanish");
        assert_eq!(s[0], 1.0);
        assert!(s[1].is_nan(), "null sample reads back as NaN");
        assert_eq!(s[2], 3.0);
    }

    #[test]
    fn merge_folds_sub_reports() {
        let mut master = Report::new("all", 24);
        let mut a = report_with(vec![entry("table3/x", vec![1.0])]);
        a.counters = vec![("edges".into(), 10)];
        a.gauges = vec![("threads".into(), 1.0)];
        let mut b = report_with(vec![entry("fig10/y", vec![2.0])]);
        b.counters = vec![("edges".into(), 5), ("spmm_calls".into(), 2)];
        b.gauges = vec![("threads".into(), 8.0)];
        master.merge(&a);
        master.merge(&b);
        assert_eq!(master.entries.len(), 2);
        assert_eq!(master.counters, vec![("edges".into(), 15), ("spmm_calls".into(), 2)]);
        assert_eq!(master.gauges, vec![("threads".into(), 8.0)]); // last wins
    }

    #[test]
    fn sample_stats_match_the_samples_type() {
        let s = Samples::from_secs(vec![1.0, 2.0, 3.0, 10.0]);
        let stats = SampleStats::of(&s);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.median, 2.5);
        assert_eq!(stats.samples, vec![1.0, 2.0, 3.0, 10.0]);
    }

    #[test]
    fn json_value_parser_handles_escapes_and_nesting() {
        let text = r#"{"a\n": ["A", true, null, -1.5e2], "b": {"c": "x\"y"}}"#;
        let v = Json::parse(text).expect("parse");
        assert_eq!(v.get("a\n").unwrap().as_arr().unwrap()[0].as_str(), Some("A"));
        assert_eq!(v.get("a\n").unwrap().as_arr().unwrap()[3].as_f64(), Some(-150.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("01x").is_err());
    }
}
