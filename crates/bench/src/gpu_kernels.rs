//! GPU kernel measurements on the simulator: FeatGraph vs Gunrock vs
//! cuSPARSE (Table IV, Figs. 12/13/15).

use featgraph::gpu::sddmm::GpuSddmmOptions;
use featgraph::gpu::spmm::{GpuSpmmOptions, HybridOptions};
use featgraph::{Fds, GraphTensors, Reducer, Target, Udf};
use fg_graph::Graph;
use fg_gunrock::GunrockOptions;
use fg_sparselib::cusparse_like::CusparseOptions;
use fg_tensor::Dense2;

use crate::runner::{features, weights, KernelKind, MLP_D1};

/// GPU systems compared in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuSystem {
    /// Gunrock-style edge-parallel baseline.
    Gunrock,
    /// cuSPARSE-like vendor kernel; GCN aggregation only.
    Cusparse,
    /// FeatGraph.
    FeatGraph,
}

impl GpuSystem {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuSystem::Gunrock => "Gunrock",
            GpuSystem::Cusparse => "cuSPARSE",
            GpuSystem::FeatGraph => "FeatGraph",
        }
    }
}

/// FeatGraph GPU knobs (overridden by the Fig. 12/13/15 ablations).
#[derive(Debug, Clone, Copy)]
pub struct FeatgraphGpuConfig {
    /// Hybrid partitioning (Fig. 13).
    pub hybrid: Option<HybridOptions>,
    /// Tree reduction for SDDMM (Fig. 12); `false` = serial per-thread dot.
    pub tree_reduce: bool,
    /// Destination rows per block (Fig. 15 sweeps the implied block count).
    pub rows_per_block: usize,
    /// Simulated device (V100 by default; `a100` for the newer-hardware
    /// comparison).
    pub device: fg_gpusim::DeviceConfig,
}

impl Default for FeatgraphGpuConfig {
    fn default() -> Self {
        Self {
            hybrid: None,
            tree_reduce: true,
            rows_per_block: 8,
            device: fg_gpusim::DeviceConfig::v100(),
        }
    }
}

/// Simulated milliseconds for one Table IV cell. `None` where the paper has
/// no number (cuSPARSE covers only vanilla SpMM).
pub fn gpu_kernel_ms(system: GpuSystem, kind: KernelKind, graph: &Graph, d: usize) -> Option<f64> {
    let n = graph.num_vertices();
    match (system, kind) {
        (GpuSystem::Cusparse, KernelKind::GcnAggregation) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(n, d);
            let report = fg_sparselib::cusparse_like::csrmm(
                graph,
                &x,
                &mut out,
                &CusparseOptions {
                    rows_per_block: 8,
                    ..Default::default()
                },
            );
            Some(report.time_ms)
        }
        (GpuSystem::Cusparse, _) => None,
        (GpuSystem::Gunrock, KernelKind::GcnAggregation) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(n, d);
            Some(fg_gunrock::gcn_aggregation(graph, &x, &mut out, &GunrockOptions::default()).time_ms)
        }
        (GpuSystem::Gunrock, KernelKind::MlpAggregation) => {
            let x = features(n, MLP_D1);
            let w = weights(MLP_D1, d);
            let mut out = Dense2::zeros(n, d);
            Some(
                fg_gunrock::mlp_aggregation(graph, &x, &w, &mut out, &GunrockOptions::default())
                    .time_ms,
            )
        }
        (GpuSystem::Gunrock, KernelKind::DotAttention) => {
            let x = features(n, d);
            let mut out = Dense2::zeros(graph.num_edges(), 1);
            Some(fg_gunrock::dot_attention(graph, &x, &mut out, &GunrockOptions::default()).time_ms)
        }
        (GpuSystem::FeatGraph, _) => Some(featgraph_gpu_ms(
            kind,
            graph,
            d,
            FeatgraphGpuConfig::default(),
        )),
    }
}

/// FeatGraph GPU measurement with explicit knobs.
pub fn featgraph_gpu_ms(kind: KernelKind, graph: &Graph, d: usize, cfg: FeatgraphGpuConfig) -> f64 {
    let n = graph.num_vertices();
    match kind {
        KernelKind::GcnAggregation => {
            let udf = Udf::copy_src(d);
            // 256-thread blocks: full occupancy regardless of the hybrid
            // staging footprint; lanes beyond d idle harmlessly
            let fds = Fds::gpu_thread_x(256);
            let opts = GpuSpmmOptions {
                rows_per_block: cfg.rows_per_block,
                hybrid: cfg.hybrid,
                device: cfg.device,
            };
            let kernel = featgraph::spmm_with_options(
                graph,
                &udf,
                Reducer::Sum,
                &fds,
                Target::Gpu,
                None,
                Some(&opts),
            )
            .expect("compile");
            let x = features(n, d);
            let inputs = GraphTensors::vertex_only(&x);
            let mut out = Dense2::zeros(n, d);
            kernel.run(&inputs, &mut out).expect("run").total_gpu_ms()
        }
        KernelKind::MlpAggregation => {
            let udf = Udf::mlp(MLP_D1, d);
            let fds = Fds::gpu_block_tree(d.clamp(32, 1024));
            let opts = GpuSpmmOptions {
                rows_per_block: cfg.rows_per_block,
                hybrid: None,
                device: cfg.device,
            };
            let kernel = featgraph::spmm_with_options(
                graph,
                &udf,
                Reducer::Max,
                &fds,
                Target::Gpu,
                None,
                Some(&opts),
            )
            .expect("compile");
            let x = features(n, MLP_D1);
            let w = weights(MLP_D1, d);
            let params = [&w];
            let inputs = GraphTensors::with_params(&x, &params);
            let mut out = Dense2::zeros(n, d);
            kernel.run(&inputs, &mut out).expect("run").total_gpu_ms()
        }
        KernelKind::DotAttention => {
            let udf = Udf::dot(d);
            let mut fds = Fds::gpu_tree_reduce(256);
            fds.gpu.tree_reduce = cfg.tree_reduce;
            let sddmm_opts = GpuSddmmOptions {
                device: cfg.device,
                ..Default::default()
            };
            let kernel = featgraph::sddmm_with_options(
                graph,
                &udf,
                &fds,
                Target::Gpu,
                None,
                Some(&sddmm_opts),
            )
            .expect("compile");
            let x = features(n, d);
            let inputs = GraphTensors::vertex_only(&x);
            let mut out = Dense2::zeros(graph.num_edges(), 1);
            kernel.run(&inputs, &mut out).expect("run").total_gpu_ms()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    #[test]
    fn all_systems_report_gcn_times() {
        let g = generators::uniform(300, 6, 1);
        for sys in [GpuSystem::Gunrock, GpuSystem::Cusparse, GpuSystem::FeatGraph] {
            let t = gpu_kernel_ms(sys, KernelKind::GcnAggregation, &g, 32);
            assert!(t.unwrap() > 0.0, "{sys:?}");
        }
    }

    #[test]
    fn cusparse_covers_only_vanilla_spmm() {
        let g = generators::uniform(100, 4, 2);
        assert!(gpu_kernel_ms(GpuSystem::Cusparse, KernelKind::MlpAggregation, &g, 16).is_none());
        assert!(gpu_kernel_ms(GpuSystem::Cusparse, KernelKind::DotAttention, &g, 16).is_none());
    }

    #[test]
    fn gunrock_loses_badly_on_gcn_aggregation() {
        // the Table IVa shape: atomics + blackbox feature loops
        let g = generators::uniform(2000, 50, 3);
        let gunrock = gpu_kernel_ms(GpuSystem::Gunrock, KernelKind::GcnAggregation, &g, 64).unwrap();
        let fg = gpu_kernel_ms(GpuSystem::FeatGraph, KernelKind::GcnAggregation, &g, 64).unwrap();
        assert!(
            gunrock > 5.0 * fg,
            "gunrock {gunrock:.3} ms vs featgraph {fg:.3} ms"
        );
    }

    #[test]
    fn featgraph_is_on_par_with_cusparse() {
        let g = generators::uniform(2000, 50, 4);
        let cu = gpu_kernel_ms(GpuSystem::Cusparse, KernelKind::GcnAggregation, &g, 64).unwrap();
        let fg = gpu_kernel_ms(GpuSystem::FeatGraph, KernelKind::GcnAggregation, &g, 64).unwrap();
        let ratio = fg / cu;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "featgraph/cusparse ratio {ratio}"
        );
    }
}
